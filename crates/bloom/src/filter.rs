//! The [`BloomFilter`] bit vector.

use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::{murmur3_32, Hash256};

use crate::error::BloomError;
use crate::params::BloomParams;

/// Outcome of checking an item against a Bloom filter.
///
/// The paper's three cases (§III-B1) collapse to two at the filter level:
/// the filter alone cannot distinguish a true positive from a false
/// positive match, so a set bit pattern only ever means "possibly
/// present". Resolving `PossiblyPresent` into the paper's **existent** or
/// **FPM** case requires consulting the block body (full node) or an
/// SMT proof (light node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// At least one of the item's bit positions is 0: the item is
    /// certainly not in the set (the paper's *inexistent case* — a
    /// successful check).
    DefinitelyAbsent,
    /// All of the item's bit positions are 1: the item may be in the set
    /// (*existent case*) or this may be a false positive match (*FPM
    /// case*). Either way, the paper calls this a failed check.
    PossiblyPresent,
}

impl CheckOutcome {
    /// True for [`CheckOutcome::DefinitelyAbsent`] — the paper's
    /// "successful check".
    pub fn is_clean(self) -> bool {
        matches!(self, CheckOutcome::DefinitelyAbsent)
    }
}

/// A Bloom filter with BIP 37 bit positions.
///
/// # Examples
///
/// ```
/// use lvq_bloom::{BloomFilter, BloomParams};
///
/// # fn main() -> Result<(), lvq_bloom::BloomError> {
/// let params = BloomParams::new(125, 3)?;
/// let mut a = BloomFilter::new(params);
/// let mut b = BloomFilter::new(params);
/// a.insert(b"x");
/// b.insert(b"y");
/// a.union_with(&b)?; // merge, as BMT parent nodes do
/// assert!(!a.check(b"x").is_clean());
/// assert!(!a.check(b"y").is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BloomFilter {
    params: BloomParams,
    bits: Vec<u8>,
}

impl BloomFilter {
    /// Creates an empty filter with the given parameters.
    pub fn new(params: BloomParams) -> Self {
        BloomFilter {
            bits: vec![0u8; params.size_bytes() as usize],
            params,
        }
    }

    /// The filter's parameters.
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Computes the item's k bit positions — the paper's *checked bit
    /// positions* (CBP).
    ///
    /// Positions depend only on the parameters, not on the filter
    /// contents, so one computation serves an entire BMT descent.
    pub fn bit_positions(params: BloomParams, item: &[u8]) -> Vec<u64> {
        let m = params.bits();
        (0..params.hashes())
            .map(|i| u64::from(murmur3_32(item, params.seed(i))) % m)
            .collect()
    }

    /// Sets the item's bit positions.
    pub fn insert(&mut self, item: &[u8]) {
        for pos in Self::bit_positions(self.params, item) {
            self.set_bit(pos);
        }
    }

    /// Checks the item against the filter.
    pub fn check(&self, item: &[u8]) -> CheckOutcome {
        self.check_positions(&Self::bit_positions(self.params, item))
    }

    /// Checks pre-computed bit positions (see [`BloomFilter::bit_positions`]).
    pub fn check_positions(&self, positions: &[u64]) -> CheckOutcome {
        if positions.iter().all(|&p| self.get_bit(p)) {
            CheckOutcome::PossiblyPresent
        } else {
            CheckOutcome::DefinitelyAbsent
        }
    }

    /// Bitwise-ORs `other` into `self` (paper Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::ParamsMismatch`] if the filters have
    /// different parameters.
    pub fn union_with(&mut self, other: &BloomFilter) -> Result<(), BloomError> {
        if self.params != other.params {
            return Err(BloomError::ParamsMismatch);
        }
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
        Ok(())
    }

    /// Returns the union of two filters without modifying either.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::ParamsMismatch`] if the filters have
    /// different parameters.
    pub fn union(a: &BloomFilter, b: &BloomFilter) -> Result<BloomFilter, BloomError> {
        let mut out = a.clone();
        out.union_with(b)?;
        Ok(out)
    }

    /// True if every set bit of `self` is also set in `other`.
    ///
    /// A child BMT node's filter is always a subset of its parent's; the
    /// verifier uses this as a sanity invariant.
    pub fn is_subset_of(&self, other: &BloomFilter) -> bool {
        self.params == other.params
            && self
                .bits
                .iter()
                .zip(other.bits.iter())
                .all(|(a, b)| a & !b == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.bits
            .iter()
            .map(|b| u64::from(b.count_ones() as u8))
            .sum()
    }

    /// Fraction of set bits in `[0, 1]`.
    pub fn fill_ratio(&self) -> f64 {
        self.count_ones() as f64 / self.params.bits() as f64
    }

    /// True if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// The raw bit-vector bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// SHA-256 of the bit vector — the commitment the strawman variant
    /// stores in headers, and the hash a leaf BMT node carries (Eq. 2,
    /// `l = 0` case uses the same digest input).
    pub fn content_hash(&self) -> Hash256 {
        Hash256::hash(&self.bits)
    }

    fn set_bit(&mut self, pos: u64) {
        self.bits[(pos / 8) as usize] |= 1 << (pos % 8);
    }

    fn get_bit(&self, pos: u64) -> bool {
        self.bits[(pos / 8) as usize] & (1 << (pos % 8)) != 0
    }
}

impl Encodable for BloomFilter {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.params.encode_into(out);
        self.bits.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.params.encoded_len() + self.bits.encoded_len()
    }
}

impl Decodable for BloomFilter {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let params = BloomParams::decode_from(reader)?;
        let bits = Vec::<u8>::decode_from(reader)?;
        if bits.len() != params.size_bytes() as usize {
            return Err(DecodeError::InvalidValue {
                what: "bloom filter bit vector length",
                found: bits.len() as u64,
            });
        }
        Ok(BloomFilter { params, bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_codec::decode_exact;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn params() -> BloomParams {
        BloomParams::new(125, 3).unwrap()
    }

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(params());
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0..100u32 {
            assert!(!f.check(&i.to_le_bytes()).is_clean());
        }
    }

    #[test]
    fn empty_filter_is_always_clean() {
        let f = BloomFilter::new(params());
        assert!(f.is_empty());
        for i in 0..50u32 {
            assert!(f.check(&i.to_le_bytes()).is_clean());
        }
    }

    #[test]
    fn union_contains_both_sides() {
        let mut a = BloomFilter::new(params());
        let mut b = BloomFilter::new(params());
        a.insert(b"left");
        b.insert(b"right");
        let u = BloomFilter::union(&a, &b).unwrap();
        assert!(!u.check(b"left").is_clean());
        assert!(!u.check(b"right").is_clean());
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert!(!u.is_subset_of(&a) || u == a);
    }

    #[test]
    fn union_rejects_mismatched_params() {
        let a = BloomFilter::new(BloomParams::new(125, 3).unwrap());
        let b = BloomFilter::new(BloomParams::new(126, 3).unwrap());
        assert_eq!(BloomFilter::union(&a, &b), Err(BloomError::ParamsMismatch));
        let c = BloomFilter::new(BloomParams::new(125, 4).unwrap());
        assert_eq!(BloomFilter::union(&a, &c), Err(BloomError::ParamsMismatch));
        // Mismatched params are never subsets.
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn positions_are_stable_and_in_range() {
        let p = params();
        let pos = BloomFilter::bit_positions(p, b"addr");
        assert_eq!(pos.len(), 3);
        assert_eq!(pos, BloomFilter::bit_positions(p, b"addr"));
        assert!(pos.iter().all(|&x| x < p.bits()));
    }

    #[test]
    fn tweak_changes_positions() {
        let a = BloomFilter::bit_positions(params(), b"addr");
        let b = BloomFilter::bit_positions(params().with_tweak(1), b"addr");
        assert_ne!(a, b);
    }

    #[test]
    fn content_hash_tracks_contents() {
        let mut f = BloomFilter::new(params());
        let h0 = f.content_hash();
        f.insert(b"x");
        assert_ne!(f.content_hash(), h0);
    }

    #[test]
    fn empirical_fpr_tracks_theory() {
        // Insert n items, probe with fresh items, compare to the closed
        // form within loose tolerance.
        let p = BloomParams::new(1_250, 2).unwrap(); // 10_000 bits
        let mut f = BloomFilter::new(p);
        let n = 2_000u32;
        for i in 0..n {
            f.insert(format!("member-{i}").as_bytes());
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let probes = 20_000;
        let mut hits = 0;
        for _ in 0..probes {
            let probe: u64 = rng.gen();
            if !f.check(format!("probe-{probe}").as_bytes()).is_clean() {
                hits += 1;
            }
        }
        let empirical = hits as f64 / probes as f64;
        let theoretical = crate::theoretical_fpr(p.bits(), p.hashes(), u64::from(n));
        assert!(
            (empirical - theoretical).abs() < 0.05,
            "empirical {empirical} vs theoretical {theoretical}"
        );
    }

    #[test]
    fn codec_roundtrip_and_length_check() {
        let mut f = BloomFilter::new(params());
        f.insert(b"wire");
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        assert_eq!(decode_exact::<BloomFilter>(&bytes).unwrap(), f);

        // Tamper the declared bit-vector length: rejected.
        let p = BloomParams::new(4, 1).unwrap();
        let mut buf = p.encode();
        vec![0u8; 3].encode_into(&mut buf);
        assert!(decode_exact::<BloomFilter>(&buf).is_err());
    }

    proptest! {
        #[test]
        fn inserted_items_always_match(items in proptest::collection::vec(any::<Vec<u8>>(), 0..50)) {
            let mut f = BloomFilter::new(params());
            for item in &items {
                f.insert(item);
            }
            for item in &items {
                prop_assert!(!f.check(item).is_clean());
            }
        }

        #[test]
        fn union_is_commutative_and_idempotent(
            xs in proptest::collection::vec(any::<u64>(), 0..30),
            ys in proptest::collection::vec(any::<u64>(), 0..30),
        ) {
            let mut a = BloomFilter::new(params());
            let mut b = BloomFilter::new(params());
            for x in &xs { a.insert(&x.to_le_bytes()); }
            for y in &ys { b.insert(&y.to_le_bytes()); }
            let ab = BloomFilter::union(&a, &b).unwrap();
            let ba = BloomFilter::union(&b, &a).unwrap();
            prop_assert_eq!(&ab, &ba);
            let aa = BloomFilter::union(&ab, &ab).unwrap();
            prop_assert_eq!(&aa, &ab);
        }

        #[test]
        fn count_ones_bounded_by_k_times_n(xs in proptest::collection::vec(any::<u32>(), 0..64)) {
            let mut f = BloomFilter::new(params());
            for x in &xs { f.insert(&x.to_le_bytes()); }
            prop_assert!(f.count_ones() <= 3 * xs.len() as u64);
        }
    }
}
