//! BIP 37-style Bloom filters for the LVQ reproduction.
//!
//! A [`BloomFilter`] summarises the set of addresses appearing in one or
//! more blocks. The strawman design checks an address against one filter
//! per block; LVQ's BMT merges filters of dyadic block runs with bitwise
//! OR ([`BloomFilter::union_with`]) so a single clean check can rule an
//! address out of thousands of blocks.
//!
//! Bit positions follow BIP 37: position `i` of item `x` is
//! `murmur3_32(x, i * 0xFBA4C795 + tweak) mod m_bits`.
//!
//! # Examples
//!
//! ```
//! use lvq_bloom::{BloomFilter, BloomParams, CheckOutcome};
//!
//! # fn main() -> Result<(), lvq_bloom::BloomError> {
//! let params = BloomParams::new(1_000, 2)?; // 1 KB, k = 2
//! let mut filter = BloomFilter::new(params);
//! filter.insert(b"addr-one");
//!
//! assert_eq!(filter.check(b"addr-one"), CheckOutcome::PossiblyPresent);
//! assert_eq!(filter.check(b"missing"), CheckOutcome::DefinitelyAbsent);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod error;
mod filter;
mod params;

pub use analysis::{fill_ratio_estimate, optimal_k, theoretical_fpr};
pub use error::BloomError;
pub use filter::{BloomFilter, CheckOutcome};
pub use params::BloomParams;
