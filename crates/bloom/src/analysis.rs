//! Closed-form Bloom filter analysis (fill ratio, false-positive rate).

/// Expected fraction of set bits after inserting `n` items into a filter
/// of `m_bits` bits with `k` hash functions: `1 - e^(-k n / m)`.
///
/// # Examples
///
/// ```
/// let fill = lvq_bloom::fill_ratio_estimate(80_000, 2, 10_000);
/// assert!((fill - 0.2212).abs() < 1e-3);
/// ```
pub fn fill_ratio_estimate(m_bits: u64, k: u32, n: u64) -> f64 {
    if m_bits == 0 {
        return 1.0;
    }
    let exponent = -(k as f64) * (n as f64) / (m_bits as f64);
    1.0 - exponent.exp()
}

/// Classical false-positive probability `(1 - e^(-k n / m))^k` for a
/// filter of `m_bits` bits, `k` hash functions and `n` inserted items.
///
/// # Examples
///
/// ```
/// // An empty filter never false-positives.
/// assert_eq!(lvq_bloom::theoretical_fpr(80_000, 2, 0), 0.0);
/// // A saturated filter always matches.
/// assert!(lvq_bloom::theoretical_fpr(8, 2, 1_000_000) > 0.99);
/// ```
pub fn theoretical_fpr(m_bits: u64, k: u32, n: u64) -> f64 {
    fill_ratio_estimate(m_bits, k, n).powi(k as i32)
}

/// The hash count minimising the false-positive rate for `m_bits` bits and
/// `n` items: `round(m/n * ln 2)`, at least 1.
///
/// # Examples
///
/// ```
/// assert_eq!(lvq_bloom::optimal_k(80_000, 10_000), 6);
/// ```
pub fn optimal_k(m_bits: u64, n: u64) -> u32 {
    if n == 0 {
        return 1;
    }
    let k = (m_bits as f64 / n as f64 * std::f64::consts::LN_2).round();
    (k as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_ratio_monotone_in_n() {
        let mut prev = -1.0;
        for n in [0u64, 10, 100, 1_000, 10_000, 100_000] {
            let f = fill_ratio_estimate(80_000, 2, n);
            assert!(f > prev, "fill ratio must grow with n");
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
    }

    #[test]
    fn fpr_monotone_in_n() {
        // The paper's Fig. 2 point: more elements => higher FPM likelihood.
        let mut prev = -1.0;
        for n in [0u64, 100, 1_000, 10_000, 100_000] {
            let p = theoretical_fpr(240_000, 2, n);
            assert!(p > prev || (p == 0.0 && prev < 0.0));
            prev = p;
        }
    }

    #[test]
    fn fpr_decreases_with_size() {
        let small = theoretical_fpr(80_000, 2, 5_000);
        let large = theoretical_fpr(240_000, 2, 5_000);
        assert!(large < small);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(fill_ratio_estimate(0, 2, 10), 1.0);
        assert_eq!(optimal_k(100, 0), 1);
        assert_eq!(optimal_k(1, 1_000_000), 1);
    }

    #[test]
    fn paper_rule_of_thumb() {
        // §IV-A1: FPM below 0.01 needs bits-per-element ratio above ~10.
        let n = 1_000;
        let k = optimal_k(10 * n, n);
        assert!(theoretical_fpr(10 * n, k, n) < 0.01);
    }
}
