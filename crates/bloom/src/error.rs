//! Bloom filter error type.

use std::error::Error;
use std::fmt;

/// Error returned by Bloom filter constructors and binary operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BloomError {
    /// The requested filter size was zero.
    ZeroSize,
    /// The requested number of hash functions was zero.
    ZeroHashes,
    /// A binary operation combined filters with different parameters.
    ///
    /// Unioning filters of different sizes or hash counts would silently
    /// produce garbage membership answers, so it is rejected.
    ParamsMismatch,
}

impl fmt::Display for BloomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BloomError::ZeroSize => f.write_str("bloom filter size must be at least one byte"),
            BloomError::ZeroHashes => f.write_str("bloom filter needs at least one hash function"),
            BloomError::ParamsMismatch => f.write_str("bloom filters have mismatched parameters"),
        }
    }
}

impl Error for BloomError {}
