//! Bloom filter parameters.

use lvq_codec::{Decodable, DecodeError, Encodable, Reader};

use crate::analysis::optimal_k;
use crate::error::BloomError;

/// Size, hash count and tweak of a Bloom filter.
///
/// All filters participating in one BMT (or one chain configuration) share
/// the same parameters, so unions and membership checks are well-defined
/// across blocks.
///
/// # Examples
///
/// ```
/// use lvq_bloom::BloomParams;
///
/// # fn main() -> Result<(), lvq_bloom::BloomError> {
/// let params = BloomParams::new(10_000, 2)?; // the paper's 10 KB filter
/// assert_eq!(params.bits(), 80_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BloomParams {
    size_bytes: u32,
    hashes: u32,
    tweak: u32,
}

impl BloomParams {
    /// Creates parameters for a filter of `size_bytes` bytes with `hashes`
    /// hash functions and tweak 0.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::ZeroSize`] or [`BloomError::ZeroHashes`] for
    /// degenerate arguments.
    pub fn new(size_bytes: u32, hashes: u32) -> Result<Self, BloomError> {
        if size_bytes == 0 {
            return Err(BloomError::ZeroSize);
        }
        if hashes == 0 {
            return Err(BloomError::ZeroHashes);
        }
        Ok(BloomParams {
            size_bytes,
            hashes,
            tweak: 0,
        })
    }

    /// Creates parameters sized for `expected_items` at the
    /// information-theoretically optimal hash count.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::ZeroSize`] if `size_bytes` is zero.
    pub fn sized_for(size_bytes: u32, expected_items: u64) -> Result<Self, BloomError> {
        if size_bytes == 0 {
            return Err(BloomError::ZeroSize);
        }
        let k = optimal_k(u64::from(size_bytes) * 8, expected_items).max(1);
        BloomParams::new(size_bytes, k)
    }

    /// Returns a copy with the given BIP 37 tweak.
    pub fn with_tweak(mut self, tweak: u32) -> Self {
        self.tweak = tweak;
        self
    }

    /// Filter size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Filter size in bits (`8 * size_bytes`).
    pub fn bits(&self) -> u64 {
        u64::from(self.size_bytes) * 8
    }

    /// Number of hash functions `k`.
    pub fn hashes(&self) -> u32 {
        self.hashes
    }

    /// BIP 37 tweak mixed into every seed.
    pub fn tweak(&self) -> u32 {
        self.tweak
    }

    /// The murmur3 seed of hash function `i` (BIP 37 schedule).
    pub(crate) fn seed(&self, i: u32) -> u32 {
        i.wrapping_mul(0xFBA4_C795).wrapping_add(self.tweak)
    }
}

impl Encodable for BloomParams {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.size_bytes.encode_into(out);
        self.hashes.encode_into(out);
        self.tweak.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        12
    }
}

impl Decodable for BloomParams {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let size_bytes = u32::decode_from(reader)?;
        let hashes = u32::decode_from(reader)?;
        let tweak = u32::decode_from(reader)?;
        BloomParams::new(size_bytes, hashes)
            .map(|p| p.with_tweak(tweak))
            .map_err(|_| DecodeError::InvalidValue {
                what: "bloom params",
                found: u64::from(size_bytes.min(hashes)),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_codec::decode_exact;

    #[test]
    fn rejects_degenerate_params() {
        assert_eq!(BloomParams::new(0, 2), Err(BloomError::ZeroSize));
        assert_eq!(BloomParams::new(10, 0), Err(BloomError::ZeroHashes));
        assert_eq!(BloomParams::sized_for(0, 5), Err(BloomError::ZeroSize));
    }

    #[test]
    fn sized_for_uses_optimal_k() {
        // m = 80_000 bits, n = 10_000 items => k = round(ln2 * 8) = 6.
        let p = BloomParams::sized_for(10_000, 10_000).unwrap();
        assert_eq!(p.hashes(), 6);
        // Very large n still yields k >= 1.
        let p = BloomParams::sized_for(10, 1_000_000).unwrap();
        assert_eq!(p.hashes(), 1);
    }

    #[test]
    fn seed_schedule_is_bip37() {
        let p = BloomParams::new(100, 3).unwrap().with_tweak(7);
        assert_eq!(p.seed(0), 7);
        assert_eq!(p.seed(1), 0xFBA4_C795u32.wrapping_add(7));
        assert_eq!(p.seed(2), 0xFBA4_C795u32.wrapping_mul(2).wrapping_add(7));
    }

    #[test]
    fn codec_roundtrip_and_rejects_invalid() {
        let p = BloomParams::new(30_000, 2).unwrap().with_tweak(99);
        assert_eq!(decode_exact::<BloomParams>(&p.encode()).unwrap(), p);
        // Zero size on the wire is rejected.
        let bad = [0u8; 12];
        assert!(decode_exact::<BloomParams>(&bad).is_err());
    }
}
