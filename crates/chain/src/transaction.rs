//! Transactions in a simplified UTXO model.

use std::collections::BTreeSet;

use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::Hash256;

use crate::address::Address;

/// Reference to a previous transaction output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxOutPoint {
    /// Id of the transaction being spent.
    pub txid: Hash256,
    /// Output index within that transaction.
    pub vout: u32,
}

impl TxOutPoint {
    /// The outpoint coinbase inputs use (null txid, max vout).
    pub const COINBASE: TxOutPoint = TxOutPoint {
        txid: Hash256::ZERO,
        vout: u32::MAX,
    };
}

impl Encodable for TxOutPoint {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.txid.encode_into(out);
        self.vout.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        36
    }
}

impl Decodable for TxOutPoint {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxOutPoint {
            txid: Hash256::decode_from(reader)?,
            vout: u32::decode_from(reader)?,
        })
    }
}

/// A transaction input.
///
/// Substitution note (see DESIGN.md): real Bitcoin inputs carry a script
/// and the spender's address is recovered from the *referenced output*.
/// The paper's history queries need the addresses a transaction touches,
/// so inputs here carry the spending address and value inline. This
/// changes no measured quantity materially (script bytes are replaced by
/// address bytes) and keeps blocks self-describing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxInput {
    /// The output being spent.
    pub prev_out: TxOutPoint,
    /// Address that owned the spent output (the paper's `w_i` side).
    pub address: Address,
    /// Value of the spent output in satoshi.
    pub value: u64,
}

impl Encodable for TxInput {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.prev_out.encode_into(out);
        self.address.encode_into(out);
        self.value.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.prev_out.encoded_len() + self.address.encoded_len() + 8
    }
}

impl Decodable for TxInput {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxInput {
            prev_out: TxOutPoint::decode_from(reader)?,
            address: Address::decode_from(reader)?,
            value: u64::decode_from(reader)?,
        })
    }
}

/// A transaction output: `value` satoshi paid to `address` (the paper's
/// `v_j` side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxOutput {
    /// Receiving address.
    pub address: Address,
    /// Value in satoshi.
    pub value: u64,
}

impl Encodable for TxOutput {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.address.encode_into(out);
        self.value.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.address.encoded_len() + 8
    }
}

impl Decodable for TxOutput {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxOutput {
            address: Address::decode_from(reader)?,
            value: u64::decode_from(reader)?,
        })
    }
}

/// A transaction.
///
/// # Examples
///
/// ```
/// use lvq_chain::{Address, Transaction};
///
/// let tx = Transaction::coinbase(Address::new("1Miner"), 50_0000_0000, 0);
/// assert!(tx.is_coinbase());
/// assert!(tx.involves(&Address::new("1Miner")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Format version (Bitcoin uses 1/2; the value only feeds the txid).
    pub version: u32,
    /// Spent outputs.
    pub inputs: Vec<TxInput>,
    /// Created outputs.
    pub outputs: Vec<TxOutput>,
    /// Earliest block height at which the transaction is valid.
    pub lock_time: u32,
}

impl Transaction {
    /// Creates a coinbase transaction paying `value` to `miner`.
    ///
    /// `extra_nonce` is mixed into the lock_time so that two coinbases of
    /// equal value and recipient still have distinct txids (Bitcoin
    /// solves the same problem with the block height in the coinbase
    /// script, BIP 34).
    pub fn coinbase(miner: Address, value: u64, extra_nonce: u32) -> Self {
        Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: TxOutPoint::COINBASE,
                address: miner.clone(),
                value: 0,
            }],
            outputs: vec![TxOutput {
                address: miner,
                value,
            }],
            lock_time: extra_nonce,
        }
    }

    /// True for coinbase transactions.
    pub fn is_coinbase(&self) -> bool {
        self.inputs.len() == 1 && self.inputs[0].prev_out == TxOutPoint::COINBASE
    }

    /// The transaction id: double SHA-256 of the encoding, like Bitcoin.
    pub fn txid(&self) -> Hash256 {
        Hash256::hash_double(&self.encode())
    }

    /// Every distinct address this transaction touches (inputs and
    /// outputs), in sorted order. Coinbase marker inputs (value 0 spent
    /// from the miner) still count as touching the miner, matching the
    /// paper's "sender or receiver" definition.
    pub fn addresses(&self) -> BTreeSet<&Address> {
        self.inputs
            .iter()
            .map(|i| &i.address)
            .chain(self.outputs.iter().map(|o| &o.address))
            .collect()
    }

    /// True if `address` appears in any input or output.
    pub fn involves(&self, address: &Address) -> bool {
        self.inputs.iter().any(|i| &i.address == address)
            || self.outputs.iter().any(|o| &o.address == address)
    }

    /// Sum of output values.
    pub fn total_output(&self) -> u64 {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// Sum of input values.
    pub fn total_input(&self) -> u64 {
        self.inputs.iter().map(|i| i.value).sum()
    }
}

impl Encodable for Transaction {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.version.encode_into(out);
        self.inputs.encode_into(out);
        self.outputs.encode_into(out);
        self.lock_time.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        4 + self.inputs.encoded_len() + self.outputs.encoded_len() + 4
    }
}

impl Decodable for Transaction {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Transaction {
            version: u32::decode_from(reader)?,
            inputs: Vec::<TxInput>::decode_from(reader)?,
            outputs: Vec::<TxOutput>::decode_from(reader)?,
            lock_time: u32::decode_from(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_codec::decode_exact;

    fn sample() -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: TxOutPoint {
                    txid: Hash256::hash(b"prev"),
                    vout: 1,
                },
                address: Address::new("1Sender"),
                value: 168_000_000,
            }],
            outputs: vec![
                TxOutput {
                    address: Address::new("1Receiver"),
                    value: 100_000_000,
                },
                TxOutput {
                    address: Address::new("1Sender"),
                    value: 67_000_000,
                },
            ],
            lock_time: 0,
        }
    }

    #[test]
    fn txid_changes_with_content() {
        let tx = sample();
        let mut tweaked = tx.clone();
        tweaked.outputs[0].value += 1;
        assert_ne!(tx.txid(), tweaked.txid());
        assert_eq!(tx.txid(), tx.clone().txid());
    }

    #[test]
    fn addresses_are_distinct_and_sorted() {
        let tx = sample();
        let addrs: Vec<&str> = tx.addresses().iter().map(|a| a.as_str()).collect();
        assert_eq!(addrs, vec!["1Receiver", "1Sender"]);
    }

    #[test]
    fn involves_checks_both_sides() {
        let tx = sample();
        assert!(tx.involves(&Address::new("1Sender")));
        assert!(tx.involves(&Address::new("1Receiver")));
        assert!(!tx.involves(&Address::new("1Nobody")));
    }

    #[test]
    fn coinbase_identification() {
        let cb = Transaction::coinbase(Address::new("1Miner"), 50, 7);
        assert!(cb.is_coinbase());
        assert!(!sample().is_coinbase());
        // Distinct extra nonces give distinct txids.
        let cb2 = Transaction::coinbase(Address::new("1Miner"), 50, 8);
        assert_ne!(cb.txid(), cb2.txid());
    }

    #[test]
    fn totals() {
        let tx = sample();
        assert_eq!(tx.total_input(), 168_000_000);
        assert_eq!(tx.total_output(), 167_000_000); // 1_000_000 fee
    }

    #[test]
    fn codec_roundtrip() {
        let tx = sample();
        let bytes = tx.encode();
        assert_eq!(bytes.len(), tx.encoded_len());
        assert_eq!(decode_exact::<Transaction>(&bytes).unwrap(), tx);
    }
}
