//! The assembled [`Chain`] and its lazy BMT access.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;

use lvq_bloom::BloomFilter;
use lvq_crypto::Hash256;
use lvq_merkle::bmt::{merge_count, BmtBuilder, BmtSource};
use lvq_merkle::SortedMerkleTree;

use crate::address::Address;
use crate::block::Block;
use crate::error::ChainError;
use crate::header::BlockHeader;
use crate::params::{CacheConfig, ChainParams};
use crate::source::{BlockSource, InMemoryBlocks};
use crate::tables::{InMemoryTables, SpanRecord, TableSource, TableUpdate};

/// Hit/miss and occupancy counters of one of the chain's memo caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to recompute.
    pub misses: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Approximate bytes currently cached.
    pub used_bytes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Combined statistics of all chain-side memo caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainCacheStats {
    /// The dyadic-span Bloom filter cache.
    pub filters: CacheStats,
    /// The per-block SMT cache.
    pub smts: CacheStats,
    /// The block source's own cache (all zeros for a fully in-memory
    /// source, which never misses and never caches).
    pub blocks: CacheStats,
    /// The table source's index node cache (all zeros for the
    /// in-memory table source, which keeps everything resident).
    pub index_nodes: CacheStats,
}

/// A bounded FIFO memo cache with hit/miss counters.
///
/// Entries carry an explicit byte size; inserting past the budget evicts
/// in insertion order. FIFO (rather than LRU) keeps `put` O(1) and is
/// good enough here: within one query the same span is rarely requested
/// twice after eviction, and across queries the whole working set either
/// fits or does not.
#[derive(Debug)]
struct MemoCache<K, V> {
    budget_bytes: usize,
    used_bytes: usize,
    entries: HashMap<K, (V, usize)>,
    order: VecDeque<K>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Copy, V: Clone> MemoCache<K, V> {
    fn new(budget_bytes: usize) -> Self {
        MemoCache {
            budget_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        match self.entries.get(key) {
            Some((value, _)) => {
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, key: K, value: V, size: usize) {
        if size > self.budget_bytes {
            return;
        }
        match self.entries.insert(key, (value, size)) {
            None => {
                self.used_bytes += size;
                self.order.push_back(key);
            }
            Some((_, old_size)) => {
                self.used_bytes = self.used_bytes - old_size + size;
            }
        }
        while self.used_bytes > self.budget_bytes {
            let Some(evict) = self.order.pop_front() else {
                break;
            };
            if let Some((_, evicted_size)) = self.entries.remove(&evict) {
                self.used_bytes -= evicted_size;
            }
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used_bytes = 0;
    }

    /// Drops every entry and adopts a new byte budget; the hit/miss
    /// counters keep counting across the resize.
    fn reset_with_budget(&mut self, budget_bytes: usize) {
        self.clear();
        self.budget_bytes = budget_bytes;
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len() as u64,
            used_bytes: self.used_bytes as u64,
        }
    }
}

/// An assembled blockchain: blocks at heights `1..=tip` behind a
/// [`BlockSource`], per-block address tables behind a [`TableSource`],
/// and the hash of every dyadic BMT span.
///
/// Headers and span hashes always live in memory — they are small and
/// every query touches them. The blocks sit behind the `S` parameter:
/// [`InMemoryBlocks`] (the default, what [`crate::ChainBuilder`]
/// produces) keeps them all deserialized, while a disk-backed source
/// materializes them lazily through a bounded cache. The per-block
/// address tables sit behind the `T` parameter the same way:
/// [`InMemoryTables`] keeps them all resident, while a persistent
/// authenticated index serves them from point reads.
///
/// Bloom filters are *not* stored (a 4,096-block chain of 500 KB filters
/// would need 2 GB); they are recomputed from the address tables on
/// demand through a bounded cache. Recomputation is exact: a filter is a
/// pure function of the address set and the shared [`lvq_bloom::BloomParams`].
#[derive(Debug)]
pub struct Chain<S: BlockSource = InMemoryBlocks, T: TableSource = InMemoryTables> {
    pub(crate) params: ChainParams,
    /// Every block header, heights 1-based.
    pub(crate) headers: Vec<BlockHeader>,
    /// Per-block sorted `(address, distinct-tx count)` tables; always
    /// consistent with `headers` (`tables.len() == headers.len()`).
    pub(crate) tables: T,
    /// BMT node hash for every finalised dyadic span `(lo, hi)`.
    pub(crate) span_hashes: HashMap<(u64, u64), Hash256>,
    /// Block storage.
    pub(crate) source: S,
    /// The live BMT builder positioned at `tip + 1`, retained so
    /// [`Chain::extend_one`] appends without replaying the segment.
    /// `None` either because the policy commits no BMT or because the
    /// chain was produced by a path that did not keep one; in the
    /// latter case extension rebuilds it from the stored span hashes.
    pub(crate) bmt_builder: Option<BmtBuilder>,
    /// Memoised Bloom filters, keyed by span (`(h, h)` for leaves).
    filter_cache: Mutex<MemoCache<(u64, u64), BloomFilter>>,
    /// Memoised per-block SMTs, keyed by height.
    smt_cache: Mutex<MemoCache<u64, Arc<SortedMerkleTree>>>,
}

impl Chain {
    pub(crate) fn from_parts(
        params: ChainParams,
        blocks: Vec<Block>,
        addr_counts: Vec<Arc<Vec<(Address, u64)>>>,
        span_hashes: HashMap<(u64, u64), Hash256>,
        bmt_builder: Option<BmtBuilder>,
    ) -> Self {
        let cache = params.cache_config();
        let headers = blocks.iter().map(|b| b.header).collect();
        Chain {
            params,
            headers,
            tables: InMemoryTables::from_tables(addr_counts),
            span_hashes,
            source: InMemoryBlocks::new(blocks),
            bmt_builder,
            filter_cache: Mutex::new(MemoCache::new(cache.filter_cache_bytes)),
            smt_cache: Mutex::new(MemoCache::new(cache.smt_cache_bytes)),
        }
    }
}

impl<S: BlockSource> Chain<S> {
    /// Assembles a chain over `source` without replaying commitments.
    ///
    /// One streaming pass over the blocks rebuilds the derived state a
    /// chain needs to answer queries: headers, per-block address tables,
    /// and — when the policy commits a BMT — the dyadic span hashes,
    /// regenerated through the same incremental [`BmtBuilder`] the
    /// original build used. Header chaining (each block's
    /// `prev_block` hash) is still checked, but transaction Merkle
    /// roots, SMT commitments, and filter content hashes are *trusted*:
    /// use this only on storage you own, where record checksums (or an
    /// earlier full validation) already vouch for the bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::BrokenChainLink`] if the headers do not
    /// chain, or any error from the source or the BMT builder.
    pub fn assemble_trusted(params: ChainParams, source: S) -> Result<Self, ChainError> {
        let mut headers: Vec<BlockHeader> = Vec::new();
        let mut addr_counts: Vec<Arc<Vec<(Address, u64)>>> = Vec::new();
        let mut span_hashes: HashMap<(u64, u64), Hash256> = HashMap::new();
        let mut bmt_builder = if params.policy().bmt {
            Some(BmtBuilder::new(params.bloom(), params.segment_len(), 1)?)
        } else {
            None
        };
        let mut prev_hash = Hash256::ZERO;

        source.scan(&mut |height, block| {
            if block.header.prev_block != prev_hash {
                return Err(ChainError::BrokenChainLink { height });
            }
            prev_hash = block.header.block_hash();
            let counts = block.address_counts();
            if let Some(builder) = bmt_builder.as_mut() {
                let mut filter = BloomFilter::new(params.bloom());
                for (addr, _) in &counts {
                    filter.insert(addr.as_bytes());
                }
                let commit = builder.push_leaf(filter)?;
                for span in commit.new_spans {
                    span_hashes.insert((span.lo, span.hi), span.hash);
                }
            }
            headers.push(block.header);
            addr_counts.push(Arc::new(counts));
            Ok(())
        })?;

        let cache = params.cache_config();
        Ok(Chain {
            params,
            headers,
            tables: InMemoryTables::from_tables(addr_counts),
            span_hashes,
            source,
            bmt_builder,
            filter_cache: Mutex::new(MemoCache::new(cache.filter_cache_bytes)),
            smt_cache: Mutex::new(MemoCache::new(cache.smt_cache_bytes)),
        })
    }
}

impl<S: BlockSource, T: TableSource> Chain<S, T> {
    /// Reassembles a chain from already-verified restored state: headers
    /// and span hashes (from a trusted on-disk record), a block source,
    /// and a table source that is consistent with exactly
    /// `headers.len()` blocks. Nothing is replayed; callers absorb any
    /// delta the source holds beyond the restored tip with
    /// [`Chain::extend_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::Source`] if `tables.len() != headers.len()`
    /// or the block source holds fewer blocks than the restored tip.
    pub fn from_restored_parts(
        params: ChainParams,
        headers: Vec<BlockHeader>,
        span_hashes: HashMap<(u64, u64), Hash256>,
        source: S,
        tables: T,
    ) -> Result<Self, ChainError> {
        if tables.len() != headers.len() as u64 {
            return Err(ChainError::Source {
                detail: format!(
                    "table source at height {} does not match restored tip {}",
                    tables.len(),
                    headers.len()
                ),
            });
        }
        if source.len() < headers.len() as u64 {
            return Err(ChainError::Source {
                detail: format!(
                    "block source at height {} is behind restored tip {}",
                    source.len(),
                    headers.len()
                ),
            });
        }
        let cache = params.cache_config();
        Ok(Chain {
            params,
            headers,
            tables,
            span_hashes,
            source,
            bmt_builder: None,
            filter_cache: Mutex::new(MemoCache::new(cache.filter_cache_bytes)),
            smt_cache: Mutex::new(MemoCache::new(cache.smt_cache_bytes)),
        })
    }

    /// Absorbs the block at `tip + 1` from the source into the derived
    /// state (header, address table, BMT span hashes), returning the new
    /// tip height.
    ///
    /// The block must already be durable in the source — append to the
    /// store *first*, then extend. On a crash between the two, the store
    /// leads the derived state and a restart re-assembles from it, so
    /// nothing is lost and nothing is double-counted.
    ///
    /// Commitments are trusted exactly as in
    /// [`Chain::assemble_trusted`]; header chaining is still checked.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] if the source has no block
    /// beyond the current tip, [`ChainError::BrokenChainLink`] if the
    /// next block does not chain onto the tip header, or any source or
    /// BMT builder error.
    pub fn extend_one(&mut self) -> Result<u64, ChainError> {
        let height = self.tip_height() + 1;
        let block = self.source.block(height)?;
        if block.header.prev_block != self.tip_hash() {
            return Err(ChainError::BrokenChainLink { height });
        }
        let counts = Arc::new(block.address_counts());
        if self.params.policy().bmt && self.bmt_builder.is_none() {
            self.bmt_builder = self.take_or_rebuild_bmt_builder()?;
        }
        let mut new_spans: Vec<SpanRecord> = Vec::new();
        if let Some(builder) = self.bmt_builder.as_mut() {
            let mut filter = BloomFilter::new(self.params.bloom());
            for (addr, _) in counts.iter() {
                filter.insert(addr.as_bytes());
            }
            let commit = builder.push_leaf(filter)?;
            for span in commit.new_spans {
                new_spans.push(SpanRecord {
                    lo: span.lo,
                    hi: span.hi,
                    hash: span.hash,
                });
            }
        }
        if let Err(e) = self.tables.push(TableUpdate {
            height,
            header: &block.header,
            table: counts,
            new_spans: &new_spans,
        }) {
            // The builder already consumed this block's leaf; drop it so
            // a retry rebuilds it from the span hashes at the old tip.
            self.bmt_builder = None;
            return Err(e);
        }
        // Only after the table source accepted the block does the chain
        // adopt it: a failed push leaves the previous tip intact.
        for span in &new_spans {
            self.span_hashes.insert((span.lo, span.hi), span.hash);
        }
        self.headers.push(block.header);
        Ok(height)
    }

    /// Absorbs up to `max` blocks the source holds beyond the current
    /// tip, returning how many were absorbed (zero when already caught
    /// up). Repeated [`Chain::extend_one`] — see there for the
    /// durability contract — after validating the *whole* batch's
    /// header linkage up front, so a non-linking block anywhere in the
    /// batch rejects it atomically: neither the chain nor its derived
    /// state absorbs any prefix of a batch that cannot complete.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::BrokenChainLink`] with the chain exactly
    /// at its pre-batch state if any candidate block fails to link;
    /// otherwise as [`Chain::extend_one`].
    pub fn extend_batch(&mut self, max: u64) -> Result<u64, ChainError> {
        let start = self.tip_height();
        let goal = self.source.len().min(start.saturating_add(max));
        let mut prev = self.tip_hash();
        for height in start + 1..=goal {
            let block = self.source.block(height)?;
            if block.header.prev_block != prev {
                return Err(ChainError::BrokenChainLink { height });
            }
            prev = block.header.block_hash();
        }
        let mut absorbed = 0;
        while self.tip_height() < goal {
            self.extend_one()?;
            absorbed += 1;
        }
        Ok(absorbed)
    }

    /// Hands out the live BMT builder, rebuilding it from stored span
    /// hashes and recomputed span filters when no builder was retained —
    /// the dyadic decomposition of the partial segment, widest first.
    /// Returns `None` iff the policy commits no BMT.
    pub(crate) fn take_or_rebuild_bmt_builder(&mut self) -> Result<Option<BmtBuilder>, ChainError> {
        if !self.params.policy().bmt {
            return Ok(None);
        }
        if let Some(builder) = self.bmt_builder.take() {
            return Ok(Some(builder));
        }
        let tip = self.tip_height();
        let m = self.params.segment_len();
        let mut rem = tip % m;
        let mut start = tip - rem + 1;
        let mut stack = Vec::new();
        while rem > 0 {
            let width = 1u64 << (63 - rem.leading_zeros());
            let (lo, hi) = (start, start + width - 1);
            let hash = self.span_hash(lo, hi).ok_or(ChainError::Bmt(
                lvq_merkle::BmtError::MalformedProof {
                    reason: "missing span hash while resuming",
                },
            ))?;
            let filter = self.span_filter(lo, hi)?;
            stack.push((lo, hi, hash, filter));
            start += width;
            rem -= width;
        }
        Ok(Some(BmtBuilder::resume(
            self.params.bloom(),
            m,
            1,
            tip + 1,
            stack,
        )?))
    }

    /// The chain's configuration.
    pub fn params(&self) -> ChainParams {
        self.params
    }

    /// Read access to the block source (e.g. to report its resident
    /// footprint).
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Re-sizes both memo caches to `cache`'s budgets, dropping every
    /// cached entry (the hit/miss counters keep counting).
    ///
    /// Cache budgets are operational, not protocol: a chain loaded from
    /// disk starts with [`CacheConfig::default`], and a server operator
    /// re-sizes it here before serving.
    pub fn set_cache_config(&mut self, cache: CacheConfig) {
        self.params = self.params.with_cache_config(cache);
        self.filter_cache
            .lock()
            .reset_with_budget(cache.filter_cache_bytes);
        self.smt_cache
            .lock()
            .reset_with_budget(cache.smt_cache_bytes);
        self.tables.set_cache_budget(cache.index_node_cache_bytes);
    }

    /// Height of the latest block (`0` for an empty chain).
    pub fn tip_height(&self) -> u64 {
        self.headers.len() as u64
    }

    /// Hash of the latest block's header ([`Hash256::ZERO`] for an
    /// empty chain) — the value the next block's `prev_block` must
    /// carry, so ingest pipelines can validate linkage before
    /// persisting anything.
    pub fn tip_hash(&self) -> Hash256 {
        self.headers
            .last()
            .map_or(Hash256::ZERO, BlockHeader::block_hash)
    }

    /// Hash of the header at `height` — [`Hash256::ZERO`] at height 0 —
    /// which is the `prev_block` value a block at `height + 1` must
    /// carry. This is the fork-point anchor a reorg validates against.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] above the tip.
    pub fn hash_at(&self, height: u64) -> Result<Hash256, ChainError> {
        if height == 0 {
            return Ok(Hash256::ZERO);
        }
        self.header(height).map(BlockHeader::block_hash)
    }

    /// Rewinds the chain to `height`, discarding every block above it
    /// from both the block source and all derived state: headers,
    /// address tables, BMT span hashes whose span reaches above
    /// `height`, the live BMT builder (rebuilt lazily from the
    /// surviving span hashes on the next extension), and both memo
    /// caches.
    ///
    /// Derived state is truncated *before* the block source, mirroring
    /// the forward durability rule (the store always leads): if the
    /// source truncation fails midway, the chain is left in the normal
    /// "source ahead of derived" state a restart already knows how to
    /// absorb.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] if `height` is above the
    /// tip, or any error from the sources.
    pub fn rewind_to(&mut self, height: u64) -> Result<(), ChainError> {
        let tip = self.tip_height();
        if height > tip {
            return Err(ChainError::UnknownHeight { height });
        }
        if height == tip {
            return Ok(());
        }
        self.tables.truncate(height)?;
        self.headers.truncate(height as usize);
        self.span_hashes.retain(|&(_, hi), _| hi <= height);
        self.bmt_builder = None;
        self.filter_cache.lock().clear();
        self.smt_cache.lock().clear();
        self.tables.clear_cache();
        self.source.truncate(height)?;
        Ok(())
    }

    /// Switches the chain to a competing branch: validates that
    /// `branch` links contiguously onto the header at `fork_height`,
    /// rewinds to the fork point ([`Chain::rewind_to`]), then appends
    /// and absorbs every branch block in order. Returns the new tip
    /// height.
    ///
    /// Linkage is validated *before* any state is touched, so a
    /// malformed branch leaves the chain exactly as it was. Fork
    /// *choice* (whether this branch should win) is the caller's
    /// business — typically a `ForkTree` applying the longest-chain
    /// rule.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] if `fork_height` is above
    /// the tip, [`ChainError::BrokenChainLink`] if the branch does not
    /// link, [`ChainError::Source`] on an empty branch, or any error
    /// from the rewind or replay.
    pub fn reorg_to(&mut self, fork_height: u64, branch: &[Arc<Block>]) -> Result<u64, ChainError> {
        if branch.is_empty() {
            return Err(ChainError::Source {
                detail: "reorg branch is empty".into(),
            });
        }
        let mut prev = self.hash_at(fork_height)?;
        for (i, block) in branch.iter().enumerate() {
            let height = fork_height + 1 + i as u64;
            if block.header.prev_block != prev {
                return Err(ChainError::BrokenChainLink { height });
            }
            prev = block.header.block_hash();
        }
        self.rewind_to(fork_height)?;
        for block in branch {
            self.source.push_block(block.clone())?;
            self.extend_one()?;
        }
        Ok(self.tip_height())
    }

    /// The block at `height` (heights are 1-based, like the paper's
    /// Table II examples), materialized from the block source.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=tip` and
    /// [`ChainError::Source`] if the backing storage fails.
    pub fn block(&self, height: u64) -> Result<Arc<Block>, ChainError> {
        self.index(height)?;
        self.source.block(height)
    }

    /// The header at `height`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=tip`.
    pub fn header(&self, height: u64) -> Result<&BlockHeader, ChainError> {
        self.index(height).map(|i| &self.headers[i])
    }

    /// Copies every header — the download a light node performs.
    pub fn headers(&self) -> Vec<BlockHeader> {
        self.headers.clone()
    }

    /// The sorted `(address, count)` table of the block at `height`,
    /// served from the table source (a point read for an indexed
    /// source, a vector lookup for the in-memory one).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=tip` and
    /// [`ChainError::Source`] if the table source fails.
    pub fn addr_counts(&self, height: u64) -> Result<Arc<Vec<(Address, u64)>>, ChainError> {
        self.index(height)?;
        self.tables.table(height)
    }

    /// Read access to the table source (e.g. to report its resident
    /// footprint or per-address index).
    pub fn tables(&self) -> &T {
        &self.tables
    }

    /// Flushes the table source and anchors it at the current tip — call
    /// after the corresponding blocks are durable in the block store so
    /// the index never leads the chain. A no-op for in-memory tables.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::Source`] on storage failure.
    pub fn sync_derived(&self) -> Result<(), ChainError> {
        self.tables.sync(self.tip_height())
    }

    /// The Bloom filter of the block at `height`, recomputed or served
    /// from cache.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=tip`.
    pub fn leaf_filter(&self, height: u64) -> Result<BloomFilter, ChainError> {
        self.span_filter(height, height)
    }

    /// The union filter over blocks `lo..=hi` (bit-identical to OR-ing
    /// the per-block filters), served from the bounded span memo cache.
    ///
    /// A miss recomputes by halving the span at the BMT midpoint and
    /// unioning the halves, memoising every sub-span on the way up — so
    /// one cold segment descent leaves the whole node-filter working set
    /// cached for subsequent queries.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] if the range leaves the
    /// chain.
    pub fn span_filter(&self, lo: u64, hi: u64) -> Result<BloomFilter, ChainError> {
        self.index(lo)?;
        self.index(hi)?;
        self.span_filter_memo(lo, hi)
    }

    /// Memoised recursion behind [`Chain::span_filter`]; bounds already
    /// checked.
    fn span_filter_memo(&self, lo: u64, hi: u64) -> Result<BloomFilter, ChainError> {
        if let Some(hit) = self.filter_cache.lock().get(&(lo, hi)) {
            return Ok(hit);
        }
        let filter = if lo == hi {
            let mut filter = BloomFilter::new(self.params.bloom());
            for (addr, _) in self.tables.table(lo)?.iter() {
                filter.insert(addr.as_bytes());
            }
            filter
        } else {
            let mid = lo + (hi - lo) / 2;
            let left = self.span_filter_memo(lo, mid)?;
            let right = self.span_filter_memo(mid + 1, hi)?;
            BloomFilter::union(&left, &right).expect("halves share the chain's params")
        };
        let size = filter.params().size_bytes() as usize;
        self.filter_cache.lock().put((lo, hi), filter.clone(), size);
        Ok(filter)
    }

    /// The sorted Merkle tree over the address-count table of the block
    /// at `height`, served from the bounded SMT memo cache.
    ///
    /// Built from the stored table, not from block data — with an
    /// indexed table source this is a handful of point reads, never a
    /// block deserialization. The construction is byte-identical to
    /// [`Block::address_smt`] because the stored table *is*
    /// `Block::address_counts()`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=tip` and
    /// [`ChainError::Smt`] if the block's table cannot form a tree.
    pub fn address_smt(&self, height: u64) -> Result<Arc<SortedMerkleTree>, ChainError> {
        self.index(height)?;
        if let Some(hit) = self.smt_cache.lock().get(&height) {
            return Ok(hit);
        }
        let table = self.tables.table(height)?;
        let smt = Arc::new(
            SortedMerkleTree::new(
                table
                    .iter()
                    .map(|(a, c)| (a.as_bytes().to_vec(), *c))
                    .collect(),
            )
            .map_err(ChainError::Smt)?,
        );
        // Approximate footprint: keys + counts + two hash levels per
        // entry. Only used to bound the cache, not for accounting.
        let size = table
            .iter()
            .map(|(addr, _)| addr.as_bytes().len() + 8 + 64)
            .sum::<usize>()
            + 64;
        self.smt_cache.lock().put(height, smt.clone(), size);
        Ok(smt)
    }

    /// Hit/miss and occupancy statistics of the chain's memo caches and
    /// the block source's cache.
    pub fn cache_stats(&self) -> ChainCacheStats {
        ChainCacheStats {
            filters: self.filter_cache.lock().stats(),
            smts: self.smt_cache.lock().stats(),
            blocks: self.source.cache_stats(),
            index_nodes: self.tables.cache_stats(),
        }
    }

    /// Empties every chain-side cache — the two memo caches and the
    /// table source's node cache (hit/miss counters keep counting) —
    /// lets experiments measure cold-cache behaviour on a warm chain.
    pub fn clear_caches(&self) {
        self.filter_cache.lock().clear();
        self.smt_cache.lock().clear();
        self.tables.clear_cache();
    }

    /// The stored BMT node hash of the dyadic span `(lo, hi)`, if the
    /// chain committed one.
    pub fn span_hash(&self, lo: u64, hi: u64) -> Option<Hash256> {
        self.span_hashes.get(&(lo, hi)).copied()
    }

    /// A [`BmtSource`] over the segment `lo..=hi`, whose last block
    /// committed the BMT root for exactly this range.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] if the range leaves the
    /// chain and [`ChainError::Bmt`] if the range is not dyadic.
    pub fn segment_source(
        &self,
        lo: u64,
        hi: u64,
    ) -> Result<SegmentBmtSource<'_, S, T>, ChainError> {
        self.index(lo)?;
        self.index(hi)?;
        let count = hi - lo + 1;
        if count & (count - 1) != 0 {
            return Err(ChainError::Bmt(
                lvq_merkle::BmtError::LeafCountNotPowerOfTwo { count },
            ));
        }
        Ok(SegmentBmtSource {
            chain: self,
            lo,
            hi,
        })
    }

    /// Every transaction involving `address`, with heights — ground
    /// truth for tests and the full node's own index.
    ///
    /// When the table source keeps a per-address presence index, only
    /// the blocks the address actually appears in are read; otherwise
    /// (or if the index read fails) this streams through the whole
    /// block source (a disk-backed source scans sequentially without
    /// populating its cache).
    pub fn history_of(&self, address: &Address) -> Vec<(u64, crate::Transaction)> {
        if let Ok(Some(presence)) = self.tables.presence(address) {
            if let Ok(out) = self.history_from_presence(address, &presence) {
                return out;
            }
        }
        let mut out = Vec::new();
        self.source
            .scan(&mut |height, block| {
                for tx in &block.transactions {
                    if tx.involves(address) {
                        out.push((height, tx.clone()));
                    }
                }
                Ok(())
            })
            .expect("in-range sequential scan");
        out
    }

    /// Point-read path behind [`Chain::history_of`]: fetch only the
    /// blocks the presence index names. Heights beyond the pinned tip
    /// are skipped so reads stay tip-consistent.
    fn history_from_presence(
        &self,
        address: &Address,
        presence: &[(u64, u64)],
    ) -> Result<Vec<(u64, crate::Transaction)>, ChainError> {
        let mut out = Vec::new();
        for &(height, _count) in presence {
            if height == 0 || height > self.tip_height() {
                continue;
            }
            let block = self.source.block(height)?;
            for tx in &block.transactions {
                if tx.involves(address) {
                    out.push((height, tx.clone()));
                }
            }
        }
        Ok(out)
    }

    /// Full integrity check: header chaining, Merkle roots, and every
    /// commitment the policy requires. Intended for tests; cost is
    /// O(chain length × block size).
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), ChainError> {
        let policy = self.params.policy();
        let mut prev_hash = Hash256::ZERO;
        let mut bmt_builder = if policy.bmt {
            Some(
                BmtBuilder::new(self.params.bloom(), self.params.segment_len(), 1)
                    .map_err(ChainError::Bmt)?,
            )
        } else {
            None
        };

        self.source.scan(&mut |height, block| {
            let i = (height - 1) as usize;
            if block.header != self.headers[i] {
                return Err(ChainError::CommitmentMismatch {
                    height,
                    what: "stored header",
                });
            }
            if block.header.prev_block != prev_hash {
                return Err(ChainError::BrokenChainLink { height });
            }
            prev_hash = block.header.block_hash();

            if block.header.merkle_root != block.tx_tree().root() {
                return Err(ChainError::CommitmentMismatch {
                    height,
                    what: "merkle root",
                });
            }

            let filter = self.leaf_filter(height)?;
            if policy.bf_hash && block.header.commitments.bf_hash != Some(filter.content_hash()) {
                return Err(ChainError::CommitmentMismatch {
                    height,
                    what: "bloom filter hash",
                });
            }
            if policy.smt {
                let smt = self.address_smt(height)?;
                if block.header.commitments.smt_commitment != Some(smt.commitment()) {
                    return Err(ChainError::CommitmentMismatch {
                        height,
                        what: "smt",
                    });
                }
            }
            if let Some(builder) = bmt_builder.as_mut() {
                let commit = builder.push_leaf(filter).map_err(ChainError::Bmt)?;
                if block.header.commitments.bmt_root != Some(commit.root) {
                    return Err(ChainError::CommitmentMismatch {
                        height,
                        what: "bmt root",
                    });
                }
            }
            // Recomputed address table must match the stored one.
            if block.address_counts() != *self.tables.table(height)? {
                return Err(ChainError::CommitmentMismatch {
                    height,
                    what: "address table",
                });
            }
            Ok(())
        })
    }

    /// In-segment position (1-based) of `height` given the chain's `M` —
    /// the `l` of paper Algorithm 1 with `l = M` at segment ends.
    pub fn segment_position(&self, height: u64) -> u64 {
        let m = self.params.segment_len();
        let r = height % m;
        if r == 0 {
            m
        } else {
            r
        }
    }

    /// The block range `height` merges into its committed BMT (paper
    /// Table I).
    pub fn merged_range(&self, height: u64) -> (u64, u64) {
        let count = merge_count(self.segment_position(height));
        (height - count + 1, height)
    }

    fn index(&self, height: u64) -> Result<usize, ChainError> {
        if height == 0 || height > self.tip_height() {
            return Err(ChainError::UnknownHeight { height });
        }
        Ok((height - 1) as usize)
    }
}

/// Lazy [`BmtSource`] over one segment of a [`Chain`].
///
/// `filter` recomputes node filters from address sets; `node_hash` serves
/// the hashes the chain stored while building.
#[derive(Debug)]
pub struct SegmentBmtSource<'a, S: BlockSource = InMemoryBlocks, T: TableSource = InMemoryTables> {
    chain: &'a Chain<S, T>,
    lo: u64,
    hi: u64,
}

impl<S: BlockSource, T: TableSource> Clone for SegmentBmtSource<'_, S, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: BlockSource, T: TableSource> Copy for SegmentBmtSource<'_, S, T> {}

impl<S: BlockSource, T: TableSource> BmtSource for SegmentBmtSource<'_, S, T> {
    fn params(&self) -> lvq_bloom::BloomParams {
        self.chain.params.bloom()
    }

    fn span(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    fn filter(&self, lo: u64, hi: u64) -> BloomFilter {
        self.chain
            .span_filter(lo, hi)
            .expect("source span inside chain")
    }

    fn node_hash(&self, lo: u64, hi: u64) -> Hash256 {
        self.chain
            .span_hash(lo, hi)
            .expect("dyadic span hash stored at build time")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChainBuilder;
    use crate::params::CommitmentPolicy;
    use crate::transaction::Transaction;
    use lvq_bloom::BloomParams;

    fn small_chain(cache: CacheConfig) -> Chain {
        let params = ChainParams::new(
            BloomParams::new(128, 2).unwrap(),
            8,
            CommitmentPolicy::lvq(),
        )
        .unwrap()
        .with_cache_config(cache);
        let mut builder = ChainBuilder::new(params).unwrap();
        for h in 1..=8u32 {
            builder
                .push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, h)])
                .unwrap();
        }
        builder.finish()
    }

    #[test]
    fn cache_budgets_come_from_params() {
        let chain = small_chain(CacheConfig::disabled());
        // With zero budgets nothing is retained: every lookup misses,
        // but results stay correct.
        let a = chain.span_filter(1, 8).unwrap();
        let b = chain.span_filter(1, 8).unwrap();
        assert_eq!(a, b);
        let stats = chain.cache_stats();
        assert_eq!(stats.filters.hits, 0);
        assert_eq!(stats.filters.entries, 0);
        assert!(stats.filters.misses > 0);
    }

    #[test]
    fn set_cache_config_resizes_and_keeps_counters() {
        let mut chain = small_chain(CacheConfig::default());
        chain.span_filter(1, 8).unwrap();
        chain.span_filter(1, 8).unwrap();
        let before = chain.cache_stats();
        assert!(before.filters.hits > 0);
        assert!(before.filters.entries > 0);

        chain.set_cache_config(CacheConfig::new(1, 1));
        let after = chain.cache_stats();
        // Entries dropped, budgets shrunk, counters preserved.
        assert_eq!(after.filters.entries, 0);
        assert_eq!(after.filters.hits, before.filters.hits);
        assert_eq!(after.filters.misses, before.filters.misses);
        assert_eq!(chain.params().cache_config(), CacheConfig::new(1, 1));
        // Too small to hold a filter: still correct, never caches.
        chain.span_filter(1, 8).unwrap();
        assert_eq!(chain.cache_stats().filters.entries, 0);
    }

    #[test]
    fn in_memory_source_reports_resident_bytes() {
        let chain = small_chain(CacheConfig::default());
        let total: u64 = (1..=chain.tip_height())
            .map(|h| chain.block(h).unwrap().integral_size() as u64)
            .sum();
        assert_eq!(chain.source().resident_bytes(), total);
        // No block cache on the in-memory source.
        assert_eq!(chain.cache_stats().blocks, CacheStats::default());
    }

    #[test]
    fn assemble_trusted_matches_full_build() {
        for policy in [
            CommitmentPolicy::strawman(),
            CommitmentPolicy::lvq_without_bmt(),
            CommitmentPolicy::lvq_without_smt(),
            CommitmentPolicy::lvq(),
        ] {
            let params = ChainParams::new(BloomParams::new(128, 2).unwrap(), 8, policy).unwrap();
            let mut builder = ChainBuilder::new(params).unwrap();
            for h in 1..=13u32 {
                builder
                    .push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, h)])
                    .unwrap();
            }
            let built = builder.finish();

            let blocks: Vec<Block> = (1..=built.tip_height())
                .map(|h| (*built.block(h).unwrap()).clone())
                .collect();
            let trusted = Chain::assemble_trusted(params, InMemoryBlocks::new(blocks)).unwrap();

            assert_eq!(trusted.tip_height(), built.tip_height());
            assert_eq!(trusted.headers(), built.headers());
            assert_eq!(trusted.span_hashes, built.span_hashes);
            for h in 1..=built.tip_height() {
                assert_eq!(
                    trusted.addr_counts(h).unwrap(),
                    built.addr_counts(h).unwrap(),
                    "policy {policy:?} height {h}"
                );
            }
            // The trusted chain still passes a full validation.
            trusted.validate().unwrap();
        }
    }

    fn varied_blocks(policy: CommitmentPolicy, count: u64) -> (ChainParams, Vec<Block>, Chain) {
        let params = ChainParams::new(BloomParams::new(128, 2).unwrap(), 8, policy).unwrap();
        let mut builder = ChainBuilder::new(params).unwrap();
        for h in 1..=count {
            builder
                .push_block(vec![Transaction::coinbase(
                    Address::new(format!("1Miner{}", h % 3).as_str()),
                    50,
                    h as u32,
                )])
                .unwrap();
        }
        let built = builder.finish();
        let blocks: Vec<Block> = (1..=count)
            .map(|h| (*built.block(h).unwrap()).clone())
            .collect();
        (params, blocks, built)
    }

    #[test]
    fn extend_matches_straight_build() {
        for policy in [
            CommitmentPolicy::strawman(),
            CommitmentPolicy::lvq_without_bmt(),
            CommitmentPolicy::lvq_without_smt(),
            CommitmentPolicy::lvq(),
        ] {
            let (params, blocks, built) = varied_blocks(policy, 13);
            let mut chain =
                Chain::assemble_trusted(params, InMemoryBlocks::new(blocks[..9].to_vec())).unwrap();
            // Caught up: nothing beyond the tip, extend_one refuses.
            assert_eq!(chain.extend_batch(64).unwrap(), 0);
            assert_eq!(
                chain.extend_one().unwrap_err(),
                ChainError::UnknownHeight { height: 10 }
            );
            for b in &blocks[9..] {
                chain.source.blocks.push(Arc::new(b.clone()));
            }
            assert_eq!(chain.extend_one().unwrap(), 10);
            assert_eq!(chain.extend_batch(64).unwrap(), 3);
            assert_eq!(chain.tip_height(), 13);
            assert_eq!(chain.headers(), built.headers());
            assert_eq!(chain.span_hashes, built.span_hashes, "policy {policy:?}");
            chain.validate().unwrap();
        }
    }

    #[test]
    fn extend_crosses_segment_boundary() {
        // M = 8: extending 6 -> 10 closes segment one and opens the next.
        let (params, blocks, built) = varied_blocks(CommitmentPolicy::lvq(), 10);
        let mut chain =
            Chain::assemble_trusted(params, InMemoryBlocks::new(blocks[..6].to_vec())).unwrap();
        for b in &blocks[6..] {
            chain.source.blocks.push(Arc::new(b.clone()));
        }
        assert_eq!(chain.extend_batch(u64::MAX).unwrap(), 4);
        assert_eq!(chain.headers(), built.headers());
        assert_eq!(chain.span_hashes, built.span_hashes);
        chain.validate().unwrap();
    }

    #[test]
    fn extend_rebuilds_a_dropped_bmt_builder() {
        // A chain without a retained builder (e.g. reconstructed from
        // storage by an older path) rebuilds it from span hashes.
        let (params, blocks, built) = varied_blocks(CommitmentPolicy::lvq(), 13);
        let mut chain =
            Chain::assemble_trusted(params, InMemoryBlocks::new(blocks[..9].to_vec())).unwrap();
        chain.bmt_builder = None;
        for b in &blocks[9..] {
            chain.source.blocks.push(Arc::new(b.clone()));
        }
        assert_eq!(chain.extend_batch(u64::MAX).unwrap(), 4);
        assert_eq!(chain.headers(), built.headers());
        assert_eq!(chain.span_hashes, built.span_hashes);
        chain.validate().unwrap();
    }

    #[test]
    fn extend_rejects_broken_chaining() {
        let (params, blocks, _) = varied_blocks(CommitmentPolicy::lvq(), 10);
        let mut chain =
            Chain::assemble_trusted(params, InMemoryBlocks::new(blocks[..9].to_vec())).unwrap();
        let mut bad = blocks[9].clone();
        bad.header.prev_block = Hash256::hash(b"not the parent");
        chain.source.blocks.push(Arc::new(bad));
        assert_eq!(
            chain.extend_one().unwrap_err(),
            ChainError::BrokenChainLink { height: 10 }
        );
        // The rejected block is not absorbed.
        assert_eq!(chain.tip_height(), 9);
    }

    #[test]
    fn extend_batch_rejects_the_whole_batch_on_a_broken_link() {
        // A non-linking block in the *middle* of the batch rejects the
        // batch atomically: the valid prefix is not absorbed either.
        let (params, blocks, _) = varied_blocks(CommitmentPolicy::lvq(), 10);
        let mut chain =
            Chain::assemble_trusted(params, InMemoryBlocks::new(blocks[..5].to_vec())).unwrap();
        let before = chain.headers().to_vec();
        for (i, b) in blocks[5..].iter().enumerate() {
            let mut b = b.clone();
            if i == 2 {
                b.header.prev_block = Hash256::hash(b"not the parent");
            }
            chain.source.blocks.push(Arc::new(b));
        }
        assert_eq!(
            chain.extend_batch(u64::MAX).unwrap_err(),
            ChainError::BrokenChainLink { height: 8 }
        );
        assert_eq!(chain.tip_height(), 5);
        assert_eq!(chain.headers(), &before[..]);
    }

    fn build_with(params: ChainParams, miners: &[&str]) -> Chain {
        let mut builder = ChainBuilder::new(params).unwrap();
        for (i, miner) in miners.iter().enumerate() {
            builder
                .push_block(vec![Transaction::coinbase(
                    Address::new(*miner),
                    50,
                    i as u32 + 1,
                )])
                .unwrap();
        }
        builder.finish()
    }

    #[test]
    fn reorg_to_matches_straight_build_of_the_winner() {
        for policy in [
            CommitmentPolicy::strawman(),
            CommitmentPolicy::lvq_without_bmt(),
            CommitmentPolicy::lvq_without_smt(),
            CommitmentPolicy::lvq(),
        ] {
            let params = ChainParams::new(BloomParams::new(128, 2).unwrap(), 8, policy).unwrap();
            // Canonical and winner share heights 1..=7, then diverge;
            // the winner is longer and crosses the M=8 segment boundary.
            let canonical: Vec<&str> = vec!["1A"; 10];
            let mut winner = vec!["1A"; 7];
            winner.extend(["1B", "1B", "1B", "1B"]);
            let canonical = build_with(params, &canonical);
            let winner = build_with(params, &winner);

            let blocks: Vec<Block> = (1..=canonical.tip_height())
                .map(|h| (*canonical.block(h).unwrap()).clone())
                .collect();
            let mut chain = Chain::assemble_trusted(params, InMemoryBlocks::new(blocks)).unwrap();
            let branch: Vec<Arc<Block>> = (8..=winner.tip_height())
                .map(|h| winner.block(h).unwrap())
                .collect();
            assert_eq!(chain.reorg_to(7, &branch).unwrap(), 11);
            assert_eq!(chain.headers(), winner.headers());
            assert_eq!(chain.span_hashes, winner.span_hashes, "policy {policy:?}");
            for h in 1..=chain.tip_height() {
                assert_eq!(
                    chain.addr_counts(h).unwrap(),
                    winner.addr_counts(h).unwrap()
                );
            }
            chain.validate().unwrap();
        }
    }

    #[test]
    fn reorg_rejects_a_non_linking_branch_untouched() {
        let (params, blocks, built) = varied_blocks(CommitmentPolicy::lvq(), 10);
        let mut chain = Chain::assemble_trusted(params, InMemoryBlocks::new(blocks)).unwrap();
        // Branch that links at the fork point but breaks internally.
        let mut branch: Vec<Arc<Block>> = (8..=10).map(|h| built.block(h).unwrap()).collect();
        let mut bad = (*branch[1]).clone();
        bad.header.prev_block = Hash256::hash(b"not the parent");
        branch[1] = Arc::new(bad);
        assert_eq!(
            chain.reorg_to(7, &branch).unwrap_err(),
            ChainError::BrokenChainLink { height: 9 }
        );
        // Nothing was rewound or replayed.
        assert_eq!(chain.tip_height(), 10);
        assert_eq!(chain.headers(), built.headers());
        assert!(chain.reorg_to(7, &[]).is_err());
        assert!(matches!(
            chain.reorg_to(11, &branch),
            Err(ChainError::UnknownHeight { height: 11 })
        ));
    }

    #[test]
    fn rewind_then_extend_reabsorbs_the_same_blocks() {
        // A rewind with no replacement branch is a cancelled reorg: the
        // same blocks re-extend to a bit-identical chain.
        let (params, blocks, built) = varied_blocks(CommitmentPolicy::lvq(), 13);
        let mut chain = Chain::assemble_trusted(params, InMemoryBlocks::new(blocks)).unwrap();
        chain.rewind_to(6).unwrap();
        assert_eq!(chain.tip_height(), 6);
        assert_eq!(chain.source().len(), 6);
        assert!(chain.span_hashes.keys().all(|&(_, hi)| hi <= 6));
        for b in (7..=13).map(|h| built.block(h).unwrap()) {
            chain.source.push_block(b).unwrap();
        }
        assert_eq!(chain.extend_batch(u64::MAX).unwrap(), 7);
        assert_eq!(chain.headers(), built.headers());
        assert_eq!(chain.span_hashes, built.span_hashes);
        chain.validate().unwrap();
    }

    #[test]
    fn assemble_trusted_rejects_broken_chaining() {
        let built = small_chain(CacheConfig::default());
        let mut blocks: Vec<Block> = (1..=built.tip_height())
            .map(|h| (*built.block(h).unwrap()).clone())
            .collect();
        blocks[3].header.prev_block = Hash256::hash(b"not the parent");
        let err = Chain::assemble_trusted(built.params(), InMemoryBlocks::new(blocks)).unwrap_err();
        assert_eq!(err, ChainError::BrokenChainLink { height: 4 });
    }
}
