//! The assembled [`Chain`] and its lazy BMT access.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use lvq_bloom::BloomFilter;
use lvq_crypto::Hash256;
use lvq_merkle::bmt::{merge_count, BmtBuilder, BmtSource};

use crate::address::Address;
use crate::block::Block;
use crate::error::ChainError;
use crate::header::BlockHeader;
use crate::params::ChainParams;

/// Default byte budget for the leaf-filter cache (filters beyond this are
/// recomputed from address sets on demand).
const DEFAULT_FILTER_CACHE_BYTES: usize = 256 * 1024 * 1024;

#[derive(Debug)]
struct FilterCache {
    budget_bytes: usize,
    used_bytes: usize,
    entries: HashMap<u64, BloomFilter>,
    order: VecDeque<u64>,
}

impl FilterCache {
    fn new(budget_bytes: usize) -> Self {
        FilterCache {
            budget_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, height: u64) -> Option<BloomFilter> {
        self.entries.get(&height).cloned()
    }

    fn put(&mut self, height: u64, filter: BloomFilter) {
        let size = filter.params().size_bytes() as usize;
        if size > self.budget_bytes {
            return;
        }
        if self.entries.insert(height, filter).is_none() {
            self.used_bytes += size;
            self.order.push_back(height);
        }
        while self.used_bytes > self.budget_bytes {
            let Some(evict) = self.order.pop_front() else {
                break;
            };
            if self.entries.remove(&evict).is_some() {
                self.used_bytes -= size;
            }
        }
    }
}

/// An assembled blockchain: blocks at heights `1..=tip`, pre-computed
/// per-block address tables, and the hash of every dyadic BMT span.
///
/// Bloom filters are *not* stored (a 4,096-block chain of 500 KB filters
/// would need 2 GB); they are recomputed from the address tables on
/// demand through a bounded cache. Recomputation is exact: a filter is a
/// pure function of the address set and the shared [`lvq_bloom::BloomParams`].
///
/// Constructed by [`crate::ChainBuilder`].
#[derive(Debug)]
pub struct Chain {
    pub(crate) params: ChainParams,
    pub(crate) blocks: Vec<Block>,
    /// Sorted `(address, distinct-tx count)` per block, heights 1-based.
    pub(crate) addr_counts: Vec<Arc<Vec<(Address, u64)>>>,
    /// BMT node hash for every finalised dyadic span `(lo, hi)`.
    pub(crate) span_hashes: HashMap<(u64, u64), Hash256>,
    filter_cache: Mutex<FilterCache>,
}

impl Chain {
    pub(crate) fn from_parts(
        params: ChainParams,
        blocks: Vec<Block>,
        addr_counts: Vec<Arc<Vec<(Address, u64)>>>,
        span_hashes: HashMap<(u64, u64), Hash256>,
    ) -> Self {
        Chain {
            params,
            blocks,
            addr_counts,
            span_hashes,
            filter_cache: Mutex::new(FilterCache::new(DEFAULT_FILTER_CACHE_BYTES)),
        }
    }

    /// The chain's configuration.
    pub fn params(&self) -> ChainParams {
        self.params
    }

    /// Height of the latest block (`0` for an empty chain).
    pub fn tip_height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// The block at `height` (heights are 1-based, like the paper's
    /// Table II examples).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=tip`.
    pub fn block(&self, height: u64) -> Result<&Block, ChainError> {
        self.index(height).map(|i| &self.blocks[i])
    }

    /// The header at `height`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=tip`.
    pub fn header(&self, height: u64) -> Result<&BlockHeader, ChainError> {
        self.block(height).map(|b| &b.header)
    }

    /// Copies every header — the download a light node performs.
    pub fn headers(&self) -> Vec<BlockHeader> {
        self.blocks.iter().map(|b| b.header).collect()
    }

    /// The sorted `(address, count)` table of the block at `height`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=tip`.
    pub fn addr_counts(&self, height: u64) -> Result<&Arc<Vec<(Address, u64)>>, ChainError> {
        self.index(height).map(|i| &self.addr_counts[i])
    }

    /// The Bloom filter of the block at `height`, recomputed or served
    /// from cache.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=tip`.
    pub fn leaf_filter(&self, height: u64) -> Result<BloomFilter, ChainError> {
        let idx = self.index(height)?;
        if let Some(hit) = self.filter_cache.lock().get(height) {
            return Ok(hit);
        }
        let mut filter = BloomFilter::new(self.params.bloom());
        for (addr, _) in self.addr_counts[idx].iter() {
            filter.insert(addr.as_bytes());
        }
        self.filter_cache.lock().put(height, filter.clone());
        Ok(filter)
    }

    /// The union filter over blocks `lo..=hi`, computed by direct
    /// insertion (bit-identical to OR-ing the per-block filters).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] if the range leaves the
    /// chain.
    pub fn span_filter(&self, lo: u64, hi: u64) -> Result<BloomFilter, ChainError> {
        if lo == hi {
            return self.leaf_filter(lo);
        }
        self.index(lo)?;
        self.index(hi)?;
        let mut filter = BloomFilter::new(self.params.bloom());
        for height in lo..=hi {
            for (addr, _) in self.addr_counts[(height - 1) as usize].iter() {
                filter.insert(addr.as_bytes());
            }
        }
        Ok(filter)
    }

    /// The stored BMT node hash of the dyadic span `(lo, hi)`, if the
    /// chain committed one.
    pub fn span_hash(&self, lo: u64, hi: u64) -> Option<Hash256> {
        self.span_hashes.get(&(lo, hi)).copied()
    }

    /// A [`BmtSource`] over the segment `lo..=hi`, whose last block
    /// committed the BMT root for exactly this range.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] if the range leaves the
    /// chain and [`ChainError::Bmt`] if the range is not dyadic.
    pub fn segment_source(&self, lo: u64, hi: u64) -> Result<SegmentBmtSource<'_>, ChainError> {
        self.index(lo)?;
        self.index(hi)?;
        let count = hi - lo + 1;
        if count & (count - 1) != 0 {
            return Err(ChainError::Bmt(
                lvq_merkle::BmtError::LeafCountNotPowerOfTwo { count },
            ));
        }
        Ok(SegmentBmtSource {
            chain: self,
            lo,
            hi,
        })
    }

    /// Every transaction involving `address`, with heights — ground
    /// truth for tests and the full node's own index.
    pub fn history_of(&self, address: &Address) -> Vec<(u64, crate::Transaction)> {
        let mut out = Vec::new();
        for (i, block) in self.blocks.iter().enumerate() {
            for tx in &block.transactions {
                if tx.involves(address) {
                    out.push((i as u64 + 1, tx.clone()));
                }
            }
        }
        out
    }

    /// Full integrity check: header chaining, Merkle roots, and every
    /// commitment the policy requires. Intended for tests; cost is
    /// O(chain length × block size).
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), ChainError> {
        let policy = self.params.policy();
        let mut prev_hash = Hash256::ZERO;
        let mut bmt_builder = if policy.bmt {
            Some(
                BmtBuilder::new(self.params.bloom(), self.params.segment_len(), 1)
                    .map_err(ChainError::Bmt)?,
            )
        } else {
            None
        };

        for (i, block) in self.blocks.iter().enumerate() {
            let height = i as u64 + 1;
            if block.header.prev_block != prev_hash {
                return Err(ChainError::BrokenChainLink { height });
            }
            prev_hash = block.header.block_hash();

            if block.header.merkle_root != block.tx_tree().root() {
                return Err(ChainError::CommitmentMismatch {
                    height,
                    what: "merkle root",
                });
            }

            let filter = self.leaf_filter(height)?;
            if policy.bf_hash && block.header.commitments.bf_hash != Some(filter.content_hash())
            {
                return Err(ChainError::CommitmentMismatch {
                    height,
                    what: "bloom filter hash",
                });
            }
            if policy.smt {
                let smt = block.address_smt().map_err(ChainError::Smt)?;
                if block.header.commitments.smt_commitment != Some(smt.commitment()) {
                    return Err(ChainError::CommitmentMismatch {
                        height,
                        what: "smt",
                    });
                }
            }
            if let Some(builder) = bmt_builder.as_mut() {
                let commit = builder.push_leaf(filter).map_err(ChainError::Bmt)?;
                if block.header.commitments.bmt_root != Some(commit.root) {
                    return Err(ChainError::CommitmentMismatch {
                        height,
                        what: "bmt root",
                    });
                }
            }
            // Recomputed address table must match the stored one.
            if block.address_counts() != **self.addr_counts[i] {
                return Err(ChainError::CommitmentMismatch {
                    height,
                    what: "address table",
                });
            }
        }
        Ok(())
    }

    /// In-segment position (1-based) of `height` given the chain's `M` —
    /// the `l` of paper Algorithm 1 with `l = M` at segment ends.
    pub fn segment_position(&self, height: u64) -> u64 {
        let m = self.params.segment_len();
        let r = height % m;
        if r == 0 {
            m
        } else {
            r
        }
    }

    /// The block range `height` merges into its committed BMT (paper
    /// Table I).
    pub fn merged_range(&self, height: u64) -> (u64, u64) {
        let count = merge_count(self.segment_position(height));
        (height - count + 1, height)
    }

    fn index(&self, height: u64) -> Result<usize, ChainError> {
        if height == 0 || height > self.tip_height() {
            return Err(ChainError::UnknownHeight { height });
        }
        Ok((height - 1) as usize)
    }
}

/// Lazy [`BmtSource`] over one segment of a [`Chain`].
///
/// `filter` recomputes node filters from address sets; `node_hash` serves
/// the hashes the chain stored while building.
#[derive(Debug, Clone, Copy)]
pub struct SegmentBmtSource<'a> {
    chain: &'a Chain,
    lo: u64,
    hi: u64,
}

impl BmtSource for SegmentBmtSource<'_> {
    fn params(&self) -> lvq_bloom::BloomParams {
        self.chain.params.bloom()
    }

    fn span(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    fn filter(&self, lo: u64, hi: u64) -> BloomFilter {
        self.chain
            .span_filter(lo, hi)
            .expect("source span inside chain")
    }

    fn node_hash(&self, lo: u64, hi: u64) -> Hash256 {
        self.chain
            .span_hash(lo, hi)
            .expect("dyadic span hash stored at build time")
    }
}
