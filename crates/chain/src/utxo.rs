//! UTXO-set tracking and full-node-style spend validation.
//!
//! The query protocol itself never needs the UTXO set (it authenticates
//! *history*, not state), but a credible substrate should be able to
//! check that its ledger is economically consistent: every non-coinbase
//! input spends an output that exists, is unspent, and carries the
//! claimed address and value. Like Bitcoin, outputs become spendable
//! immediately, including by later transactions of the same block.

use std::collections::HashMap;

use crate::block::Block;
use crate::chain::Chain;
use crate::error::ChainError;
use crate::transaction::{Transaction, TxOutPoint};

/// The set of unspent transaction outputs at some chain position.
///
/// # Examples
///
/// ```
/// use lvq_chain::{Address, Transaction, UtxoSet};
///
/// # fn main() -> Result<(), lvq_chain::ChainError> {
/// let mut set = UtxoSet::new();
/// let coinbase = Transaction::coinbase(Address::new("1Miner"), 50, 0);
/// set.apply_transaction(&coinbase, 1)?;
/// assert_eq!(set.len(), 1);
/// assert_eq!(set.total_value(), 50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct UtxoSet {
    entries: HashMap<TxOutPoint, UtxoEntry>,
}

/// One unspent output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UtxoEntry {
    /// Owning address.
    pub address: crate::Address,
    /// Value in satoshi.
    pub value: u64,
    /// Height of the block that created it.
    pub created_at: u64,
}

impl UtxoSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of unspent outputs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no outputs are unspent.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of all unspent values (the monetary base).
    pub fn total_value(&self) -> u64 {
        self.entries.values().map(|e| e.value).sum()
    }

    /// Looks up an unspent output.
    pub fn get(&self, outpoint: &TxOutPoint) -> Option<&UtxoEntry> {
        self.entries.get(outpoint)
    }

    /// Applies one transaction: spends its inputs, creates its outputs.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidSpend`] if a non-coinbase input is
    /// missing/spent or its recorded address/value disagree, or if the
    /// transaction creates more value than it spends (inflation)
    /// without being a coinbase.
    pub fn apply_transaction(&mut self, tx: &Transaction, height: u64) -> Result<(), ChainError> {
        if !tx.is_coinbase() {
            let mut spendable = 0u64;
            for input in &tx.inputs {
                let entry =
                    self.entries
                        .remove(&input.prev_out)
                        .ok_or(ChainError::InvalidSpend {
                            height,
                            what: "input references a missing or already-spent output",
                        })?;
                if entry.address != input.address {
                    return Err(ChainError::InvalidSpend {
                        height,
                        what: "input address does not match the spent output",
                    });
                }
                if entry.value != input.value {
                    return Err(ChainError::InvalidSpend {
                        height,
                        what: "input value does not match the spent output",
                    });
                }
                spendable += entry.value;
            }
            if tx.total_output() > spendable {
                return Err(ChainError::InvalidSpend {
                    height,
                    what: "outputs exceed inputs (inflation)",
                });
            }
        }
        let txid = tx.txid();
        for (vout, output) in tx.outputs.iter().enumerate() {
            self.entries.insert(
                TxOutPoint {
                    txid,
                    vout: vout as u32,
                },
                UtxoEntry {
                    address: output.address.clone(),
                    value: output.value,
                    created_at: height,
                },
            );
        }
        Ok(())
    }

    /// Applies a whole block in transaction order (intra-block spends
    /// allowed, as in Bitcoin).
    ///
    /// # Errors
    ///
    /// As [`UtxoSet::apply_transaction`].
    pub fn apply_block(&mut self, block: &Block, height: u64) -> Result<(), ChainError> {
        for tx in &block.transactions {
            self.apply_transaction(tx, height)?;
        }
        Ok(())
    }
}

impl<S: crate::BlockSource> Chain<S> {
    /// Replays the whole chain through a [`UtxoSet`], verifying every
    /// spend — the economic half of full-node validation
    /// ([`Chain::validate`] covers the cryptographic half).
    ///
    /// Returns the final UTXO set on success.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidSpend`] at the first inconsistent
    /// spend.
    pub fn validate_utxo(&self) -> Result<UtxoSet, ChainError> {
        let mut set = UtxoSet::new();
        for height in 1..=self.tip_height() {
            let block = self.block(height)?;
            set.apply_block(&block, height)?;
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::transaction::{TxInput, TxOutput};
    use lvq_crypto::Hash256;

    fn spend(from: &Transaction, vout: u32, to: &str) -> Transaction {
        let output = &from.outputs[vout as usize];
        Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: TxOutPoint {
                    txid: from.txid(),
                    vout,
                },
                address: output.address.clone(),
                value: output.value,
            }],
            outputs: vec![TxOutput {
                address: Address::new(to),
                value: output.value,
            }],
            lock_time: 0,
        }
    }

    #[test]
    fn spend_lifecycle() {
        let mut set = UtxoSet::new();
        let coinbase = Transaction::coinbase(Address::new("1Miner"), 50, 0);
        set.apply_transaction(&coinbase, 1).unwrap();
        assert_eq!(set.total_value(), 50);

        let pay = spend(&coinbase, 0, "1Shop");
        set.apply_transaction(&pay, 2).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_value(), 50);

        // Double spend is rejected.
        let again = spend(&coinbase, 0, "1Thief");
        assert!(matches!(
            set.apply_transaction(&again, 3),
            Err(ChainError::InvalidSpend { height: 3, .. })
        ));
    }

    #[test]
    fn mismatched_address_or_value_rejected() {
        let mut set = UtxoSet::new();
        let coinbase = Transaction::coinbase(Address::new("1Miner"), 50, 0);
        set.apply_transaction(&coinbase, 1).unwrap();

        let mut wrong_addr = spend(&coinbase, 0, "1Shop");
        wrong_addr.inputs[0].address = Address::new("1Impostor");
        assert!(set.clone().apply_transaction(&wrong_addr, 2).is_err());

        let mut wrong_value = spend(&coinbase, 0, "1Shop");
        wrong_value.inputs[0].value = 49;
        assert!(set.clone().apply_transaction(&wrong_value, 2).is_err());
    }

    #[test]
    fn inflation_rejected() {
        let mut set = UtxoSet::new();
        let coinbase = Transaction::coinbase(Address::new("1Miner"), 50, 0);
        set.apply_transaction(&coinbase, 1).unwrap();
        let mut inflating = spend(&coinbase, 0, "1Shop");
        inflating.outputs[0].value = 51;
        assert!(matches!(
            set.apply_transaction(&inflating, 2),
            Err(ChainError::InvalidSpend {
                what: "outputs exceed inputs (inflation)",
                ..
            })
        ));
    }

    #[test]
    fn intra_block_spend_allowed() {
        let coinbase = Transaction::coinbase(Address::new("1Miner"), 50, 0);
        let chained = spend(&coinbase, 0, "1Shop");
        let block = Block::new_unchained(vec![coinbase, chained]);
        let mut set = UtxoSet::new();
        set.apply_block(&block, 1).unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn missing_outpoint_rejected() {
        let mut set = UtxoSet::new();
        let phantom = Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: TxOutPoint {
                    txid: Hash256::hash(b"nowhere"),
                    vout: 0,
                },
                address: Address::new("1Ghost"),
                value: 1,
            }],
            outputs: vec![TxOutput {
                address: Address::new("1X"),
                value: 1,
            }],
            lock_time: 0,
        };
        assert!(set.apply_transaction(&phantom, 1).is_err());
    }
}
