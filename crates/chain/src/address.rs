//! Bitcoin-style addresses.

use std::fmt;
use std::sync::Arc;

use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::base58;

/// A Bitcoin-style address.
///
/// Internally an interned string (`Arc<str>`): a busy address appears in
/// thousands of transactions, and interning makes clones pointer-sized,
/// which keeps a 4,096-block chain comfortably in memory.
///
/// Addresses order lexicographically by their byte representation — the
/// order the paper's SMT sorts leaves by — and the same bytes feed the
/// Bloom filters.
///
/// # Examples
///
/// ```
/// use lvq_chain::Address;
///
/// let addr = Address::from_pubkey_hash(0x00, &[0xAB; 20]);
/// assert!(addr.to_string().starts_with('1')); // mainnet P2PKH shape
/// let copy = addr.clone();
/// assert_eq!(addr, copy);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(Arc<str>);

impl Address {
    /// Creates an address from any string-like value.
    ///
    /// No checksum validation is performed: the workload generator mints
    /// synthetic addresses, and the protocol treats addresses as opaque
    /// sortable byte strings (exactly how the paper's SMT and BF use
    /// them).
    pub fn new(s: impl Into<Arc<str>>) -> Self {
        Address(s.into())
    }

    /// Derives a Base58Check address from a 20-byte public-key hash, as
    /// Bitcoin's P2PKH addresses are formed.
    pub fn from_pubkey_hash(version: u8, pubkey_hash: &[u8; 20]) -> Self {
        Address(base58::check_encode(version, pubkey_hash).into())
    }

    /// The address as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The bytes fed to Bloom filters and used as the SMT key.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Address {
    fn from(s: &str) -> Self {
        Address::new(s)
    }
}

impl From<String> for Address {
    fn from(s: String) -> Self {
        Address::new(s)
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Encodable for Address {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.as_ref().encode_into(out)
    }

    fn encoded_len(&self) -> usize {
        self.0.as_ref().encoded_len()
    }
}

impl Decodable for Address {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let s = String::decode_from(reader)?;
        if s.is_empty() || s.len() > 128 {
            return Err(DecodeError::InvalidValue {
                what: "address length",
                found: s.len() as u64,
            });
        }
        Ok(Address::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_codec::decode_exact;

    #[test]
    fn ordering_is_lexicographic() {
        let a = Address::new("1AAA");
        let b = Address::new("1AAB");
        let c = Address::new("1AABB");
        assert!(a < b && b < c);
    }

    #[test]
    fn pubkey_hash_addresses_are_valid_base58check() {
        let addr = Address::from_pubkey_hash(0x00, &[7; 20]);
        let (version, payload) = base58::check_decode(addr.as_str()).unwrap();
        assert_eq!(version, 0);
        assert_eq!(payload, vec![7; 20]);
    }

    #[test]
    fn clone_shares_storage() {
        let a = Address::new("1Shared");
        let b = a.clone();
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn codec_roundtrip() {
        let a = Address::new("1GuLyHTpL6U121Ewe5h31jP4HPC8s4mLTs");
        assert_eq!(decode_exact::<Address>(&a.encode()).unwrap(), a);
    }

    #[test]
    fn decode_rejects_degenerate() {
        let empty = String::new().encode();
        assert!(decode_exact::<Address>(&empty).is_err());
        let huge = "x".repeat(129).encode();
        assert!(decode_exact::<Address>(&huge).is_err());
    }
}
