//! Blocks: header plus transaction body.

use lvq_bloom::{BloomFilter, BloomParams};
use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::Hash256;
use lvq_merkle::{MerkleTree, SmtError, SortedMerkleTree};

use crate::address::Address;
use crate::header::BlockHeader;
use crate::transaction::Transaction;

/// A block: header and transaction list.
///
/// The per-block derived structures the LVQ schemes commit to — the
/// transaction Merkle tree, the `(address, count)` table, the address
/// Bloom filter, and the SMT — are all recomputable from the body, and
/// the methods here are the single definitions both the chain builder
/// (committing) and the provers/verifiers (checking) use.
///
/// # Examples
///
/// ```
/// use lvq_chain::{Address, Block, Transaction};
///
/// let block = Block::new_unchained(vec![
///     Transaction::coinbase(Address::new("1Miner"), 50, 0),
/// ]);
/// assert_eq!(block.address_counts()[0].0.as_str(), "1Miner");
/// assert_eq!(block.address_counts()[0].1, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block header.
    pub header: BlockHeader,
    /// The block body.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// Creates a block whose header carries only the transaction Merkle
    /// root (no chaining, no commitments). Useful for tests; real chains
    /// are assembled by [`crate::ChainBuilder`].
    pub fn new_unchained(transactions: Vec<Transaction>) -> Self {
        let merkle_root = Self::compute_tx_tree(&transactions).root();
        Block {
            header: BlockHeader {
                version: 2,
                prev_block: Hash256::ZERO,
                merkle_root,
                timestamp: 0,
                bits: 0,
                nonce: 0,
                commitments: Default::default(),
            },
            transactions,
        }
    }

    fn compute_tx_tree(transactions: &[Transaction]) -> MerkleTree {
        MerkleTree::from_leaves(transactions.iter().map(Transaction::txid).collect())
    }

    /// The Merkle tree over the block's transaction ids.
    pub fn tx_tree(&self) -> MerkleTree {
        Self::compute_tx_tree(&self.transactions)
    }

    /// Sorted `(address, count)` pairs, where count is the number of
    /// *distinct transactions* in this block involving the address (the
    /// appearance count the paper's SMT leaves record; see DESIGN.md
    /// interpretation 2).
    pub fn address_counts(&self) -> Vec<(Address, u64)> {
        let mut counts: std::collections::BTreeMap<&Address, u64> =
            std::collections::BTreeMap::new();
        for tx in &self.transactions {
            for addr in tx.addresses() {
                *counts.entry(addr).or_insert(0) += 1;
            }
        }
        counts.into_iter().map(|(a, c)| (a.clone(), c)).collect()
    }

    /// The block's address Bloom filter: every distinct address of every
    /// transaction, inserted into a fresh filter with the given
    /// parameters.
    pub fn address_filter(&self, params: BloomParams) -> BloomFilter {
        let mut filter = BloomFilter::new(params);
        for (addr, _) in self.address_counts() {
            filter.insert(addr.as_bytes());
        }
        filter
    }

    /// The block's sorted Merkle tree over `(address, count)` leaves.
    ///
    /// # Errors
    ///
    /// Never fails for a block (address keys are distinct by
    /// construction); the `Result` mirrors [`SortedMerkleTree::new`].
    pub fn address_smt(&self) -> Result<SortedMerkleTree, SmtError> {
        SortedMerkleTree::new(
            self.address_counts()
                .into_iter()
                .map(|(a, c)| (a.as_bytes().to_vec(), c))
                .collect(),
        )
    }

    /// Indices of the transactions involving `address`.
    pub fn tx_indices_for(&self, address: &Address) -> Vec<usize> {
        self.transactions
            .iter()
            .enumerate()
            .filter(|(_, tx)| tx.involves(address))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total encoded size of the block — what returning an *integral
    /// block* (IB) fragment costs on the wire.
    pub fn integral_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encodable for Block {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.header.encode_into(out);
        self.transactions.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.header.encoded_len() + self.transactions.encoded_len()
    }
}

impl Decodable for Block {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Block {
            header: BlockHeader::decode_from(reader)?,
            transactions: Vec::<Transaction>::decode_from(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{TxInput, TxOutPoint, TxOutput};
    use lvq_codec::decode_exact;

    fn tx(from: &str, to: &str, value: u64) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: TxOutPoint {
                    txid: Hash256::hash(from.as_bytes()),
                    vout: 0,
                },
                address: Address::new(from),
                value,
            }],
            outputs: vec![TxOutput {
                address: Address::new(to),
                value,
            }],
            lock_time: 0,
        }
    }

    fn sample() -> Block {
        Block::new_unchained(vec![
            Transaction::coinbase(Address::new("1Miner"), 50, 0),
            tx("1Alice", "1Bob", 10),
            tx("1Alice", "1Carol", 5),
        ])
    }

    #[test]
    fn address_counts_are_per_distinct_tx() {
        let block = sample();
        let counts: Vec<(String, u64)> = block
            .address_counts()
            .iter()
            .map(|(a, c)| (a.as_str().to_string(), *c))
            .collect();
        let expected: Vec<(String, u64)> =
            [("1Alice", 2u64), ("1Bob", 1), ("1Carol", 1), ("1Miner", 1)]
                .iter()
                .map(|(a, c)| (a.to_string(), *c))
                .collect();
        assert_eq!(counts, expected);
    }

    #[test]
    fn self_transfer_counts_once_per_tx() {
        // An address in both input and output of one tx appears once.
        let block = Block::new_unchained(vec![tx("1Self", "1Self", 1)]);
        assert_eq!(block.address_counts(), vec![(Address::new("1Self"), 1)]);
    }

    #[test]
    fn filter_contains_every_address() {
        let block = sample();
        let params = BloomParams::new(64, 2).unwrap();
        let filter = block.address_filter(params);
        for (addr, _) in block.address_counts() {
            assert!(!filter.check(addr.as_bytes()).is_clean());
        }
    }

    #[test]
    fn smt_matches_counts() {
        let block = sample();
        let smt = block.address_smt().unwrap();
        assert_eq!(smt.leaf_count(), 4);
        assert_eq!(smt.get(b"1Alice"), Some(2));
        assert_eq!(smt.get(b"1Nobody"), None);
    }

    #[test]
    fn tx_indices_for_address() {
        let block = sample();
        assert_eq!(block.tx_indices_for(&Address::new("1Alice")), vec![1, 2]);
        assert_eq!(block.tx_indices_for(&Address::new("1Miner")), vec![0]);
        assert!(block.tx_indices_for(&Address::new("1Nobody")).is_empty());
    }

    #[test]
    fn merkle_root_commits_to_txids() {
        let block = sample();
        let tree = block.tx_tree();
        assert_eq!(block.header.merkle_root, tree.root());
        for (i, tx) in block.transactions.iter().enumerate() {
            let branch = tree.branch(i).unwrap();
            assert!(branch.verify(&tx.txid(), &block.header.merkle_root));
        }
    }

    #[test]
    fn codec_roundtrip_and_integral_size() {
        let block = sample();
        let bytes = block.encode();
        assert_eq!(bytes.len(), block.integral_size());
        assert_eq!(decode_exact::<Block>(&bytes).unwrap(), block);
    }
}
