//! Chain error type.

use std::error::Error;
use std::fmt;

use lvq_merkle::{BmtError, SmtError};

/// Errors produced while building or validating a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainError {
    /// The configured segment length was not a power of two.
    InvalidSegmentLen {
        /// The offending length.
        len: u64,
    },
    /// A block was pushed with no transactions (every block needs at
    /// least a coinbase).
    EmptyBlock,
    /// A block's first transaction was not a coinbase.
    MissingCoinbase,
    /// A height outside `1..=tip` was requested.
    UnknownHeight {
        /// The requested height.
        height: u64,
    },
    /// Validation found a header whose previous-block hash does not
    /// match its predecessor.
    BrokenChainLink {
        /// Height of the inconsistent block.
        height: u64,
    },
    /// Validation found a header commitment that does not match the
    /// recomputed structure.
    CommitmentMismatch {
        /// Height of the inconsistent block.
        height: u64,
        /// Which commitment failed.
        what: &'static str,
    },
    /// UTXO validation found an input that does not spend an existing
    /// unspent output (missing, already spent, or with different
    /// address/value).
    InvalidSpend {
        /// Height of the offending block.
        height: u64,
        /// Reason for rejecting the spend.
        what: &'static str,
    },
    /// An underlying BMT operation failed.
    Bmt(BmtError),
    /// An underlying SMT operation failed.
    Smt(SmtError),
    /// The chain's block source failed to materialize a block (e.g. an
    /// I/O error or checksum failure in a disk-backed store).
    Source {
        /// Human-readable description of the storage failure.
        detail: String,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::InvalidSegmentLen { len } => {
                write!(f, "segment length {len} is not a power of two")
            }
            ChainError::EmptyBlock => f.write_str("block has no transactions"),
            ChainError::MissingCoinbase => {
                f.write_str("block's first transaction is not a coinbase")
            }
            ChainError::UnknownHeight { height } => write!(f, "no block at height {height}"),
            ChainError::BrokenChainLink { height } => {
                write!(f, "previous-block hash mismatch at height {height}")
            }
            ChainError::CommitmentMismatch { height, what } => {
                write!(f, "{what} commitment mismatch at height {height}")
            }
            ChainError::InvalidSpend { height, what } => {
                write!(f, "invalid spend at height {height}: {what}")
            }
            ChainError::Bmt(e) => write!(f, "bmt error: {e}"),
            ChainError::Smt(e) => write!(f, "smt error: {e}"),
            ChainError::Source { detail } => write!(f, "block source error: {detail}"),
        }
    }
}

impl Error for ChainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ChainError::Bmt(e) => Some(e),
            ChainError::Smt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BmtError> for ChainError {
    fn from(e: BmtError) -> Self {
        ChainError::Bmt(e)
    }
}

impl From<SmtError> for ChainError {
    fn from(e: SmtError) -> Self {
        ChainError::Smt(e)
    }
}
