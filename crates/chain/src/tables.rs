//! Pluggable storage for the chain's per-block derived state.
//!
//! The blocks themselves already sit behind [`crate::BlockSource`]; this
//! module does the same for the *derived* state every query touches —
//! the sorted per-block `(address, distinct-tx count)` tables that feed
//! span filters and SMTs. With the in-memory default the chain behaves
//! exactly as it always has (tables rebuilt on open, resident forever);
//! with a persistent implementation (the `lvq-store` crate's
//! authenticated `IndexedTables`) the tables live in a Merkle AVL index
//! on disk, reopen is a root-record read instead of a chain replay, and
//! per-address presence queries become index point reads.

use std::fmt;
use std::sync::Arc;

use lvq_crypto::Hash256;

use crate::address::Address;
use crate::chain::CacheStats;
use crate::error::ChainError;
use crate::header::BlockHeader;

/// One finalised dyadic BMT span produced while absorbing a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// First height of the span (1-based, inclusive).
    pub lo: u64,
    /// Last height of the span (inclusive).
    pub hi: u64,
    /// The committed BMT node hash of the span.
    pub hash: Hash256,
}

/// Everything the chain derives from one absorbed block, handed to the
/// table source in a single call so persistent implementations can
/// apply it as one atomic batch.
#[derive(Debug)]
pub struct TableUpdate<'a> {
    /// Height of the absorbed block (1-based; always `len() + 1`).
    pub height: u64,
    /// The block's header.
    pub header: &'a BlockHeader,
    /// The block's sorted `(address, distinct-tx count)` table.
    pub table: Arc<Vec<(Address, u64)>>,
    /// Dyadic BMT spans this block finalised (empty for non-BMT
    /// policies and for blocks that close no span).
    pub new_spans: &'a [SpanRecord],
}

/// Storage for per-block derived state behind a [`crate::Chain`].
///
/// Heights are 1-based like everything else. Implementations must be
/// cheap to call concurrently from reads (`table`, `presence`) — server
/// workers hit them from many threads — while `push` is only ever
/// called by the chain's single writer.
pub trait TableSource: Send + Sync + fmt::Debug {
    /// Number of blocks whose derived state is stored (the tip height
    /// this source is consistent with).
    fn len(&self) -> u64;

    /// `true` if nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sorted `(address, distinct-tx count)` table of the block at
    /// `height`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=len` and
    /// [`ChainError::Source`] if the backing storage fails or fails
    /// verification.
    fn table(&self, height: u64) -> Result<Arc<Vec<(Address, u64)>>, ChainError>;

    /// Absorbs the derived state of the block at `len() + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::Source`] if the backing storage fails; on
    /// error the source must still report its previous `len()`.
    fn push(&mut self, update: TableUpdate<'_>) -> Result<(), ChainError>;

    /// The heights (ascending) at which `address` appears, with its
    /// distinct-tx count per height — `Ok(None)` if this source keeps
    /// no per-address index (the chain then falls back to a full scan).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::Source`] if the backing storage fails.
    fn presence(&self, address: &Address) -> Result<Option<Vec<(u64, u64)>>, ChainError> {
        let _ = address;
        Ok(None)
    }

    /// Makes everything pushed so far durable and anchors it at
    /// `tip_height` (a no-op for in-memory sources). Called by ingest
    /// pipelines *after* the corresponding blocks are durable in the
    /// block store, so the index can never lead the chain.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::Source`] on storage failure.
    fn sync(&self, tip_height: u64) -> Result<(), ChainError> {
        let _ = tip_height;
        Ok(())
    }

    /// Discards every block's derived state above `height`, so `len()`
    /// becomes `height`. This is the reorg rewind primitive; the
    /// default refuses, so sources without rewind support cannot lose
    /// state by accident.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] if `height > len()` and
    /// [`ChainError::Source`] if the source does not support truncation
    /// or the backing storage fails.
    fn truncate(&mut self, height: u64) -> Result<(), ChainError> {
        let _ = height;
        Err(ChainError::Source {
            detail: "table source does not support truncation".into(),
        })
    }

    /// Hit/miss statistics of the source's node cache, if it has one.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// Empties the source's cache (counters keep counting).
    fn clear_cache(&self) {}

    /// Re-budgets the source's cache, dropping cached entries.
    fn set_cache_budget(&self, budget_bytes: usize) {
        let _ = budget_bytes;
    }

    /// Approximate bytes of derived state resident in memory.
    fn resident_bytes(&self) -> u64 {
        0
    }
}

/// The classic fully-resident table source: every per-block table in a
/// vector, exactly what the chain kept inline before the index existed.
#[derive(Debug, Default)]
pub struct InMemoryTables {
    tables: Vec<Arc<Vec<(Address, u64)>>>,
    total_bytes: u64,
}

fn table_bytes(table: &[(Address, u64)]) -> u64 {
    table
        .iter()
        .map(|(addr, _)| addr.as_bytes().len() as u64 + 16)
        .sum()
}

impl InMemoryTables {
    /// An empty source.
    pub fn new() -> Self {
        InMemoryTables::default()
    }

    /// Wraps an ordered table vector (index 0 is height 1).
    pub fn from_tables(tables: Vec<Arc<Vec<(Address, u64)>>>) -> Self {
        let total_bytes = tables.iter().map(|t| table_bytes(t)).sum();
        InMemoryTables {
            tables,
            total_bytes,
        }
    }

    /// Consumes the source, handing back the ordered table vector —
    /// lets [`crate::ChainBuilder::resume`] reclaim a chain's state.
    pub fn into_tables(self) -> Vec<Arc<Vec<(Address, u64)>>> {
        self.tables
    }
}

impl TableSource for InMemoryTables {
    fn len(&self) -> u64 {
        self.tables.len() as u64
    }

    fn table(&self, height: u64) -> Result<Arc<Vec<(Address, u64)>>, ChainError> {
        if height == 0 || height > self.len() {
            return Err(ChainError::UnknownHeight { height });
        }
        Ok(self.tables[(height - 1) as usize].clone())
    }

    fn push(&mut self, update: TableUpdate<'_>) -> Result<(), ChainError> {
        debug_assert_eq!(update.height, self.len() + 1);
        self.total_bytes += table_bytes(&update.table);
        self.tables.push(update.table);
        Ok(())
    }

    fn truncate(&mut self, height: u64) -> Result<(), ChainError> {
        if height > self.len() {
            return Err(ChainError::UnknownHeight { height });
        }
        for table in self.tables.drain(height as usize..) {
            self.total_bytes -= table_bytes(&table);
        }
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: &[(&str, u64)]) -> Arc<Vec<(Address, u64)>> {
        Arc::new(
            entries
                .iter()
                .map(|(a, c)| (Address::new(*a), *c))
                .collect(),
        )
    }

    #[test]
    fn in_memory_tables_roundtrip() {
        let mut tables = InMemoryTables::new();
        assert!(tables.is_empty());
        let header = crate::Block::new_unchained(vec![crate::Transaction::coinbase(
            Address::new("1Miner"),
            50,
            1,
        )])
        .header;
        for (h, t) in [
            table(&[("1Alice", 2), ("1Miner", 1)]),
            table(&[("1Miner", 1)]),
        ]
        .into_iter()
        .enumerate()
        {
            tables
                .push(TableUpdate {
                    height: h as u64 + 1,
                    header: &header,
                    table: t,
                    new_spans: &[],
                })
                .unwrap();
        }
        assert_eq!(tables.len(), 2);
        assert_eq!(tables.table(1).unwrap().len(), 2);
        assert_eq!(tables.table(2).unwrap().len(), 1);
        assert!(matches!(
            tables.table(3),
            Err(ChainError::UnknownHeight { height: 3 })
        ));
        assert!(tables.resident_bytes() > 0);
        // No per-address index on the in-memory source.
        assert_eq!(tables.presence(&Address::new("1Alice")).unwrap(), None);
    }
}
