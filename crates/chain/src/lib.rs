//! A Bitcoin-like chain substrate for the LVQ reproduction.
//!
//! The paper prototypes on Btcd (a Go Bitcoin full node). This crate is
//! the from-scratch Rust equivalent of the parts the evaluation actually
//! exercises:
//!
//! * [`Transaction`]s in a simplified UTXO model whose inputs and outputs
//!   carry [`Address`]es and values (enough for the paper's Eq. 1 balance
//!   computation and address-history queries);
//! * [`Block`]s with Bitcoin-layout [`BlockHeader`]s extended by the
//!   scheme commitments LVQ adds: `H(BF)`, the BMT root, and the SMT
//!   commitment — which of them a header carries is decided by
//!   [`CommitmentPolicy`];
//! * a [`ChainBuilder`] that assembles a valid [`Chain`], computing every
//!   per-block structure (transaction Merkle tree, address Bloom filter,
//!   SMT, incremental BMT merging per paper Table I) as blocks arrive;
//! * lazy Bloom-filter access ([`Chain::leaf_filter`],
//!   [`Chain::segment_source`]) so even 500 KB-filter configurations fit
//!   in memory: node filters are recomputed from stored per-block address
//!   sets while the 32-byte span hashes are kept for all dyadic spans.
//!
//! # Examples
//!
//! ```
//! use lvq_chain::{Address, ChainBuilder, ChainParams, Transaction, TxOutput};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = ChainParams::default();
//! let mut builder = ChainBuilder::new(params)?;
//! let coinbase = Transaction::coinbase(Address::new("1Miner"), 50_0000_0000, 1);
//! builder.push_block(vec![coinbase])?;
//! let chain = builder.finish();
//! assert_eq!(chain.tip_height(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod balance;
mod block;
mod builder;
mod chain;
mod error;
pub mod file;
mod fork;
mod header;
mod params;
mod source;
mod tables;
mod transaction;
mod utxo;

pub use address::Address;
pub use balance::{balance_of, BalanceBreakdown};
pub use block::Block;
pub use builder::ChainBuilder;
pub use chain::{CacheStats, Chain, ChainCacheStats, SegmentBmtSource};
pub use error::ChainError;
pub use fork::{ForkEvent, ForkTree, SideBranch};
pub use header::{BlockHeader, HeaderCommitments, BASE_HEADER_LEN};
pub use params::{CacheConfig, ChainParams, CommitmentPolicy};
pub use source::{BlockSource, InMemoryBlocks};
pub use tables::{InMemoryTables, SpanRecord, TableSource, TableUpdate};
pub use transaction::{Transaction, TxInput, TxOutPoint, TxOutput};
pub use utxo::{UtxoEntry, UtxoSet};
