//! On-disk chain persistence.
//!
//! Real full nodes persist hundreds of gigabytes of blocks; this module
//! gives the reproduction the same capability at its scale. The format
//! is deliberately simple and self-verifying:
//!
//! ```text
//! magic "LVQC" | version u32 | ChainParams | CompactSize n | n × Block
//! ```
//!
//! Loading does not trust the file: blocks are replayed through
//! [`ChainBuilder`], which recomputes every commitment, and each
//! recomputed header must equal the stored one. A bit-flipped file
//! fails to load.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use lvq_bloom::BloomParams;
use lvq_codec::{Decodable, DecodeError, Encodable, Reader};

use crate::block::Block;
use crate::builder::ChainBuilder;
use crate::chain::Chain;
use crate::error::ChainError;
use crate::params::{ChainParams, CommitmentPolicy};
use crate::source::{BlockSource, InMemoryBlocks};

const MAGIC: [u8; 4] = *b"LVQC";
const VERSION: u32 = 1;

/// Errors from saving or loading chain files.
#[derive(Debug)]
#[non_exhaustive]
pub enum ChainFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `LVQC` magic.
    BadMagic,
    /// The file's format version is newer than this library.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The byte stream does not decode.
    Decode(DecodeError),
    /// Replaying the blocks produced a different header than stored —
    /// the file is corrupt or was written by an incompatible build.
    HeaderMismatch {
        /// Height of the first mismatching block.
        height: u64,
    },
    /// Replaying the blocks failed outright.
    Chain(ChainError),
}

impl fmt::Display for ChainFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainFileError::Io(e) => write!(f, "i/o error: {e}"),
            ChainFileError::BadMagic => f.write_str("not a chain file (bad magic)"),
            ChainFileError::UnsupportedVersion { found } => {
                write!(f, "unsupported chain file version {found}")
            }
            ChainFileError::Decode(e) => write!(f, "corrupt chain file: {e}"),
            ChainFileError::HeaderMismatch { height } => {
                write!(f, "replayed header mismatch at height {height}")
            }
            ChainFileError::Chain(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl Error for ChainFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ChainFileError::Io(e) => Some(e),
            ChainFileError::Decode(e) => Some(e),
            ChainFileError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ChainFileError {
    fn from(e: std::io::Error) -> Self {
        ChainFileError::Io(e)
    }
}

impl From<DecodeError> for ChainFileError {
    fn from(e: DecodeError) -> Self {
        ChainFileError::Decode(e)
    }
}

impl From<ChainError> for ChainFileError {
    fn from(e: ChainError) -> Self {
        ChainFileError::Chain(e)
    }
}

impl Encodable for CommitmentPolicy {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.bf_hash.encode_into(out);
        self.bmt.encode_into(out);
        self.smt.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        3
    }
}

impl Decodable for CommitmentPolicy {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(CommitmentPolicy {
            bf_hash: bool::decode_from(reader)?,
            bmt: bool::decode_from(reader)?,
            smt: bool::decode_from(reader)?,
        })
    }
}

impl Encodable for ChainParams {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.bloom().encode_into(out);
        self.segment_len().encode_into(out);
        self.policy().encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.bloom().encoded_len() + 8 + self.policy().encoded_len()
    }
}

impl Decodable for ChainParams {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bloom = BloomParams::decode_from(reader)?;
        let segment_len = u64::decode_from(reader)?;
        let policy = CommitmentPolicy::decode_from(reader)?;
        ChainParams::new(bloom, segment_len, policy).map_err(|_| DecodeError::InvalidValue {
            what: "chain params segment length",
            found: segment_len,
        })
    }
}

/// Writes `chain` to `writer`.
///
/// # Errors
///
/// Returns [`ChainFileError::Io`] on write failure.
pub fn save<S: BlockSource, W: Write>(chain: &Chain<S>, writer: W) -> Result<(), ChainFileError> {
    let mut w = BufWriter::new(writer);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let mut buf = Vec::new();
    chain.params().encode_into(&mut buf);
    lvq_codec::write_compact_size(&mut buf, chain.tip_height());
    w.write_all(&buf)?;
    for height in 1..=chain.tip_height() {
        let block = chain.block(height).expect("height in range");
        w.write_all(&block.encode())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `chain` to a file at `path`.
///
/// # Errors
///
/// As [`save`].
pub fn save_to_path<S: BlockSource>(
    chain: &Chain<S>,
    path: impl AsRef<Path>,
) -> Result<(), ChainFileError> {
    save(chain, File::create(path)?)
}

/// Reads a chain, replaying every block through [`ChainBuilder`] so all
/// commitments are recomputed and checked against the stored headers.
///
/// # Errors
///
/// Returns a [`ChainFileError`] for I/O problems, corrupt bytes, or any
/// header that fails to replay identically.
pub fn load<R: Read>(reader: R) -> Result<Chain, ChainFileError> {
    let mut r = BufReader::new(reader);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() < 8 || bytes[..4] != MAGIC {
        return Err(ChainFileError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(ChainFileError::UnsupportedVersion { found: version });
    }

    let mut reader = Reader::new(&bytes[8..]);
    let params = ChainParams::decode_from(&mut reader)?;
    let count = reader.read_len()? as u64;

    let mut builder = ChainBuilder::new(params)?;
    for height in 1..=count {
        let block = Block::decode_from(&mut reader)?;
        let stored_header = block.header;
        builder.push_block(block.transactions)?;
        // The builder recomputed every commitment; compare.
        let replayed = builder.last_header().expect("just pushed");
        if replayed != stored_header {
            return Err(ChainFileError::HeaderMismatch { height });
        }
    }
    reader.finish()?;
    Ok(builder.finish())
}

/// Reads a chain from a file at `path`.
///
/// # Errors
///
/// As [`load`].
pub fn load_from_path(path: impl AsRef<Path>) -> Result<Chain, ChainFileError> {
    load(File::open(path)?)
}

/// Reads a chain *without* replaying commitments.
///
/// Blocks are decoded and assembled through
/// [`Chain::assemble_trusted`]: header chaining is still checked, but
/// transaction Merkle roots, Bloom filter hashes, and SMT commitments
/// are taken at face value, skipping the O(chain length × block size)
/// recomputation [`load`] performs. Only use this on files you wrote
/// yourself (the CLI gates it behind an explicit `--trust-file` flag).
///
/// # Errors
///
/// Returns a [`ChainFileError`] for I/O problems, corrupt bytes, or
/// headers that do not chain.
pub fn load_trusted<R: Read>(reader: R) -> Result<Chain, ChainFileError> {
    let mut r = BufReader::new(reader);
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.len() < 8 || bytes[..4] != MAGIC {
        return Err(ChainFileError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(ChainFileError::UnsupportedVersion { found: version });
    }

    let mut reader = Reader::new(&bytes[8..]);
    let params = ChainParams::decode_from(&mut reader)?;
    let count = reader.read_len()? as u64;
    let mut blocks = Vec::with_capacity(count as usize);
    for _ in 0..count {
        blocks.push(Block::decode_from(&mut reader)?);
    }
    reader.finish()?;
    Ok(Chain::assemble_trusted(
        params,
        InMemoryBlocks::new(blocks),
    )?)
}

/// Reads a chain from a file at `path` without replaying commitments.
///
/// # Errors
///
/// As [`load_trusted`].
pub fn load_from_path_trusted(path: impl AsRef<Path>) -> Result<Chain, ChainFileError> {
    load_trusted(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::transaction::Transaction;

    fn sample_chain() -> Chain {
        let params =
            ChainParams::new(BloomParams::new(64, 2).unwrap(), 4, CommitmentPolicy::lvq()).unwrap();
        let mut builder = ChainBuilder::new(params).unwrap();
        for h in 1..=6u32 {
            builder
                .push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, h)])
                .unwrap();
        }
        builder.finish()
    }

    fn roundtrip_bytes(chain: &Chain) -> Vec<u8> {
        let mut out = Vec::new();
        save(chain, &mut out).unwrap();
        out
    }

    #[test]
    fn save_load_roundtrip() {
        let chain = sample_chain();
        let bytes = roundtrip_bytes(&chain);
        let loaded = load(&bytes[..]).unwrap();
        assert_eq!(loaded.tip_height(), chain.tip_height());
        for h in 1..=chain.tip_height() {
            assert_eq!(
                loaded.header(h).unwrap().block_hash(),
                chain.header(h).unwrap().block_hash()
            );
        }
        assert_eq!(loaded.params(), chain.params());
        loaded.validate().unwrap();
    }

    #[test]
    fn empty_chain_roundtrip() {
        let params = ChainParams::default();
        let chain = ChainBuilder::new(params).unwrap().finish();
        let loaded = load(&roundtrip_bytes(&chain)[..]).unwrap();
        assert_eq!(loaded.tip_height(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = roundtrip_bytes(&sample_chain());
        bytes[0] = b'X';
        assert!(matches!(load(&bytes[..]), Err(ChainFileError::BadMagic)));
        assert!(matches!(load(&bytes[..2]), Err(ChainFileError::BadMagic)));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = roundtrip_bytes(&sample_chain());
        bytes[4] = 99;
        assert!(matches!(
            load(&bytes[..]),
            Err(ChainFileError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn corruption_is_detected() {
        let chain = sample_chain();
        let clean = roundtrip_bytes(&chain);
        // Flip a byte inside the block area (beyond header+params).
        let mut corrupt = clean.clone();
        let idx = clean.len() - 10;
        corrupt[idx] ^= 0xFF;
        assert!(
            load(&corrupt[..]).is_err(),
            "bit flip near the end must not load"
        );
    }

    #[test]
    fn loaded_chain_can_be_resumed() {
        let chain = sample_chain();
        let loaded = load(&roundtrip_bytes(&chain)[..]).unwrap();
        let mut builder = ChainBuilder::resume(loaded).unwrap();
        builder
            .push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, 7)])
            .unwrap();
        builder.finish().validate().unwrap();
    }

    #[test]
    fn trusted_load_matches_full_load() {
        let chain = sample_chain();
        let bytes = roundtrip_bytes(&chain);
        let trusted = load_trusted(&bytes[..]).unwrap();
        assert_eq!(trusted.headers(), chain.headers());
        assert_eq!(trusted.params(), chain.params());
        // Trusted assembly still leaves a fully consistent chain.
        trusted.validate().unwrap();
    }

    #[test]
    fn trusted_load_still_rejects_framing_faults() {
        let bytes = roundtrip_bytes(&sample_chain());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            load_trusted(&bad_magic[..]),
            Err(ChainFileError::BadMagic)
        ));
        // Truncation inside the block area fails to decode.
        assert!(load_trusted(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn params_roundtrip() {
        let params = ChainParams::default();
        let bytes = params.encode();
        assert_eq!(bytes.len(), params.encoded_len());
        assert_eq!(
            lvq_codec::decode_exact::<ChainParams>(&bytes).unwrap(),
            params
        );
    }
}
