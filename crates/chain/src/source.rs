//! Pluggable block storage behind a [`Chain`](crate::Chain).
//!
//! The chain's derived state (headers, address tables, span hashes) is
//! small and always lives in memory; the blocks themselves — the bulk of
//! a real node's storage — sit behind the [`BlockSource`] trait so a
//! chain can be served either from a fully deserialized in-memory vector
//! ([`InMemoryBlocks`]) or lazily from an on-disk store (the
//! `lvq-store` crate's `DiskBlockSource`).

use std::fmt;
use std::sync::Arc;

use crate::block::Block;
use crate::chain::CacheStats;
use crate::error::ChainError;

/// Random- and sequential-access block storage for a chain.
///
/// Heights are 1-based, matching [`crate::Chain::block`]. Implementations
/// must be cheap to call concurrently: provers materialize blocks from
/// many server worker threads at once.
pub trait BlockSource: Send + Sync + fmt::Debug {
    /// Number of blocks stored (the chain's tip height).
    fn len(&self) -> u64;

    /// `true` if no blocks are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The block at `height` (1-based).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] outside `1..=len` and
    /// [`ChainError::Source`] if the backing storage fails.
    fn block(&self, height: u64) -> Result<Arc<Block>, ChainError>;

    /// Visits every block in height order.
    ///
    /// The default delegates to [`BlockSource::block`]; disk-backed
    /// implementations override it with a sequential scan that bypasses
    /// the block cache, so a full-chain pass does not evict the hot set.
    ///
    /// # Errors
    ///
    /// Propagates the first error from the storage or from `visit`.
    fn scan(
        &self,
        visit: &mut dyn FnMut(u64, &Block) -> Result<(), ChainError>,
    ) -> Result<(), ChainError> {
        for height in 1..=self.len() {
            let block = self.block(height)?;
            visit(height, &block)?;
        }
        Ok(())
    }

    /// Appends `block` as the new tip (height `len() + 1`).
    ///
    /// Linkage and content validation happen in the chain layer —
    /// sources store whatever they are handed, exactly like the initial
    /// build path. The default refuses, so read-only sources cannot be
    /// grown by accident.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::Source`] if the source does not support
    /// appends or the backing storage fails.
    fn push_block(&mut self, block: Arc<Block>) -> Result<(), ChainError> {
        let _ = block;
        Err(ChainError::Source {
            detail: "block source does not support appends".into(),
        })
    }

    /// Discards every block above `height`, so `len()` becomes
    /// `height`. This is the reorg rewind primitive; the default
    /// refuses, so read-only sources cannot lose blocks by accident.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownHeight`] if `height > len()` and
    /// [`ChainError::Source`] if the source does not support truncation
    /// or the backing storage fails.
    fn truncate(&mut self, height: u64) -> Result<(), ChainError> {
        let _ = height;
        Err(ChainError::Source {
            detail: "block source does not support truncation".into(),
        })
    }

    /// Approximate bytes of block data currently resident in memory —
    /// the whole chain for [`InMemoryBlocks`], the cache occupancy for a
    /// disk-backed source.
    fn resident_bytes(&self) -> u64;

    /// Hit/miss statistics of the source's block cache, if it has one.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }
}

/// The classic fully-resident source: every block deserialized in a
/// vector. This is what [`crate::ChainBuilder::finish`] produces.
#[derive(Debug, Default)]
pub struct InMemoryBlocks {
    pub(crate) blocks: Vec<Arc<Block>>,
    total_bytes: u64,
}

impl InMemoryBlocks {
    /// Wraps an ordered block vector (index 0 is height 1).
    pub fn new(blocks: Vec<Block>) -> Self {
        InMemoryBlocks::from_arcs(blocks.into_iter().map(Arc::new).collect())
    }

    pub(crate) fn from_arcs(blocks: Vec<Arc<Block>>) -> Self {
        let total_bytes = blocks
            .iter()
            .map(|b| lvq_codec::Encodable::encoded_len(&**b) as u64)
            .sum();
        InMemoryBlocks {
            blocks,
            total_bytes,
        }
    }

    /// Unwraps back into plain blocks (cloning any block that is still
    /// shared).
    pub(crate) fn into_blocks(self) -> Vec<Block> {
        self.blocks
            .into_iter()
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()))
            .collect()
    }
}

impl BlockSource for InMemoryBlocks {
    fn len(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn block(&self, height: u64) -> Result<Arc<Block>, ChainError> {
        if height == 0 || height > self.len() {
            return Err(ChainError::UnknownHeight { height });
        }
        Ok(self.blocks[(height - 1) as usize].clone())
    }

    fn scan(
        &self,
        visit: &mut dyn FnMut(u64, &Block) -> Result<(), ChainError>,
    ) -> Result<(), ChainError> {
        for (i, block) in self.blocks.iter().enumerate() {
            visit(i as u64 + 1, block)?;
        }
        Ok(())
    }

    fn push_block(&mut self, block: Arc<Block>) -> Result<(), ChainError> {
        self.total_bytes += lvq_codec::Encodable::encoded_len(&*block) as u64;
        self.blocks.push(block);
        Ok(())
    }

    fn truncate(&mut self, height: u64) -> Result<(), ChainError> {
        if height > self.len() {
            return Err(ChainError::UnknownHeight { height });
        }
        for block in self.blocks.drain(height as usize..) {
            self.total_bytes -= lvq_codec::Encodable::encoded_len(&*block) as u64;
        }
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        self.total_bytes
    }
}
