//! Fork storage and the best-chain rule.
//!
//! A live node following a real network does not see a straight line:
//! it sees competing blocks off recent heights. [`ForkTree`] is the
//! bookkeeping between the feed and [`Chain::reorg_to`](crate::Chain::reorg_to):
//! it classifies every arriving block against the canonical chain,
//! stores competing branches rooted at recent canonical heights
//! (bounded by `max_reorg_depth`), applies the longest-chain rule to
//! decide when a side branch becomes the best chain, and garbage
//! collects branches whose fork point has fallen too deep to ever win.
//!
//! The tree holds *blocks and hashes only* — no derived state. The
//! expensive part of switching branches (rewinding tables, span hashes
//! and caches, replaying the winner) lives in `Chain::reorg_to`; the
//! tree just decides *when* and hands over the branch.

use std::collections::VecDeque;
use std::sync::Arc;

use lvq_crypto::Hash256;

use crate::block::Block;

/// One competing branch rooted at a recent canonical height.
#[derive(Debug, Clone)]
pub struct SideBranch {
    /// Height of the last block this branch shares with the canonical
    /// chain; the branch's first block links onto the canonical header
    /// at this height.
    pub fork_height: u64,
    /// The branch's blocks, in height order (`fork_height + 1` up).
    pub blocks: Vec<Arc<Block>>,
}

impl SideBranch {
    /// Height of the branch's last block.
    pub fn tip_height(&self) -> u64 {
        self.fork_height + self.blocks.len() as u64
    }

    /// Hash of the branch's last block.
    pub fn tip_hash(&self) -> Hash256 {
        self.blocks
            .last()
            .map_or(Hash256::ZERO, |b| b.header.block_hash())
    }
}

/// What [`ForkTree::observe`] decided about one arriving block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForkEvent {
    /// The block links onto the canonical tip — the normal append path.
    /// The tree did not store it; the caller extends the chain and then
    /// reports the new tip with [`ForkTree::advance`].
    ExtendsCanonical,
    /// The block was stored on a side branch (freshly forked off the
    /// canonical chain, or extending an existing branch). `best` is
    /// `true` when that branch now out-lengths the canonical chain and
    /// should be adopted via [`ForkTree::adopt`] + `Chain::reorg_to`.
    Stored {
        /// Index of the branch (stable until the next `adopt`/prune).
        branch: usize,
        /// Whether the branch now wins the longest-chain rule.
        best: bool,
    },
    /// The block is already part of the canonical chain or a stored
    /// branch; nothing to do.
    Duplicate,
    /// The block forks off a canonical height more than
    /// `max_reorg_depth` below the tip — reorging there is refused by
    /// policy, so the block is dropped.
    TooDeep {
        /// The (too-deep) canonical height the block links onto.
        fork_height: u64,
    },
    /// The block's `prev_block` matches nothing the tree knows —
    /// neither recent canonical headers nor any branch tip. Either an
    /// ancient fork or garbage; the caller decides how hostile to be.
    Unknown,
}

/// Bounded fork storage with the longest-chain best-tip rule.
///
/// The tree tracks a window of recent canonical `(height, hash)` pairs
/// (wide enough to classify forks up to `max_reorg_depth` deep, plus
/// slack so moderately-too-deep forks are *named* rather than lumped
/// with garbage) and any number of live side branches inside that
/// window.
#[derive(Debug, Clone)]
pub struct ForkTree {
    max_reorg_depth: u64,
    /// Recent canonical `(height, hash)`, ascending; back is the tip.
    recent: VecDeque<(u64, Hash256)>,
    branches: Vec<SideBranch>,
}

impl ForkTree {
    /// An empty tree accepting reorgs up to `max_reorg_depth` blocks
    /// deep (0 disables fork storage entirely: every non-linking block
    /// is [`ForkEvent::Unknown`]).
    pub fn new(max_reorg_depth: u64) -> Self {
        ForkTree {
            max_reorg_depth,
            recent: VecDeque::new(),
            branches: Vec::new(),
        }
    }

    /// The configured maximum reorg depth.
    pub fn max_reorg_depth(&self) -> u64 {
        self.max_reorg_depth
    }

    /// The live side branches (index-addressable for [`ForkEvent::Stored`]).
    pub fn branches(&self) -> &[SideBranch] {
        &self.branches
    }

    /// How many canonical `(height, hash)` pairs the tree retains: the
    /// reorgable window plus equal slack for naming too-deep forks.
    fn window(&self) -> usize {
        (2 * self.max_reorg_depth + 2) as usize
    }

    /// The canonical tip the tree currently believes in.
    pub fn canonical_tip(&self) -> Option<(u64, Hash256)> {
        self.recent.back().copied()
    }

    /// Records that the canonical chain adopted `hash` at `height`.
    /// Call after every canonical append (and repeatedly to seed the
    /// tree from an existing chain's recent headers). Heights must
    /// arrive in ascending order; the window slides forward and stale
    /// branches are pruned.
    pub fn advance(&mut self, height: u64, hash: Hash256) {
        debug_assert!(self.recent.back().is_none_or(|(h, _)| height == h + 1));
        self.recent.push_back((height, hash));
        while self.recent.len() > self.window() {
            self.recent.pop_front();
        }
        self.prune();
    }

    /// Classifies `block` and stores it if it belongs on a branch. See
    /// [`ForkEvent`] for the outcomes and required follow-ups.
    pub fn observe(&mut self, block: Arc<Block>) -> ForkEvent {
        let hash = block.header.block_hash();
        let prev = block.header.prev_block;
        let Some((tip_height, tip_hash)) = self.canonical_tip() else {
            return ForkEvent::Unknown;
        };
        if self.recent.iter().any(|(_, h)| *h == hash)
            || self
                .branches
                .iter()
                .any(|b| b.blocks.iter().any(|bb| bb.header.block_hash() == hash))
        {
            return ForkEvent::Duplicate;
        }
        if prev == tip_hash {
            return ForkEvent::ExtendsCanonical;
        }
        if self.max_reorg_depth == 0 {
            return ForkEvent::Unknown;
        }
        // Extending an existing branch?
        if let Some(idx) = self.branches.iter().position(|b| b.tip_hash() == prev) {
            self.branches[idx].blocks.push(block);
            let best = self.branches[idx].tip_height() > tip_height;
            return ForkEvent::Stored { branch: idx, best };
        }
        // Forking off a recent canonical height?
        if let Some((fork_height, _)) = self
            .recent
            .iter()
            .find(|(_, h)| *h == prev)
            .copied()
            .filter(|(h, _)| *h < tip_height)
        {
            if fork_height + self.max_reorg_depth < tip_height {
                return ForkEvent::TooDeep { fork_height };
            }
            self.branches.push(SideBranch {
                fork_height,
                blocks: vec![block],
            });
            let idx = self.branches.len() - 1;
            let best = self.branches[idx].tip_height() > tip_height;
            return ForkEvent::Stored { branch: idx, best };
        }
        ForkEvent::Unknown
    }

    /// The index of a branch that currently beats the canonical chain
    /// under the longest-chain rule (ties favor the canonical chain;
    /// among winning branches, the longest, then first-seen).
    pub fn best_branch(&self) -> Option<usize> {
        let (tip_height, _) = self.canonical_tip()?;
        self.branches
            .iter()
            .enumerate()
            .filter(|(_, b)| b.tip_height() > tip_height)
            .max_by_key(|(i, b)| (b.tip_height(), usize::MAX - i))
            .map(|(i, _)| i)
    }

    /// Adopts branch `idx` as the new canonical chain after the caller
    /// has successfully reorged: the branch is removed, the canonical
    /// window is rolled back to its fork point and re-advanced over the
    /// branch's blocks, and the displaced canonical suffix (`old_suffix`,
    /// the blocks that were canonical above the fork point, in height
    /// order) is stored as a side branch so an immediate reorg *back*
    /// works. Returns the adopted branch.
    pub fn adopt(&mut self, idx: usize, old_suffix: Vec<Arc<Block>>) -> SideBranch {
        let branch = self.branches.swap_remove(idx);
        while self
            .recent
            .back()
            .is_some_and(|(h, _)| *h > branch.fork_height)
        {
            self.recent.pop_back();
        }
        for (i, block) in branch.blocks.iter().enumerate() {
            self.advance(branch.fork_height + 1 + i as u64, block.header.block_hash());
        }
        if !old_suffix.is_empty() {
            self.branches.push(SideBranch {
                fork_height: branch.fork_height,
                blocks: old_suffix,
            });
        }
        self.prune();
        branch
    }

    /// Drops branches whose fork point has fallen more than
    /// `max_reorg_depth` below the canonical tip — they can no longer
    /// be adopted, so keeping their blocks is pure waste. Returns how
    /// many branches were collected.
    pub fn prune(&mut self) -> usize {
        let Some((tip_height, _)) = self.canonical_tip() else {
            return 0;
        };
        let max_depth = self.max_reorg_depth;
        let before = self.branches.len();
        self.branches
            .retain(|b| b.fork_height + max_depth >= tip_height);
        before - self.branches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::builder::ChainBuilder;
    use crate::chain::Chain;
    use crate::params::{ChainParams, CommitmentPolicy};
    use crate::transaction::Transaction;
    use lvq_bloom::BloomParams;

    fn params() -> ChainParams {
        ChainParams::new(
            BloomParams::new(128, 2).unwrap(),
            8,
            CommitmentPolicy::lvq(),
        )
        .unwrap()
    }

    /// A chain whose blocks 1..=n mine to `miners[i]`.
    fn build(miners: &[&str]) -> Chain {
        let mut builder = ChainBuilder::new(params()).unwrap();
        for (i, miner) in miners.iter().enumerate() {
            builder
                .push_block(vec![Transaction::coinbase(
                    Address::new(*miner),
                    50,
                    i as u32 + 1,
                )])
                .unwrap();
        }
        builder.finish()
    }

    fn seeded_tree(chain: &Chain, max_depth: u64) -> ForkTree {
        let mut tree = ForkTree::new(max_depth);
        for h in 1..=chain.tip_height() {
            tree.advance(h, chain.hash_at(h).unwrap());
        }
        tree
    }

    #[test]
    fn classifies_extension_fork_and_garbage() {
        let canonical = build(&["1A"; 8]);
        let longer = build(&["1A", "1A", "1A", "1A", "1A", "1A", "1A", "1A", "1A"]);
        let forked = build(&["1A", "1A", "1A", "1A", "1A", "1B", "1B", "1B"]);
        let mut tree = seeded_tree(&canonical, 4);

        // Links onto the tip: not stored, caller appends.
        assert_eq!(
            tree.observe(longer.block(9).unwrap()),
            ForkEvent::ExtendsCanonical
        );
        // Re-delivery of a canonical block is a duplicate.
        assert_eq!(
            tree.observe(canonical.block(8).unwrap()),
            ForkEvent::Duplicate
        );
        // Fork block off height 5: stored, not yet best.
        assert_eq!(
            tree.observe(forked.block(6).unwrap()),
            ForkEvent::Stored {
                branch: 0,
                best: false
            }
        );
        assert_eq!(tree.branches()[0].fork_height, 5);
        // Garbage links nowhere.
        let mut junk = (*forked.block(6).unwrap()).clone();
        junk.header.prev_block = Hash256::hash(b"nowhere");
        assert_eq!(tree.observe(Arc::new(junk)), ForkEvent::Unknown);
    }

    #[test]
    fn branch_becomes_best_only_when_longer() {
        let canonical = build(&["1A"; 8]);
        let winner = build(&["1A", "1A", "1A", "1A", "1A", "1A", "1B", "1B", "1B", "1B"]);
        let mut tree = seeded_tree(&canonical, 4);
        // Branch off height 6 catches up at 7, 8, overtakes at 9.
        for h in 7..=8 {
            assert_eq!(
                tree.observe(winner.block(h).unwrap()),
                ForkEvent::Stored {
                    branch: 0,
                    best: false
                },
                "height {h} ties or trails"
            );
            assert_eq!(tree.best_branch(), None);
        }
        assert_eq!(
            tree.observe(winner.block(9).unwrap()),
            ForkEvent::Stored {
                branch: 0,
                best: true
            }
        );
        assert_eq!(tree.best_branch(), Some(0));
    }

    #[test]
    fn too_deep_forks_are_refused_and_stale_branches_pruned() {
        let canonical = build(&["1A"; 10]);
        let forked = build(&["1A", "1A", "1A", "1A", "1A", "1A", "1B"]);
        let mut tree = seeded_tree(&canonical, 2);
        // Fork off height 6 with tip at 10: depth 4 > 2, but still
        // inside the retained window, so it is *named* too deep.
        assert_eq!(
            tree.observe(forked.block(7).unwrap()),
            ForkEvent::TooDeep { fork_height: 6 }
        );
        // A fork below the retained window entirely is just unknown.
        let ancient = build(&["1A", "1A", "1B"]);
        assert_eq!(tree.observe(ancient.block(3).unwrap()), ForkEvent::Unknown);
        // A branch inside the window goes stale as the tip advances.
        let recent_fork = build(&["1A", "1A", "1A", "1A", "1A", "1A", "1A", "1A", "1B", "1B"]);
        assert!(matches!(
            tree.observe(recent_fork.block(9).unwrap()),
            ForkEvent::Stored { .. }
        ));
        assert_eq!(tree.branches().len(), 1);
        let longer = build(&["1A"; 13]);
        for h in 11..=13 {
            tree.advance(h, longer.hash_at(h).unwrap());
        }
        assert!(tree.branches().is_empty(), "stale branch pruned");
    }

    #[test]
    fn adopt_swaps_canonical_and_keeps_the_old_suffix_reorgable() {
        let canonical = build(&["1A"; 8]);
        let winner = build(&["1A", "1A", "1A", "1A", "1A", "1A", "1B", "1B", "1B"]);
        let mut tree = seeded_tree(&canonical, 4);
        for h in 7..=9 {
            tree.observe(winner.block(h).unwrap());
        }
        let idx = tree.best_branch().unwrap();
        let old_suffix: Vec<_> = (7..=8).map(|h| canonical.block(h).unwrap()).collect();
        let adopted = tree.adopt(idx, old_suffix);
        assert_eq!(adopted.fork_height, 6);
        assert_eq!(
            tree.canonical_tip().unwrap(),
            (9, winner.hash_at(9).unwrap())
        );
        // The displaced suffix is a live branch; extending it two
        // blocks reorgs back.
        assert_eq!(tree.branches().len(), 1);
        assert_eq!(tree.branches()[0].fork_height, 6);
        let back = build(&["1A"; 11]);
        assert_eq!(
            tree.observe(back.block(9).unwrap()),
            ForkEvent::Stored {
                branch: 0,
                best: false
            }
        );
        assert_eq!(
            tree.observe(back.block(10).unwrap()),
            ForkEvent::Stored {
                branch: 0,
                best: true
            }
        );
    }

    #[test]
    fn depth_zero_disables_fork_storage() {
        let canonical = build(&["1A"; 8]);
        let forked = build(&["1A", "1A", "1A", "1A", "1A", "1A", "1A", "1B"]);
        let mut tree = seeded_tree(&canonical, 0);
        assert_eq!(tree.observe(forked.block(8).unwrap()), ForkEvent::Unknown);
        assert!(tree.branches().is_empty());
    }
}
