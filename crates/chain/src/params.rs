//! Chain-wide configuration.

use lvq_bloom::BloomParams;

use crate::error::ChainError;

/// Which commitments every header of a chain carries.
///
/// The four evaluation systems of paper §VII-B map to the four useful
/// combinations; see [`CommitmentPolicy::strawman`] etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitmentPolicy {
    /// Commit `H(BF)` per block (the strawman variant's header field).
    pub bf_hash: bool,
    /// Commit a BMT root per block (merging per paper Table I).
    pub bmt: bool,
    /// Commit an SMT per block.
    pub smt: bool,
}

impl CommitmentPolicy {
    /// The strawman variant: `H(BF)` only.
    pub const fn strawman() -> Self {
        CommitmentPolicy {
            bf_hash: true,
            bmt: false,
            smt: false,
        }
    }

    /// LVQ without BMT: per-block `H(BF)` plus SMT.
    pub const fn lvq_without_bmt() -> Self {
        CommitmentPolicy {
            bf_hash: true,
            bmt: false,
            smt: true,
        }
    }

    /// LVQ without SMT: BMT only.
    pub const fn lvq_without_smt() -> Self {
        CommitmentPolicy {
            bf_hash: false,
            bmt: true,
            smt: false,
        }
    }

    /// Full LVQ: BMT plus SMT.
    pub const fn lvq() -> Self {
        CommitmentPolicy {
            bf_hash: false,
            bmt: true,
            smt: true,
        }
    }
}

/// Parameters fixed for the lifetime of a chain.
///
/// # Examples
///
/// ```
/// use lvq_bloom::BloomParams;
/// use lvq_chain::{ChainParams, CommitmentPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's full-LVQ configuration: 30 KB filters, M = 4096.
/// let params = ChainParams::new(
///     BloomParams::new(30_000, 2)?,
///     4096,
///     CommitmentPolicy::lvq(),
/// )?;
/// assert_eq!(params.segment_len(), 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainParams {
    bloom: BloomParams,
    segment_len: u64,
    policy: CommitmentPolicy,
}

impl ChainParams {
    /// Creates chain parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidSegmentLen`] if `segment_len` is not
    /// a power of two (the paper's `M` is always `2^k`).
    pub fn new(
        bloom: BloomParams,
        segment_len: u64,
        policy: CommitmentPolicy,
    ) -> Result<Self, ChainError> {
        if segment_len == 0 || segment_len & (segment_len - 1) != 0 {
            return Err(ChainError::InvalidSegmentLen { len: segment_len });
        }
        Ok(ChainParams {
            bloom,
            segment_len,
            policy,
        })
    }

    /// Bloom filter parameters shared by every block.
    pub fn bloom(&self) -> BloomParams {
        self.bloom
    }

    /// The paper's `M`: maximum number of blocks merged into one BMT.
    /// Irrelevant (but still recorded) for schemes without BMT.
    pub fn segment_len(&self) -> u64 {
        self.segment_len
    }

    /// Which commitments headers carry.
    pub fn policy(&self) -> CommitmentPolicy {
        self.policy
    }
}

impl Default for ChainParams {
    /// Full LVQ with the paper's defaults: 30 KB filters, `k = 2`
    /// (DESIGN.md §6), `M = 4096`.
    fn default() -> Self {
        ChainParams::new(
            BloomParams::new(30_000, 2).expect("static params valid"),
            4096,
            CommitmentPolicy::lvq(),
        )
        .expect("static params valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_len_must_be_power_of_two() {
        let bloom = BloomParams::new(100, 2).unwrap();
        for bad in [0u64, 3, 6, 100] {
            assert!(matches!(
                ChainParams::new(bloom, bad, CommitmentPolicy::lvq()),
                Err(ChainError::InvalidSegmentLen { .. })
            ));
        }
        for good in [1u64, 2, 1024, 4096] {
            assert!(ChainParams::new(bloom, good, CommitmentPolicy::lvq()).is_ok());
        }
    }

    #[test]
    fn policies_match_paper_table() {
        assert!(CommitmentPolicy::strawman().bf_hash);
        assert!(!CommitmentPolicy::strawman().smt);
        assert!(CommitmentPolicy::lvq_without_bmt().smt);
        assert!(!CommitmentPolicy::lvq_without_bmt().bmt);
        assert!(CommitmentPolicy::lvq_without_smt().bmt);
        assert!(!CommitmentPolicy::lvq_without_smt().smt);
        assert!(CommitmentPolicy::lvq().bmt && CommitmentPolicy::lvq().smt);
    }

    #[test]
    fn default_is_paper_lvq() {
        let p = ChainParams::default();
        assert_eq!(p.bloom().size_bytes(), 30_000);
        assert_eq!(p.segment_len(), 4096);
        assert_eq!(p.policy(), CommitmentPolicy::lvq());
    }
}
