//! Chain-wide configuration.

use lvq_bloom::BloomParams;

use crate::error::ChainError;

/// Which commitments every header of a chain carries.
///
/// The four evaluation systems of paper §VII-B map to the four useful
/// combinations; see [`CommitmentPolicy::strawman`] etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitmentPolicy {
    /// Commit `H(BF)` per block (the strawman variant's header field).
    pub bf_hash: bool,
    /// Commit a BMT root per block (merging per paper Table I).
    pub bmt: bool,
    /// Commit an SMT per block.
    pub smt: bool,
}

impl CommitmentPolicy {
    /// The strawman variant: `H(BF)` only.
    pub const fn strawman() -> Self {
        CommitmentPolicy {
            bf_hash: true,
            bmt: false,
            smt: false,
        }
    }

    /// LVQ without BMT: per-block `H(BF)` plus SMT.
    pub const fn lvq_without_bmt() -> Self {
        CommitmentPolicy {
            bf_hash: true,
            bmt: false,
            smt: true,
        }
    }

    /// LVQ without SMT: BMT only.
    pub const fn lvq_without_smt() -> Self {
        CommitmentPolicy {
            bf_hash: false,
            bmt: true,
            smt: false,
        }
    }

    /// Full LVQ: BMT plus SMT.
    pub const fn lvq() -> Self {
        CommitmentPolicy {
            bf_hash: false,
            bmt: true,
            smt: true,
        }
    }
}

/// Byte budgets for the chain's memo caches.
///
/// The span-filter cache holds recomputed dyadic-span Bloom filters;
/// the SMT cache holds per-block sorted Merkle trees. Both are pure
/// memoisation — any budget (including zero) yields identical query
/// results, only recomputation cost changes — so a server operator can
/// size them to the workload instead of accepting fixed defaults.
///
/// # Examples
///
/// ```
/// use lvq_chain::CacheConfig;
///
/// // A memory-constrained edge node: 16 MB of filters, 4 MB of SMTs.
/// let cfg = CacheConfig::new(16 << 20, 4 << 20);
/// assert!(cfg.filter_cache_bytes < CacheConfig::default().filter_cache_bytes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Byte budget for the dyadic-span Bloom filter cache.
    pub filter_cache_bytes: usize,
    /// Byte budget for the per-block SMT cache.
    pub smt_cache_bytes: usize,
    /// Byte budget for the authenticated index's node cache (ignored by
    /// table sources without one, e.g. the in-memory default).
    pub index_node_cache_bytes: usize,
}

/// Default byte budget for the index node cache.
const DEFAULT_INDEX_NODE_CACHE_BYTES: usize = 64 * 1024 * 1024;

impl CacheConfig {
    /// Creates a cache configuration from explicit filter and SMT byte
    /// budgets; the index node cache keeps its default budget (override
    /// with [`CacheConfig::with_index_node_cache_bytes`]).
    pub const fn new(filter_cache_bytes: usize, smt_cache_bytes: usize) -> Self {
        CacheConfig {
            filter_cache_bytes,
            smt_cache_bytes,
            index_node_cache_bytes: DEFAULT_INDEX_NODE_CACHE_BYTES,
        }
    }

    /// Returns the same configuration with `bytes` as the index node
    /// cache budget (builder style).
    pub const fn with_index_node_cache_bytes(mut self, bytes: usize) -> Self {
        self.index_node_cache_bytes = bytes;
        self
    }

    /// Disables every cache (every lookup recomputes or re-reads) —
    /// useful for cold-path measurements and memory-starved
    /// environments.
    pub const fn disabled() -> Self {
        CacheConfig::new(0, 0).with_index_node_cache_bytes(0)
    }
}

impl Default for CacheConfig {
    /// The historical defaults: 256 MB of span filters, 64 MB of SMTs,
    /// 64 MB of index nodes.
    fn default() -> Self {
        CacheConfig::new(256 * 1024 * 1024, 64 * 1024 * 1024)
    }
}

/// Parameters fixed for the lifetime of a chain.
///
/// Equality compares only the *protocol* parameters (Bloom layout,
/// segment length, commitment policy) — the [`CacheConfig`] is an
/// operational knob that never changes what a chain commits to or what
/// a query returns, so two chains differing only in cache budgets are
/// the same chain.
///
/// # Examples
///
/// ```
/// use lvq_bloom::BloomParams;
/// use lvq_chain::{CacheConfig, ChainParams, CommitmentPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The paper's full-LVQ configuration: 30 KB filters, M = 4096.
/// let params = ChainParams::new(
///     BloomParams::new(30_000, 2)?,
///     4096,
///     CommitmentPolicy::lvq(),
/// )?;
/// assert_eq!(params.segment_len(), 4096);
/// // Cache sizing is operational: it does not affect equality.
/// let tuned = params.with_cache_config(CacheConfig::new(1 << 20, 1 << 20));
/// assert_eq!(params, tuned);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ChainParams {
    bloom: BloomParams,
    segment_len: u64,
    policy: CommitmentPolicy,
    cache: CacheConfig,
}

impl PartialEq for ChainParams {
    fn eq(&self, other: &Self) -> bool {
        // Deliberately ignores `cache`: see the type-level docs.
        self.bloom == other.bloom
            && self.segment_len == other.segment_len
            && self.policy == other.policy
    }
}

impl Eq for ChainParams {}

impl ChainParams {
    /// Creates chain parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidSegmentLen`] if `segment_len` is not
    /// a power of two (the paper's `M` is always `2^k`).
    pub fn new(
        bloom: BloomParams,
        segment_len: u64,
        policy: CommitmentPolicy,
    ) -> Result<Self, ChainError> {
        if segment_len == 0 || segment_len & (segment_len - 1) != 0 {
            return Err(ChainError::InvalidSegmentLen { len: segment_len });
        }
        Ok(ChainParams {
            bloom,
            segment_len,
            policy,
            cache: CacheConfig::default(),
        })
    }

    /// Returns the same protocol parameters with `cache` as the memo
    /// cache budgets (builder style).
    pub fn with_cache_config(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Bloom filter parameters shared by every block.
    pub fn bloom(&self) -> BloomParams {
        self.bloom
    }

    /// The paper's `M`: maximum number of blocks merged into one BMT.
    /// Irrelevant (but still recorded) for schemes without BMT.
    pub fn segment_len(&self) -> u64 {
        self.segment_len
    }

    /// Which commitments headers carry.
    pub fn policy(&self) -> CommitmentPolicy {
        self.policy
    }

    /// The memo cache budgets a [`crate::Chain`] built from these
    /// parameters starts with.
    pub fn cache_config(&self) -> CacheConfig {
        self.cache
    }
}

impl Default for ChainParams {
    /// Full LVQ with the paper's defaults: 30 KB filters, `k = 2`
    /// (DESIGN.md §6), `M = 4096`.
    fn default() -> Self {
        ChainParams::new(
            BloomParams::new(30_000, 2).expect("static params valid"),
            4096,
            CommitmentPolicy::lvq(),
        )
        .expect("static params valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_len_must_be_power_of_two() {
        let bloom = BloomParams::new(100, 2).unwrap();
        for bad in [0u64, 3, 6, 100] {
            assert!(matches!(
                ChainParams::new(bloom, bad, CommitmentPolicy::lvq()),
                Err(ChainError::InvalidSegmentLen { .. })
            ));
        }
        for good in [1u64, 2, 1024, 4096] {
            assert!(ChainParams::new(bloom, good, CommitmentPolicy::lvq()).is_ok());
        }
    }

    #[test]
    fn policies_match_paper_table() {
        assert!(CommitmentPolicy::strawman().bf_hash);
        assert!(!CommitmentPolicy::strawman().smt);
        assert!(CommitmentPolicy::lvq_without_bmt().smt);
        assert!(!CommitmentPolicy::lvq_without_bmt().bmt);
        assert!(CommitmentPolicy::lvq_without_smt().bmt);
        assert!(!CommitmentPolicy::lvq_without_smt().smt);
        assert!(CommitmentPolicy::lvq().bmt && CommitmentPolicy::lvq().smt);
    }

    #[test]
    fn default_is_paper_lvq() {
        let p = ChainParams::default();
        assert_eq!(p.bloom().size_bytes(), 30_000);
        assert_eq!(p.segment_len(), 4096);
        assert_eq!(p.policy(), CommitmentPolicy::lvq());
        assert_eq!(p.cache_config(), CacheConfig::default());
    }

    #[test]
    fn cache_config_is_operational_not_protocol() {
        let base = ChainParams::default();
        let tuned = base.with_cache_config(CacheConfig::new(1024, 512));
        assert_eq!(tuned.cache_config().filter_cache_bytes, 1024);
        assert_eq!(tuned.cache_config().smt_cache_bytes, 512);
        // Scheme identity is unchanged: provers/verifiers built from
        // either parameter set interoperate.
        assert_eq!(base, tuned);
        assert_eq!(
            CacheConfig::disabled(),
            CacheConfig::new(0, 0).with_index_node_cache_bytes(0)
        );
        // `new` leaves the index node budget at its default.
        assert_eq!(
            CacheConfig::new(0, 0).index_node_cache_bytes,
            CacheConfig::default().index_node_cache_bytes
        );
    }
}
