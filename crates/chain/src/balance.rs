//! Balance computation from a transaction history (paper Eq. 1).

use crate::address::Address;
use crate::transaction::Transaction;

/// The two sums of paper Eq. 1.
///
/// `Balance(addr) = Σ v_j − Σ w_i` where `v_j` are output values paying
/// the address and `w_i` are input values spent from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BalanceBreakdown {
    /// Total satoshi received (`Σ v_j`).
    pub received: u64,
    /// Total satoshi spent (`Σ w_i`).
    pub spent: u64,
    /// Number of transactions that contributed.
    pub transactions: u64,
}

impl BalanceBreakdown {
    /// The net balance. Negative only if the history is incomplete or
    /// inconsistent — which is exactly what LVQ's completeness
    /// verification rules out.
    pub fn net(&self) -> i128 {
        i128::from(self.received) - i128::from(self.spent)
    }
}

/// Computes paper Eq. 1 over a transaction history.
///
/// The history must be *complete* for the result to be meaningful; the
/// whole point of LVQ is that a light node can verify completeness
/// before trusting this number.
///
/// # Examples
///
/// ```
/// use lvq_chain::{balance_of, Address, Transaction};
///
/// let miner = Address::new("1Miner");
/// let txs = [Transaction::coinbase(miner.clone(), 50, 0)];
/// assert_eq!(balance_of(&miner, &txs).net(), 50);
/// ```
pub fn balance_of<'a>(
    address: &Address,
    history: impl IntoIterator<Item = &'a Transaction>,
) -> BalanceBreakdown {
    let mut breakdown = BalanceBreakdown::default();
    for tx in history {
        let mut touched = false;
        for output in &tx.outputs {
            if &output.address == address {
                breakdown.received += output.value;
                touched = true;
            }
        }
        for input in &tx.inputs {
            if &input.address == address && !tx.is_coinbase() {
                breakdown.spent += input.value;
                touched = true;
            }
        }
        if touched {
            breakdown.transactions += 1;
        }
    }
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{TxInput, TxOutPoint, TxOutput};
    use lvq_crypto::Hash256;

    fn transfer(from: &str, to: &str, value: u64, change: u64) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: TxOutPoint {
                    txid: Hash256::hash(from.as_bytes()),
                    vout: 0,
                },
                address: Address::new(from),
                value: value + change,
            }],
            outputs: vec![
                TxOutput {
                    address: Address::new(to),
                    value,
                },
                TxOutput {
                    address: Address::new(from),
                    value: change,
                },
            ],
            lock_time: 0,
        }
    }

    #[test]
    fn equation_one_both_sides() {
        let alice = Address::new("1Alice");
        let history = vec![
            Transaction::coinbase(alice.clone(), 100, 0),
            transfer("1Alice", "1Bob", 30, 70),
        ];
        let b = balance_of(&alice, &history);
        // Received: 100 (coinbase) + 70 (change). Spent: 100.
        assert_eq!(b.received, 170);
        assert_eq!(b.spent, 100);
        assert_eq!(b.net(), 70);
        assert_eq!(b.transactions, 2);
    }

    #[test]
    fn uninvolved_address_is_zero() {
        let history = vec![transfer("1A", "1B", 5, 0)];
        let b = balance_of(&Address::new("1C"), &history);
        assert_eq!(b, BalanceBreakdown::default());
    }

    #[test]
    fn incomplete_history_can_go_negative() {
        // Omitting the funding transaction (what a malicious full node
        // would try) yields a nonsensical negative balance.
        let history = vec![transfer("1A", "1B", 5, 0)];
        assert!(balance_of(&Address::new("1A"), &history).net() < 0);
    }

    #[test]
    fn coinbase_marker_input_not_counted_as_spend() {
        let miner = Address::new("1Miner");
        let b = balance_of(&miner, &[Transaction::coinbase(miner.clone(), 50, 0)]);
        assert_eq!(b.spent, 0);
        assert_eq!(b.net(), 50);
    }
}
