//! Block headers with scheme-dependent commitments.

use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::Hash256;

/// Encoded size of the Bitcoin-compatible base fields (paper §II-A:
/// "size of the former is a constant of 80 bytes").
pub const BASE_HEADER_LEN: usize = 80;

/// The optional commitments a scheme adds to the base header.
///
/// | scheme (paper §VII-B)  | `bf_hash` | `bmt_root` | `smt_commitment` |
/// |------------------------|-----------|------------|------------------|
/// | strawman (variant)     | yes       | –          | –                |
/// | LVQ without BMT        | yes       | –          | yes              |
/// | LVQ without SMT        | –         | yes        | –                |
/// | LVQ                    | –         | yes        | yes              |
///
/// (The BMT root of a block that merges only itself is exactly `H(BF)`,
/// so BMT schemes do not need a separate `bf_hash`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HeaderCommitments {
    /// `H(BF)` of this block's address Bloom filter (strawman schemes).
    pub bf_hash: Option<Hash256>,
    /// Root of the BMT this block commits (merging previous blocks per
    /// paper Table I).
    pub bmt_root: Option<Hash256>,
    /// Sealed commitment of this block's sorted `(address, count)` tree.
    pub smt_commitment: Option<Hash256>,
}

impl Encodable for HeaderCommitments {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.bf_hash.encode_into(out);
        self.bmt_root.encode_into(out);
        self.smt_commitment.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.bf_hash.encoded_len() + self.bmt_root.encoded_len() + self.smt_commitment.encoded_len()
    }
}

impl Decodable for HeaderCommitments {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(HeaderCommitments {
            bf_hash: Option::<Hash256>::decode_from(reader)?,
            bmt_root: Option::<Hash256>::decode_from(reader)?,
            smt_commitment: Option::<Hash256>::decode_from(reader)?,
        })
    }
}

/// A block header: Bitcoin's six base fields plus the LVQ commitments.
///
/// The header hash covers *everything*, commitments included, so a light
/// node that follows the (simulated) proof-of-work chain has agreed on
/// all roots a prover will later be checked against.
///
/// # Examples
///
/// ```
/// use lvq_chain::{BlockHeader, HeaderCommitments, BASE_HEADER_LEN};
/// use lvq_codec::Encodable;
/// use lvq_crypto::Hash256;
///
/// let header = BlockHeader {
///     version: 2,
///     prev_block: Hash256::ZERO,
///     merkle_root: Hash256::hash(b"txs"),
///     timestamp: 1_354_000_000,
///     bits: 0x1b00_8000,
///     nonce: 42,
///     commitments: HeaderCommitments::default(),
/// };
/// // No commitments: three absence bytes beyond Bitcoin's 80.
/// assert_eq!(header.encoded_len(), BASE_HEADER_LEN + 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockHeader {
    /// Block format version.
    pub version: u32,
    /// Hash of the previous block's header ([`Hash256::ZERO`] for the
    /// first block).
    pub prev_block: Hash256,
    /// Root of the Merkle tree over the block's transaction ids.
    pub merkle_root: Hash256,
    /// Unix timestamp.
    pub timestamp: u32,
    /// Difficulty target in compact form. Kept for layout fidelity; this
    /// reproduction does not grind proof-of-work (see DESIGN.md).
    pub bits: u32,
    /// Proof-of-work nonce (layout fidelity only).
    pub nonce: u32,
    /// The LVQ scheme commitments.
    pub commitments: HeaderCommitments,
}

impl BlockHeader {
    /// The header hash (double SHA-256 of the encoding, like Bitcoin).
    pub fn block_hash(&self) -> Hash256 {
        Hash256::hash_double(&self.encode())
    }

    /// Bytes a light node stores for this header — the quantity the
    /// paper's Challenge 1 is about.
    pub fn storage_len(&self) -> usize {
        self.encoded_len()
    }
}

impl Encodable for BlockHeader {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.version.encode_into(out);
        self.prev_block.encode_into(out);
        self.merkle_root.encode_into(out);
        self.timestamp.encode_into(out);
        self.bits.encode_into(out);
        self.nonce.encode_into(out);
        self.commitments.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        BASE_HEADER_LEN + self.commitments.encoded_len()
    }
}

impl Decodable for BlockHeader {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            version: u32::decode_from(reader)?,
            prev_block: Hash256::decode_from(reader)?,
            merkle_root: Hash256::decode_from(reader)?,
            timestamp: u32::decode_from(reader)?,
            bits: u32::decode_from(reader)?,
            nonce: u32::decode_from(reader)?,
            commitments: HeaderCommitments::decode_from(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_codec::decode_exact;

    fn sample() -> BlockHeader {
        BlockHeader {
            version: 2,
            prev_block: Hash256::hash(b"prev"),
            merkle_root: Hash256::hash(b"mt"),
            timestamp: 1_354_000_000,
            bits: 0x1b00_8000,
            nonce: 7,
            commitments: HeaderCommitments {
                bf_hash: Some(Hash256::hash(b"bf")),
                bmt_root: None,
                smt_commitment: Some(Hash256::hash(b"smt")),
            },
        }
    }

    #[test]
    fn base_layout_is_80_bytes() {
        let mut h = sample();
        h.commitments = HeaderCommitments::default();
        assert_eq!(h.encoded_len(), 83); // 80 + 3 absence bytes
                                         // Each present commitment costs 32 extra bytes.
        h.commitments.bmt_root = Some(Hash256::ZERO);
        assert_eq!(h.encoded_len(), 83 + 32);
    }

    #[test]
    fn hash_covers_commitments() {
        let h = sample();
        let mut tweaked = h;
        tweaked.commitments.smt_commitment = Some(Hash256::hash(b"forged"));
        assert_ne!(h.block_hash(), tweaked.block_hash());
        let mut no_commit = h;
        no_commit.commitments.bf_hash = None;
        assert_ne!(h.block_hash(), no_commit.block_hash());
    }

    #[test]
    fn hash_covers_base_fields() {
        let h = sample();
        for field in 0..6 {
            let mut t = h;
            match field {
                0 => t.version += 1,
                1 => t.prev_block = Hash256::hash(b"x"),
                2 => t.merkle_root = Hash256::hash(b"x"),
                3 => t.timestamp += 1,
                4 => t.bits += 1,
                _ => t.nonce += 1,
            }
            assert_ne!(h.block_hash(), t.block_hash(), "field {field}");
        }
    }

    #[test]
    fn codec_roundtrip() {
        let h = sample();
        let bytes = h.encode();
        assert_eq!(bytes.len(), h.encoded_len());
        assert_eq!(decode_exact::<BlockHeader>(&bytes).unwrap(), h);
    }
}
