//! Incremental chain construction.

use std::collections::HashMap;
use std::sync::Arc;

use lvq_crypto::Hash256;
use lvq_merkle::bmt::BmtBuilder;
use lvq_merkle::{MerkleTree, SortedMerkleTree};

use crate::address::Address;
use crate::block::Block;
use crate::chain::Chain;
use crate::error::ChainError;
use crate::header::{BlockHeader, HeaderCommitments};
use crate::params::ChainParams;
use crate::transaction::Transaction;

/// First block timestamp: late November 2012, the era of the paper's
/// mainnet range (heights 204,800–208,895).
const GENESIS_TIMESTAMP: u32 = 1_353_000_000;
/// Bitcoin's ten-minute target spacing.
const BLOCK_SPACING_SECS: u32 = 600;

/// Assembles a [`Chain`] block by block, computing every commitment the
/// configured [`crate::CommitmentPolicy`] requires.
///
/// # Examples
///
/// ```
/// use lvq_chain::{Address, ChainBuilder, ChainParams, Transaction};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut builder = ChainBuilder::new(ChainParams::default())?;
/// for height in 1..=4u32 {
///     let coinbase = Transaction::coinbase(Address::new("1Miner"), 50, height);
///     builder.push_block(vec![coinbase])?;
/// }
/// let chain = builder.finish();
/// assert_eq!(chain.tip_height(), 4);
/// chain.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ChainBuilder {
    params: ChainParams,
    blocks: Vec<Block>,
    addr_counts: Vec<Arc<Vec<(Address, u64)>>>,
    span_hashes: HashMap<(u64, u64), Hash256>,
    bmt_builder: Option<BmtBuilder>,
    prev_hash: Hash256,
}

impl ChainBuilder {
    /// Creates an empty builder.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::Bmt`] if the BMT builder rejects the
    /// parameters (cannot happen for parameters validated by
    /// [`ChainParams::new`]).
    pub fn new(params: ChainParams) -> Result<Self, ChainError> {
        let bmt_builder = if params.policy().bmt {
            Some(BmtBuilder::new(params.bloom(), params.segment_len(), 1)?)
        } else {
            None
        };
        Ok(ChainBuilder {
            params,
            blocks: Vec::new(),
            addr_counts: Vec::new(),
            span_hashes: HashMap::new(),
            bmt_builder,
            prev_hash: Hash256::ZERO,
        })
    }

    /// Resumes building on top of a finished chain — what a full node
    /// does when new blocks arrive after a restart.
    ///
    /// The BMT builder's mid-segment state is reconstructed from the
    /// chain's stored span hashes and recomputed span filters; appended
    /// blocks commit exactly as if the chain had been built in one go.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::Bmt`] if the chain's recorded span hashes
    /// are inconsistent (i.e. the chain was corrupted).
    pub fn resume(mut chain: Chain) -> Result<Self, ChainError> {
        let params = chain.params();
        let tip = chain.tip_height();
        let prev_hash = if tip == 0 {
            Hash256::ZERO
        } else {
            chain.header(tip)?.block_hash()
        };

        // The chain hands back its live builder when it kept one,
        // reconstructing the partial segment from stored span hashes
        // otherwise.
        let bmt_builder = chain.take_or_rebuild_bmt_builder()?;

        let Chain {
            source,
            tables,
            span_hashes,
            ..
        } = chain;
        let blocks = source.into_blocks();
        Ok(ChainBuilder {
            params,
            blocks,
            addr_counts: tables.into_tables(),
            span_hashes,
            bmt_builder,
            prev_hash,
        })
    }

    /// The configuration this builder commits against.
    pub fn params(&self) -> ChainParams {
        self.params
    }

    /// Height the next pushed block will get.
    pub fn next_height(&self) -> u64 {
        self.blocks.len() as u64 + 1
    }

    /// Header of the most recently pushed block, if any.
    pub fn last_header(&self) -> Option<BlockHeader> {
        self.blocks.last().map(|b| b.header)
    }

    /// Appends a block containing `transactions` and returns its height.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::EmptyBlock`] for an empty transaction list
    /// and [`ChainError::MissingCoinbase`] if the first transaction is
    /// not a coinbase.
    pub fn push_block(&mut self, transactions: Vec<Transaction>) -> Result<u64, ChainError> {
        if transactions.is_empty() {
            return Err(ChainError::EmptyBlock);
        }
        if !transactions[0].is_coinbase() {
            return Err(ChainError::MissingCoinbase);
        }
        let height = self.next_height();

        let merkle_root =
            MerkleTree::from_leaves(transactions.iter().map(Transaction::txid).collect()).root();

        // One address-table pass feeds the BF, the SMT, and the stored
        // per-block table.
        let mut counts: std::collections::BTreeMap<&Address, u64> = Default::default();
        for tx in &transactions {
            for addr in tx.addresses() {
                *counts.entry(addr).or_insert(0) += 1;
            }
        }
        let addr_counts: Vec<(Address, u64)> =
            counts.into_iter().map(|(a, c)| (a.clone(), c)).collect();

        let mut filter = lvq_bloom::BloomFilter::new(self.params.bloom());
        for (addr, _) in &addr_counts {
            filter.insert(addr.as_bytes());
        }

        let policy = self.params.policy();
        let mut commitments = HeaderCommitments::default();
        if policy.bf_hash {
            commitments.bf_hash = Some(filter.content_hash());
        }
        if policy.smt {
            let smt = SortedMerkleTree::new(
                addr_counts
                    .iter()
                    .map(|(a, c)| (a.as_bytes().to_vec(), *c))
                    .collect(),
            )?;
            commitments.smt_commitment = Some(smt.commitment());
        }
        if let Some(builder) = self.bmt_builder.as_mut() {
            let commit = builder.push_leaf(filter)?;
            commitments.bmt_root = Some(commit.root);
            for span in commit.new_spans {
                self.span_hashes.insert((span.lo, span.hi), span.hash);
            }
        }

        let header = BlockHeader {
            version: 2,
            prev_block: self.prev_hash,
            merkle_root,
            timestamp: GENESIS_TIMESTAMP
                .wrapping_add(BLOCK_SPACING_SECS.wrapping_mul(height as u32)),
            bits: 0x1b00_8000,
            nonce: height as u32,
            commitments,
        };
        self.prev_hash = header.block_hash();

        self.addr_counts.push(Arc::new(addr_counts));
        self.blocks.push(Block {
            header,
            transactions,
        });
        Ok(height)
    }

    /// Finishes construction. The live BMT builder is carried into the
    /// chain so a later [`Chain::extend_one`] continues the partial
    /// segment without replaying it.
    pub fn finish(self) -> Chain {
        Chain::from_parts(
            self.params,
            self.blocks,
            self.addr_counts,
            self.span_hashes,
            self.bmt_builder,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CommitmentPolicy;
    use crate::transaction::{TxInput, TxOutPoint, TxOutput};
    use lvq_bloom::BloomParams;
    use lvq_merkle::bmt::{self, BmtSource};

    fn small_params(policy: CommitmentPolicy) -> ChainParams {
        ChainParams::new(BloomParams::new(128, 2).unwrap(), 8, policy).unwrap()
    }

    fn transfer(from: &str, to: &str, value: u64, salt: u32) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: TxOutPoint {
                    txid: Hash256::hash(&salt.to_le_bytes()),
                    vout: 0,
                },
                address: Address::new(from),
                value,
            }],
            outputs: vec![TxOutput {
                address: Address::new(to),
                value,
            }],
            lock_time: 0,
        }
    }

    fn build_chain(policy: CommitmentPolicy, blocks: u64) -> Chain {
        let mut builder = ChainBuilder::new(small_params(policy)).unwrap();
        for h in 1..=blocks {
            let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
            txs.push(transfer(
                &format!("1From{h}"),
                &format!("1To{h}"),
                10,
                h as u32,
            ));
            if h % 3 == 0 {
                txs.push(transfer("1Busy", &format!("1To{h}x"), 1, h as u32 + 1000));
            }
            builder.push_block(txs).unwrap();
        }
        builder.finish()
    }

    #[test]
    fn all_policies_validate() {
        for policy in [
            CommitmentPolicy::strawman(),
            CommitmentPolicy::lvq_without_bmt(),
            CommitmentPolicy::lvq_without_smt(),
            CommitmentPolicy::lvq(),
        ] {
            let chain = build_chain(policy, 10);
            chain.validate().unwrap();
            assert_eq!(chain.tip_height(), 10);
        }
    }

    #[test]
    fn rejects_bad_blocks() {
        let mut builder = ChainBuilder::new(small_params(CommitmentPolicy::lvq())).unwrap();
        assert_eq!(
            builder.push_block(Vec::new()).unwrap_err(),
            ChainError::EmptyBlock
        );
        assert_eq!(
            builder
                .push_block(vec![transfer("1A", "1B", 1, 0)])
                .unwrap_err(),
            ChainError::MissingCoinbase
        );
    }

    #[test]
    fn headers_are_chained() {
        let chain = build_chain(CommitmentPolicy::lvq(), 5);
        for h in 2..=5u64 {
            assert_eq!(
                chain.header(h).unwrap().prev_block,
                chain.header(h - 1).unwrap().block_hash()
            );
        }
        assert_eq!(chain.header(1).unwrap().prev_block, Hash256::ZERO);
    }

    #[test]
    fn commitments_follow_policy() {
        let lvq = build_chain(CommitmentPolicy::lvq(), 3);
        let h = lvq.header(1).unwrap();
        assert!(h.commitments.bf_hash.is_none());
        assert!(h.commitments.bmt_root.is_some());
        assert!(h.commitments.smt_commitment.is_some());

        let strawman = build_chain(CommitmentPolicy::strawman(), 3);
        let h = strawman.header(1).unwrap();
        assert!(h.commitments.bf_hash.is_some());
        assert!(h.commitments.bmt_root.is_none());
        assert!(h.commitments.smt_commitment.is_none());
    }

    #[test]
    fn merged_ranges_follow_table_one() {
        let chain = build_chain(CommitmentPolicy::lvq(), 16);
        // M = 8; paper Table I within each segment.
        let expected = [
            (1u64, (1u64, 1u64)),
            (2, (1, 2)),
            (3, (3, 3)),
            (4, (1, 4)),
            (5, (5, 5)),
            (6, (5, 6)),
            (7, (7, 7)),
            (8, (1, 8)),
            (9, (9, 9)),
            (10, (9, 10)),
            (16, (9, 16)),
        ];
        for (height, range) in expected {
            assert_eq!(chain.merged_range(height), range, "height {height}");
        }
    }

    #[test]
    fn segment_source_matches_committed_roots() {
        let chain = build_chain(CommitmentPolicy::lvq(), 16);
        for height in [1u64, 2, 4, 8, 12, 16] {
            let (lo, hi) = chain.merged_range(height);
            let source = chain.segment_source(lo, hi).unwrap();
            assert_eq!(
                Some(source.root_hash()),
                chain.header(height).unwrap().commitments.bmt_root,
                "height {height}"
            );
        }
    }

    #[test]
    fn segment_source_proofs_verify() {
        let chain = build_chain(CommitmentPolicy::lvq(), 8);
        let params = chain.params().bloom();
        let absent = lvq_bloom::BloomFilter::bit_positions(params, b"1NotThere");
        let source = chain.segment_source(1, 8).unwrap();
        let proof = bmt::prove(&source, &absent).unwrap();
        let root = chain.header(8).unwrap().commitments.bmt_root.unwrap();
        let coverage = proof.verify(1, 8, &root, params, &absent).unwrap();
        assert!(coverage.covers(1, 8));

        // A present address must surface its blocks as failed leaves.
        let busy = lvq_bloom::BloomFilter::bit_positions(params, b"1Busy");
        let proof = bmt::prove(&source, &busy).unwrap();
        let coverage = proof.verify(1, 8, &root, params, &busy).unwrap();
        assert!(coverage.failed_leaves.contains(&3));
        assert!(coverage.failed_leaves.contains(&6));
    }

    #[test]
    fn leaf_filter_is_cached_and_consistent() {
        let chain = build_chain(CommitmentPolicy::lvq(), 4);
        let a = chain.leaf_filter(2).unwrap();
        let b = chain.leaf_filter(2).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, chain.span_filter(2, 2).unwrap());
        // Span filter equals OR of leaves.
        let mut expect = chain.leaf_filter(1).unwrap();
        expect.union_with(&chain.leaf_filter(2).unwrap()).unwrap();
        assert_eq!(chain.span_filter(1, 2).unwrap(), expect);
    }

    #[test]
    fn history_and_unknown_heights() {
        let chain = build_chain(CommitmentPolicy::lvq(), 9);
        let history = chain.history_of(&Address::new("1Busy"));
        let heights: Vec<u64> = history.iter().map(|(h, _)| *h).collect();
        assert_eq!(heights, vec![3, 6, 9]);
        assert!(chain.block(0).is_err());
        assert!(chain.block(10).is_err());
        assert!(chain.segment_source(1, 3).is_err()); // non-dyadic
    }

    #[test]
    fn resume_matches_straight_build() {
        for policy in [
            CommitmentPolicy::strawman(),
            CommitmentPolicy::lvq_without_bmt(),
            CommitmentPolicy::lvq_without_smt(),
            CommitmentPolicy::lvq(),
        ] {
            // 13 blocks straight vs. 13 = 9 + resume + 4.
            let straight = build_chain(policy, 13);

            let partial = build_chain(policy, 9);
            let mut resumed = ChainBuilder::resume(partial).unwrap();
            for h in 10..=13u64 {
                let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h as u32)];
                txs.push(transfer(
                    &format!("1From{h}"),
                    &format!("1To{h}"),
                    10,
                    h as u32,
                ));
                if h % 3 == 0 {
                    txs.push(transfer("1Busy", &format!("1To{h}x"), 1, h as u32 + 1000));
                }
                resumed.push_block(txs).unwrap();
            }
            let resumed = resumed.finish();

            assert_eq!(resumed.tip_height(), 13);
            for h in 1..=13 {
                assert_eq!(
                    resumed.header(h).unwrap().block_hash(),
                    straight.header(h).unwrap().block_hash(),
                    "policy {policy:?} height {h}"
                );
            }
            resumed.validate().unwrap();
        }
    }

    #[test]
    fn resume_empty_chain() {
        let empty = ChainBuilder::new(small_params(CommitmentPolicy::lvq()))
            .unwrap()
            .finish();
        let mut builder = ChainBuilder::resume(empty).unwrap();
        builder
            .push_block(vec![Transaction::coinbase(Address::new("1M"), 50, 1)])
            .unwrap();
        let chain = builder.finish();
        chain.validate().unwrap();
    }

    #[test]
    fn resume_at_segment_boundary() {
        // M = 8; resuming at tip 8 (empty BMT stack) must still commit
        // block 9 as a fresh segment.
        let partial = build_chain(CommitmentPolicy::lvq(), 8);
        let mut builder = ChainBuilder::resume(partial).unwrap();
        builder
            .push_block(vec![Transaction::coinbase(Address::new("1M"), 50, 9)])
            .unwrap();
        let chain = builder.finish();
        assert_eq!(chain.merged_range(9), (9, 9));
        chain.validate().unwrap();
    }

    #[test]
    fn validate_detects_tampering() {
        let mut chain = build_chain(CommitmentPolicy::lvq(), 4);
        chain.validate().unwrap();
        // Tamper a transaction value without refreshing commitments.
        Arc::make_mut(&mut chain.source.blocks[1]).transactions[0].outputs[0].value += 1;
        assert!(matches!(
            chain.validate().unwrap_err(),
            ChainError::CommitmentMismatch { height: 2, .. }
                | ChainError::BrokenChainLink { height: 2 }
        ));
    }
}
