//! Micro-benchmarks of the substrate structures: hashing, Bloom
//! filters, and the three trees. These bound the cost of chain building
//! (the BMT/SMT maintenance overhead LVQ adds to a full node).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use lvq_bloom::{BloomFilter, BloomParams};
use lvq_crypto::{sha256, Hash256};
use lvq_merkle::bmt::{self, BmtSource};
use lvq_merkle::{Bmt, BmtBuilder, MerkleTree, SortedMerkleTree};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 30_000] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| b.iter(|| sha256(&data)));
    }
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let params = BloomParams::new(30_000, 2).unwrap();
    let mut group = c.benchmark_group("bloom");
    group.bench_function("insert", |b| {
        let mut filter = BloomFilter::new(params);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            filter.insert(&i.to_le_bytes());
        });
    });
    let mut filter = BloomFilter::new(params);
    for i in 0..500u64 {
        filter.insert(&i.to_le_bytes());
    }
    group.bench_function("check", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            filter.check(&i.to_le_bytes())
        });
    });
    let other = filter.clone();
    group.bench_function("union_30KB", |b| {
        b.iter_batched(
            || filter.clone(),
            |mut f| f.union_with(&other).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_merkle_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("trees");
    let leaves: Vec<Hash256> = (0..220u64)
        .map(|i| Hash256::hash(&i.to_le_bytes()))
        .collect();
    group.bench_function("mt_build_220", |b| {
        b.iter(|| MerkleTree::from_leaves(leaves.clone()))
    });
    let tree = MerkleTree::from_leaves(leaves.clone());
    group.bench_function("mt_branch", |b| b.iter(|| tree.branch(137).unwrap()));

    let entries: Vec<(Vec<u8>, u64)> = (0..500u64)
        .map(|i| (format!("1Addr{i:05}").into_bytes(), 1 + i % 3))
        .collect();
    group.bench_function("smt_build_500", |b| {
        b.iter(|| SortedMerkleTree::new(entries.clone()).unwrap())
    });
    let smt = SortedMerkleTree::new(entries).unwrap();
    group.bench_function("smt_prove_absent", |b| b.iter(|| smt.prove(b"1Nobody")));
    group.finish();
}

fn bench_bmt(c: &mut Criterion) {
    let params = BloomParams::new(1_920, 2).unwrap();
    let leaves: Vec<BloomFilter> = (0..64u64)
        .map(|i| {
            let mut f = BloomFilter::new(params);
            for j in 0..25u64 {
                f.insert(format!("1A{i}x{j}").as_bytes());
            }
            f
        })
        .collect();
    let mut group = c.benchmark_group("bmt");
    group.bench_function("build_64_leaves", |b| {
        b.iter(|| Bmt::build(1, leaves.clone()).unwrap())
    });
    group.bench_function("incremental_builder_64", |b| {
        b.iter(|| {
            let mut builder = BmtBuilder::new(params, 64, 1).unwrap();
            for leaf in &leaves {
                builder.push_leaf(leaf.clone()).unwrap();
            }
        })
    });
    let tree = Bmt::build(1, leaves).unwrap();
    let positions = BloomFilter::bit_positions(params, b"1Absent");
    group.bench_function("prove_absent", |b| {
        b.iter(|| bmt::prove(&tree, &positions).unwrap())
    });
    let proof = bmt::prove(&tree, &positions).unwrap();
    let root = tree.root_hash();
    group.bench_function("verify_absent", |b| {
        b.iter(|| proof.verify(1, 64, &root, params, &positions).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_bloom, bench_merkle_trees, bench_bmt
}
criterion_main!(benches);
