//! End-to-end query benchmarks: one per evaluation artefact, at small
//! scale (shape-preserving; see `lvq_bench::Scale`).
//!
//! * `fig12_result_size/*` — prover response generation per scheme
//!   (the size itself is printed by `repro fig12`);
//! * `fig13_bf_size/*` — LVQ proving across filter sizes;
//! * `fig16_segment_len/*` — LVQ proving across segment lengths;
//! * `verify/*` — light-client verification per scheme;
//! * `build_chain/*` — chain construction (BMT/SMT maintenance cost).

use criterion::{criterion_group, criterion_main, Criterion};

use lvq_bench::{build_workload, Scale, WorkloadSpec};
use lvq_chain::Address;
use lvq_core::{LightClient, Prover, Scheme};
use lvq_workload::Workload;

const SEED: u64 = 0x1_5EED;

fn probe(workload: &Workload, index: usize) -> Address {
    workload.probes[index].address.clone()
}

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_result_size");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        let spec = WorkloadSpec {
            seed: SEED,
            ..WorkloadSpec::paper_default(scheme, Scale::Small)
        };
        let workload = build_workload(spec);
        let address = probe(&workload, 3); // Addr4-class probe
        group.bench_function(scheme.name().replace([' ', '/'], "_"), |b| {
            let prover = Prover::from_chain(&workload.chain).unwrap();
            b.iter(|| prover.respond(&address).unwrap())
        });
    }
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_bf_size");
    group.sample_size(10);
    for bf_size in [640u32, 6_400, 32_000] {
        let spec = WorkloadSpec {
            bf_size,
            seed: SEED,
            ..WorkloadSpec::paper_default(Scheme::Lvq, Scale::Small)
        };
        let workload = build_workload(spec);
        let address = probe(&workload, 5);
        group.bench_function(format!("{bf_size}B"), |b| {
            let prover = Prover::from_chain(&workload.chain).unwrap();
            b.iter(|| prover.respond(&address).unwrap())
        });
    }
    group.finish();
}

fn bench_fig16(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_segment_len");
    group.sample_size(10);
    for segment_len in [1u64, 16, 256] {
        let spec = WorkloadSpec {
            segment_len,
            seed: SEED,
            ..WorkloadSpec::paper_default(Scheme::Lvq, Scale::Small)
        };
        let workload = build_workload(spec);
        let address = probe(&workload, 5);
        group.bench_function(format!("M{segment_len}"), |b| {
            let prover = Prover::from_chain(&workload.chain).unwrap();
            b.iter(|| prover.respond(&address).unwrap())
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        let spec = WorkloadSpec {
            seed: SEED,
            ..WorkloadSpec::paper_default(scheme, Scale::Small)
        };
        let workload = build_workload(spec);
        let address = probe(&workload, 3);
        let prover = Prover::from_chain(&workload.chain).unwrap();
        let (response, _) = prover.respond(&address).unwrap();
        let client = LightClient::new(prover.config(), workload.chain.headers());
        group.bench_function(scheme.name().replace([' ', '/'], "_"), |b| {
            b.iter(|| client.verify(&address, &response).unwrap())
        });
    }
    group.finish();
}

fn bench_build_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_chain");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        let spec = WorkloadSpec {
            seed: SEED,
            ..WorkloadSpec::paper_default(scheme, Scale::Small)
        };
        group.bench_function(scheme.name().replace([' ', '/'], "_"), |b| {
            b.iter(|| build_workload(spec))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_fig12, bench_fig13, bench_fig16, bench_verify, bench_build_chain
}
criterion_main!(benches);
