//! End-to-end crash loop: SIGKILL a real serving process ten times
//! mid-ingest while a chaos-wrapped client queries it, and assert the
//! three claims (zero lies, zero corrupt reopens, bounded recovery).
//!
//! Lives as an integration test because the experiment re-invokes the
//! `repro` binary as its serving child (`CARGO_BIN_EXE_repro`).

use lvq_bench::experiments::crashloop;
use lvq_bench::Scale;

#[test]
fn crashloop_survives_ten_kills_without_lies_or_corruption() {
    let exe = std::path::Path::new(env!("CARGO_BIN_EXE_repro"));
    let result = crashloop::run(Scale::Small, 7, exe);

    // The hard claims — run() itself panics on violation; restate the
    // zero counters so the test reads as the contract.
    assert_eq!(result.corrupt_reopens, 0);
    assert_eq!(result.accepted_lies, 0);
    assert_eq!(result.points.len(), 10);

    // The kills really landed mid-ingest (a post-catch-up kill proves
    // nothing about append-path durability).
    assert!(
        result.mid_ingest_kills >= 3,
        "only {} of {} kills landed mid-ingest",
        result.mid_ingest_kills,
        result.points.len()
    );

    // The chain really grew across cycles — the loop was not serving a
    // frozen prefix the whole time.
    let first = result.points.first().unwrap().tip_at_open;
    let last = result.points.last().unwrap().tip_at_open;
    assert!(
        last > first,
        "tip never advanced across kill cycles ({first} -> {last})"
    );

    // Bounded recovery: every restart was serving well inside the
    // experiment's 30s deadline.
    assert!(result.max_recovery_ms < 30_000);

    // The full ground truth was verified at the end.
    assert!(result.final_verified_txs > 0);
    assert_eq!(result.blocks, Scale::Small.blocks());
}
