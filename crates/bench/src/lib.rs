//! Experiment harness for the LVQ paper's evaluation (§VII).
//!
//! Each experiment module regenerates one table or figure:
//!
//! | paper artefact | module | what it reports |
//! |---|---|---|
//! | Table I  | [`experiments::tables`] | blocks merged per height |
//! | Table II | [`experiments::tables`] | sub-segment division |
//! | Table III| [`experiments::tables`] | planted probe footprints |
//! | Fig. 12  | [`experiments::fig12`]  | result size, 4 schemes × 6 addresses |
//! | Fig. 13  | [`experiments::bf_sweep`] | result size vs BF size (LVQ) |
//! | Fig. 14  | [`experiments::bf_sweep`] | BMT-branch share of the result |
//! | Fig. 15  | [`experiments::bf_sweep`] | endpoint count vs BF size |
//! | Fig. 16  | [`experiments::fig16`]  | endpoint count vs segment length |
//! | (extra)  | [`experiments::storage`]| light-node storage per scheme |
//!
//! Experiments run at two scales: [`Scale::Small`] (seconds, shapes
//! only) and [`Scale::Paper`] (the paper's 4,096-block setup; minutes).
//! The `repro` binary drives them: `repro all --scale paper`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
mod scale;
mod workloads;

pub use scale::Scale;
pub use workloads::{build_workload, built_probes, WorkloadSpec};
