//! Experiment scales.

use lvq_workload::{probes, ProbeSpec, TrafficModel};

/// How big an experiment run is.
///
/// `Paper` mirrors the evaluation setup of §VII (4,096 blocks,
/// late-2012 traffic, 10/30 KB filters). `Small` shrinks everything by
/// ~16× in block count and proportionally in filter size so that Bloom
/// fill ratios — and therefore every *shape* the figures show — are
/// preserved while a full run takes seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast, shape-preserving runs for CI and Criterion.
    Small,
    /// The paper's full setup.
    Paper,
}

impl Scale {
    /// Parses `"small"` / `"paper"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Chain length (paper: 4,096 blocks at heights 204,800–208,895,
    /// re-indexed here from 1).
    pub fn blocks(self) -> u64 {
        match self {
            Scale::Small => 256,
            Scale::Paper => 4096,
        }
    }

    /// Background traffic model.
    pub fn traffic(self) -> TrafficModel {
        match self {
            Scale::Small => TrafficModel::tiny(),
            Scale::Paper => TrafficModel::mainnet_2012(),
        }
    }

    /// Per-block filter size for the non-BMT schemes (paper: 10 KB).
    pub fn per_block_bf(self) -> u32 {
        match self {
            Scale::Small => 640,
            Scale::Paper => 10_000,
        }
    }

    /// Filter size for the BMT schemes (paper: 30 KB).
    pub fn bmt_bf(self) -> u32 {
        match self {
            Scale::Small => 1_920,
            Scale::Paper => 30_000,
        }
    }

    /// Number of Bloom hash functions (paper: "default"; DESIGN.md §6).
    pub fn hashes(self) -> u32 {
        2
    }

    /// The Fig. 13/14/15 filter-size sweep (paper: 10–500 KB).
    pub fn bf_sweep(self) -> Vec<u32> {
        match self {
            Scale::Small => vec![640, 1_920, 3_200, 6_400, 12_800, 32_000],
            Scale::Paper => vec![
                10_000, 30_000, 50_000, 100_000, 200_000, 300_000, 400_000, 500_000,
            ],
        }
    }

    /// The Fig. 16 segment-length sweep (paper: 1–4,096).
    pub fn m_sweep(self) -> Vec<u64> {
        let max = self.blocks();
        let mut m = 1;
        let mut out = Vec::new();
        while m <= max {
            out.push(m);
            m *= 2;
        }
        out
    }

    /// The Table III probes, scaled to the chain length.
    pub fn probes(self) -> Vec<ProbeSpec> {
        probes::table3_scaled(self.blocks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_evaluation_setup() {
        let s = Scale::Paper;
        assert_eq!(s.blocks(), 4096);
        assert_eq!(s.per_block_bf(), 10_000);
        assert_eq!(s.bmt_bf(), 30_000);
        assert_eq!(s.bf_sweep().first(), Some(&10_000));
        assert_eq!(s.bf_sweep().last(), Some(&500_000));
        assert_eq!(
            s.m_sweep(),
            vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
        );
        assert_eq!(s.probes(), probes::table3());
    }

    #[test]
    fn small_scale_preserves_bits_per_block_ratio() {
        // bits-per-expected-address within ~2× of the paper setup so fill
        // ratios (and figure shapes) carry over.
        let paper_ratio = Scale::Paper.per_block_bf() as f64 / 500.0;
        let small_ratio = Scale::Small.per_block_bf() as f64 / 30.0;
        assert!(small_ratio / paper_ratio < 2.0 && paper_ratio / small_ratio < 2.0);
    }

    #[test]
    fn parse_names() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("big"), None);
    }
}
