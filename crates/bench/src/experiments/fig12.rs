//! Fig. 12 — benefits of LVQ over the strawman: query-result size for
//! four systems across the six Table III addresses.

use lvq_core::Scheme;

use crate::experiments::verified_query;
use crate::report::{bytes, Table};
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The scheme.
    pub scheme: Scheme,
    /// `Addr1..Addr6`.
    pub addr: String,
    /// Total query-result bytes (the figure's y axis).
    pub total_bytes: u64,
}

/// The full figure data.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// All scheme × address cells.
    pub cells: Vec<Cell>,
}

/// Runs the experiment: for each scheme a chain over the *same*
/// transaction stream (same seed), 10 KB-class filters for per-block
/// schemes, 30 KB-class filters and `M = chain length` for BMT schemes
/// — exactly the configuration of paper §VII-B.
pub fn run(scale: Scale, seed: u64) -> Fig12 {
    let mut cells = Vec::new();
    for scheme in Scheme::ALL {
        let spec = WorkloadSpec {
            seed,
            ..WorkloadSpec::paper_default(scheme, scale)
        };
        let workload = build_workload(spec);
        for (label, address) in built_probes(&workload) {
            let (response, _) = verified_query(&workload, &address);
            cells.push(Cell {
                scheme,
                addr: label,
                total_bytes: response.total_bytes(),
            });
        }
    }
    Fig12 { cells }
}

impl Fig12 {
    /// The measured size for one cell.
    pub fn size_of(&self, scheme: Scheme, addr: &str) -> Option<u64> {
        self.cells
            .iter()
            .find(|c| c.scheme == scheme && c.addr == addr)
            .map(|c| c.total_bytes)
    }

    /// Renders the paper-style table: one row per address, one column
    /// per system.
    pub fn table(&self) -> Table {
        let mut table = Table::new(&[
            "Address",
            "strawman",
            "LVQ w/o BMT",
            "LVQ w/o SMT",
            "LVQ",
            "LVQ/strawman",
        ]);
        for i in 1..=6 {
            let addr = format!("Addr{i}");
            let get = |s: Scheme| self.size_of(s, &addr).unwrap_or(0);
            let strawman = get(Scheme::Strawman);
            let lvq = get(Scheme::Lvq);
            let without_bmt = get(Scheme::LvqWithoutBmt);
            let without_smt = get(Scheme::LvqWithoutSmt);
            let ratio = if strawman > 0 {
                format!("{:.2} %", lvq as f64 / strawman as f64 * 100.0)
            } else {
                "-".to_string()
            };
            table.row(vec![
                addr,
                bytes(strawman),
                bytes(without_bmt),
                bytes(without_smt),
                bytes(lvq),
                ratio,
            ]);
        }
        table
    }
}

impl std::fmt::Display for Fig12 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 12 — query result size by scheme and address")?;
        write!(f, "{}", self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression net for the paper's headline orderings at small
    /// scale; a change that breaks these shapes would silently corrupt
    /// the reproduction.
    #[test]
    fn headline_shapes_hold_at_small_scale() {
        let result = run(Scale::Small, 21);
        let get = |scheme: Scheme, addr: &str| result.size_of(scheme, addr).expect("cell");

        // Absent address: BMT schemes are far below per-block schemes.
        assert!(get(Scheme::Lvq, "Addr1") * 4 < get(Scheme::Strawman, "Addr1"));
        assert!(get(Scheme::LvqWithoutSmt, "Addr1") * 4 < get(Scheme::Strawman, "Addr1"));

        // Per-block schemes are flat in the address's activity (the
        // 4096 filters dominate): within 2x across all addresses.
        let flat_lo = get(Scheme::Strawman, "Addr1");
        let flat_hi = get(Scheme::Strawman, "Addr6");
        assert!(flat_hi < flat_lo * 2);

        // Without SMT, the busiest address pays integral blocks: worst
        // of all four schemes.
        let busiest: Vec<u64> = Scheme::ALL.iter().map(|s| get(*s, "Addr6")).collect();
        assert_eq!(
            busiest.iter().max(),
            Some(&get(Scheme::LvqWithoutSmt, "Addr6"))
        );
    }
}
