//! The Bloom-filter-size sweep behind Figs. 13, 14 and 15.
//!
//! One sweep of full-LVQ chains at increasing filter sizes yields all
//! three figures: total result size (Fig. 13), the BMT branches' share
//! of it (Fig. 14), and the endpoint-node count (Fig. 15).

use lvq_core::Scheme;

use crate::experiments::verified_query;
use crate::report::{bytes, percent, Table};
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// One `(filter size, address)` measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Filter size in bytes.
    pub bf_size: u32,
    /// `Addr1..Addr6`.
    pub addr: String,
    /// Total result bytes (Fig. 13).
    pub total_bytes: u64,
    /// BMT branch bytes: endpoint filters + hashes + structure
    /// (numerator of Fig. 14).
    pub bmt_branch_bytes: u64,
    /// Endpoint node count (Fig. 15).
    pub endpoints: u64,
}

/// The sweep data.
#[derive(Debug, Clone)]
pub struct BfSweep {
    /// All cells, sweep order.
    pub cells: Vec<Cell>,
    /// The swept sizes.
    pub sizes: Vec<u32>,
}

/// Runs the sweep: full LVQ, `M = chain length`, same seed (= same
/// ledger) at every size.
pub fn run(scale: Scale, seed: u64) -> BfSweep {
    let sizes = scale.bf_sweep();
    let mut cells = Vec::new();
    for &bf_size in &sizes {
        let spec = WorkloadSpec {
            bf_size,
            seed,
            ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
        };
        let workload = build_workload(spec);
        for (label, address) in built_probes(&workload) {
            let (response, stats) = verified_query(&workload, &address);
            let breakdown = response.size_breakdown();
            cells.push(Cell {
                bf_size,
                addr: label,
                total_bytes: response.total_bytes(),
                bmt_branch_bytes: breakdown.bmt_branch_bytes(),
                endpoints: stats.bmt.endpoint_count(),
            });
        }
    }
    BfSweep { cells, sizes }
}

impl BfSweep {
    fn table_of(&self, title: &str, value: impl Fn(&Cell) -> String) -> Table {
        let _ = title;
        let mut header: Vec<String> = vec!["BF size".to_string()];
        header.extend((1..=6).map(|i| format!("Addr{i}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        for &size in &self.sizes {
            let mut row = vec![bytes(u64::from(size))];
            for i in 1..=6 {
                let addr = format!("Addr{i}");
                let cell = self
                    .cells
                    .iter()
                    .find(|c| c.bf_size == size && c.addr == addr);
                row.push(cell.map_or("-".to_string(), &value));
            }
            table.row(row);
        }
        table
    }

    /// Fig. 13: total result size per filter size.
    pub fn fig13(&self) -> Table {
        self.table_of("fig13", |c| bytes(c.total_bytes))
    }

    /// Fig. 14: BMT branch share of the total result.
    pub fn fig14(&self) -> Table {
        self.table_of("fig14", |c| {
            if c.total_bytes == 0 {
                "-".to_string()
            } else {
                percent(c.bmt_branch_bytes as f64 / c.total_bytes as f64)
            }
        })
    }

    /// Fig. 15: endpoint node count per filter size.
    pub fn fig15(&self) -> Table {
        self.table_of("fig15", |c| c.endpoints.to_string())
    }
}

impl std::fmt::Display for BfSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 13 — impact of BF size on result size (LVQ)")?;
        writeln!(f, "{}", self.fig13())?;
        writeln!(f, "Fig. 14 — size ratio of BMT branches to total result")?;
        writeln!(f, "{}", self.fig14())?;
        writeln!(f, "Fig. 15 — number of endpoint nodes vs BF size")?;
        write!(f, "{}", self.fig15())
    }
}
