//! Extra experiment: end-to-end query latency estimates.
//!
//! The paper reports sizes only; this experiment converts the same
//! measured responses into indicative query latencies for three link
//! classes (the §I coffee-shop scenario runs on a phone), adding the
//! measured single-core verify time.

use std::time::Instant;

use lvq_core::{LightClient, Prover, Scheme};
use lvq_node::BandwidthModel;

use crate::report::{bytes, Table};
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// One `(scheme, address)` measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The scheme.
    pub scheme: Scheme,
    /// `Addr1..Addr6`.
    pub addr: String,
    /// Response bytes.
    pub response_bytes: u64,
    /// Measured light-client verify time (ms).
    pub verify_ms: u64,
    /// Estimated total latency on a mobile link (ms).
    pub mobile_ms: u64,
    /// Estimated total latency on broadband (ms).
    pub broadband_ms: u64,
}

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Latency {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Runs the experiment at the Fig. 12 configuration.
pub fn run(scale: Scale, seed: u64) -> Latency {
    let mut cells = Vec::new();
    for scheme in Scheme::ALL {
        let spec = WorkloadSpec {
            seed,
            ..WorkloadSpec::paper_default(scheme, scale)
        };
        let workload = build_workload(spec);
        let prover = Prover::from_chain(&workload.chain).expect("known scheme");
        let client = LightClient::new(prover.config(), workload.chain.headers());
        for (label, address) in built_probes(&workload) {
            let (response, _) = prover.respond(&address).expect("honest prover");
            let started = Instant::now();
            client.verify(&address, &response).expect("honest response");
            let verify_ms = started.elapsed().as_millis() as u64;
            let response_bytes = response.total_bytes();
            cells.push(Cell {
                scheme,
                addr: label,
                response_bytes,
                verify_ms,
                mobile_ms: BandwidthModel::mobile()
                    .transfer_time(response_bytes)
                    .as_millis() as u64
                    + verify_ms,
                broadband_ms: BandwidthModel::broadband()
                    .transfer_time(response_bytes)
                    .as_millis() as u64
                    + verify_ms,
            });
        }
    }
    Latency { cells }
}

impl std::fmt::Display for Latency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Latency estimate — transfer (5 Mbit/s mobile | 50 Mbit/s broadband) + measured verify"
        )?;
        let mut table = Table::new(&["Scheme", "Address", "Size", "verify", "mobile", "broadband"]);
        for cell in &self.cells {
            table.row(vec![
                cell.scheme.name().to_string(),
                cell.addr.clone(),
                bytes(cell.response_bytes),
                format!("{} ms", cell.verify_ms),
                format!("{} ms", cell.mobile_ms),
                format!("{} ms", cell.broadband_ms),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_orders_follow_sizes_at_small_scale() {
        let result = run(Scale::Small, 11);
        // For the absent address, LVQ must be far cheaper than the
        // strawman on every link.
        let get = |scheme: Scheme| {
            result
                .cells
                .iter()
                .find(|c| c.scheme == scheme && c.addr == "Addr1")
                .expect("cell exists")
                .clone()
        };
        let strawman = get(Scheme::Strawman);
        let lvq = get(Scheme::Lvq);
        assert!(lvq.response_bytes * 4 < strawman.response_bytes);
        assert!(lvq.mobile_ms <= strawman.mobile_ms);
    }
}
