//! Extra experiment: fork-aware serving under reorgs (`repro reorg`).
//!
//! Bitcoin's best chain is only *probabilistically* final: a competing
//! branch can out-length the tip and orphan recent blocks, and every
//! layer of the LVQ pipeline — store, derived state, serving node,
//! light clients — must survive the switch without ever passing off a
//! proof against an orphaned header as verified. This experiment
//! drives a fork-aware [`TipIngester`] through reorgs of depth
//! `1..=max_reorg_depth` while a light client queries mid-reorg,
//! hard-asserting:
//!
//! 1. **no proof against an orphaned header is ever accepted** — after
//!    every reorg, the client's first query is issued while its
//!    headers still pin the orphaned branch; the exchange must fail
//!    verification, never silently succeed;
//! 2. **every completed query equals post-reorg ground truth** — once
//!    the client resyncs (observing `HeadersDiverged` and rolling back
//!    to the fork point), the verified histories match the winning
//!    branch exactly: canonical plants above the fork vanish, the
//!    winner's marker plants appear;
//! 3. **a store reopened after a mid-reorg crash recovers to a
//!    consistent best chain** — the ingester is killed right after a
//!    reorg, the store reopened and checked clean, and a fresh
//!    ingester replays the whole announcement stream, converging
//!    without duplicating or losing state;
//! 4. **quorum clients converge on the majority tip** — a client
//!    synced from a node still serving the orphaned chain flags the
//!    majority peers as forked, then [`converge_on_majority`] switches
//!    it onto the winning branch.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lvq_chain::Address;
use lvq_core::Scheme;
use lvq_crypto::Hash256;
use lvq_node::{
    converge_on_majority, query_quorum_spec, FullNode, IngestConfig, IngestStats, LightNode,
    LiveNode, LocalTransport, MemoryFeed, NodeError, NodeServer, QuerySpec, ResyncOutcome,
    RetryPolicy, ServerConfig, TcpTransport, TipIngester, Transport,
};
use lvq_store::StoreConfig;
use lvq_workload::{BranchSpec, ForkBranch};

use crate::report::Table;
use crate::scale::Scale;
use crate::workloads::{build_forked_workload, built_probes, WorkloadSpec};

/// Reorg budget for the node, the ingester, and the clients. The
/// branch schedule below produces one reorg at every depth in
/// `1..=MAX_REORG_DEPTH`.
pub const MAX_REORG_DEPTH: u64 = 4;

/// How long to wait for an asynchronous condition (ingest catch-up,
/// reorg adoption) before giving up. Generous on purpose; see
/// `experiments::ingest`.
const DEADLINE: Duration = Duration::from_secs(30);

/// One reorg round: a branch out-lengthed the served tip, the node
/// switched, and the client was dragged across the fork.
#[derive(Debug, Clone, Copy)]
pub struct ReorgRound {
    /// Blocks the serving chain rewound (old tip − fork height).
    pub depth: u64,
    /// Height of the last block shared by both branches.
    pub fork_height: u64,
    /// Served tip before the branch arrived.
    pub old_tip: u64,
    /// Served tip after adopting the branch.
    pub new_tip: u64,
    /// Blocks the *client* rolled back when it observed the fork.
    pub client_rollback: u64,
    /// Transactions verified by the post-reorg requery.
    pub verified_txs: u64,
}

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Reorg {
    /// Canonical ground-truth chain length.
    pub blocks: u64,
    /// The reorg budget everything ran under.
    pub max_reorg_depth: u64,
    /// Height of the last block all branches share.
    pub fork_height: u64,
    /// One entry per reorg, in the order they happened.
    pub rounds: Vec<ReorgRound>,
    /// Stale-headed queries rejected (must equal the round count).
    pub orphan_rejections: u64,
    /// Ingest counters up to the mid-reorg crash.
    pub first_run: IngestStats,
    /// Ingest counters after the restart replay.
    pub second_run: IngestStats,
    /// Served tip right after the crash-reopen (must be the last
    /// adopted branch's tip).
    pub restart_tip: u64,
    /// Peer indices the quorum sweep flagged as forked.
    pub fork_peers: Vec<usize>,
    /// The quorum client's tip after majority convergence.
    pub converged_tip: u64,
    /// Best-chain tip hash everything agrees on at the end.
    pub best_tip_hash: Hash256,
    /// Server-side errors across both serving sessions (must be 0).
    pub server_errors: u64,
}

/// Polls `cond` until it holds or [`DEADLINE`] expires.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let started = Instant::now();
    while !cond() {
        assert!(started.elapsed() < DEADLINE, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// `(height, txid)` ground truth for one address.
type History = Vec<(u64, Hash256)>;

/// A branch marker's plants as `(height, txid)` pairs.
fn marker_truth(branch: &ForkBranch) -> History {
    branch
        .blocks
        .iter()
        .enumerate()
        .flat_map(|(i, block)| {
            let height = branch.fork_height + 1 + i as u64;
            block
                .transactions
                .iter()
                .filter(|tx| tx.involves(&branch.marker.address))
                .map(move |tx| (height, tx.txid()))
        })
        .collect()
}

/// Queries every address at the client's pinned tip and asserts each
/// verified history equals its expectation. Returns transactions
/// verified.
fn verify_expected(
    light: &mut LightNode,
    transport: &mut TcpTransport,
    addresses: &[Address],
    expected: &[History],
    what: &str,
) -> u64 {
    let pinned = light.client().tip_height();
    let spec = QuerySpec::addresses(addresses.to_vec()).range(1, pinned);
    let run = light
        .run(&spec, transport)
        .expect("post-reorg query against the honest winner must succeed");
    let mut verified = 0u64;
    for (qi, history) in run.histories.iter().enumerate() {
        let got: History = history
            .transactions
            .iter()
            .map(|(height, tx)| (*height, tx.txid()))
            .collect();
        assert_eq!(
            got, expected[qi],
            "{what}: address {qi} deviates from post-reorg ground truth at tip {pinned}"
        );
        verified += got.len() as u64;
    }
    verified
}

/// Drives one reorg round: waits for the server to adopt the branch,
/// asserts the stale-headed query is rejected, resyncs across the
/// fork, and re-verifies every address against post-reorg truth.
#[allow(clippy::too_many_arguments)]
fn reorg_round(
    live: &LiveNode<lvq_store::DiskBlockSource>,
    light: &mut LightNode,
    transport: &mut TcpTransport,
    branch: &ForkBranch,
    addresses: &[Address],
    expected: &[History],
    orphan_rejections: &mut u64,
) -> ReorgRound {
    let old_tip = light.client().tip_height();
    let new_tip = branch.fork_height + branch.blocks.len() as u64;
    let branch_tip_hash = branch
        .blocks
        .last()
        .expect("non-empty branch")
        .header
        .block_hash();
    wait_for("the server to adopt the longer branch", || {
        live.tip_height() == new_tip && live.tip_hash() == branch_tip_hash
    });

    // The client still pins the orphaned branch: its next query covers
    // heights where its headers and the server's chain disagree, and
    // MUST fail verification — claim 1, the heart of the experiment.
    let stale = QuerySpec::addresses(addresses.to_vec()).range(1, old_tip);
    let err = light
        .run(&stale, &mut *transport)
        .expect_err("a proof against orphaned headers must never verify");
    assert!(
        matches!(err, NodeError::Verify(_)),
        "stale-headed query failed for the wrong reason: {err}"
    );
    *orphan_rejections += 1;

    // Resync: the walk-back finds the fork point, rolls the client
    // back within its budget, and adopts the winner's headers.
    let outcome = light
        .sync_new(&mut *transport)
        .expect("post-reorg resync against an honest server");
    assert_eq!(
        outcome,
        ResyncOutcome::Diverged {
            fork_height: branch.fork_height
        },
        "resync must report divergence at the fork point"
    );
    assert_eq!(light.client().tip_height(), new_tip);
    assert_eq!(
        light.client().hash_at(new_tip),
        Some(branch_tip_hash),
        "the client must land on the winning branch's tip header"
    );

    let verified_txs = verify_expected(light, transport, addresses, expected, "requery");
    ReorgRound {
        depth: old_tip - branch.fork_height,
        fork_height: branch.fork_height,
        old_tip,
        new_tip,
        client_rollback: old_tip - branch.fork_height,
        verified_txs,
    }
}

/// Runs the experiment under full LVQ.
///
/// # Panics
///
/// Panics if any of the four claims in the module docs fails.
pub fn run(scale: Scale, seed: u64) -> Reorg {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    // Every branch forks one block below the canonical tip `L` and is
    // one block longer than the previous winner, so the served chain
    // rewinds exactly 1, 2, 3, then 4 blocks — one reorg per depth in
    // the budget, with the last one landing right at the bound.
    let branch_specs: Vec<BranchSpec> = (1..=MAX_REORG_DEPTH)
        .map(|k| BranchSpec::new(1, k + 1, format!("1Reorg{k}")))
        .collect();
    let forked = build_forked_workload(spec, &branch_specs);
    let canon = &forked.workload.chain;
    let blocks = canon.tip_height();
    let fork_height = blocks - 1;

    let probes: Vec<Address> = built_probes(&forked.workload)
        .into_iter()
        .map(|(_, address)| address)
        .collect();
    // All queried addresses: the Table III probes plus every branch
    // marker — so each round also proves the *losing* markers vanish.
    let mut addresses = probes.clone();
    addresses.extend(forked.branches.iter().map(|b| b.marker.address.clone()));

    // Ground truth: canonical histories in full and clipped at the
    // fork, marker histories per branch.
    let canon_truth: Vec<History> = probes
        .iter()
        .map(|a| {
            canon
                .history_of(a)
                .into_iter()
                .map(|(height, tx)| (height, tx.txid()))
                .collect()
        })
        .collect();
    let clipped_truth: Vec<History> = canon_truth
        .iter()
        .map(|h| {
            h.iter()
                .copied()
                .filter(|(height, _)| *height <= fork_height)
                .collect()
        })
        .collect();
    let markers_truth: Vec<History> = forked.branches.iter().map(marker_truth).collect();
    // Expected histories once branch `k` (0-based) has won: probes
    // clipped at the fork, marker `k` planted, every other marker gone.
    let expected_after = |k: usize| -> Vec<History> {
        let mut expected = clipped_truth.clone();
        for (i, marker) in markers_truth.iter().enumerate() {
            expected.push(if i == k { marker.clone() } else { Vec::new() });
        }
        expected
    };
    // Before any fork arrives the full canonical truth holds.
    let mut expected_canonical = canon_truth.clone();
    expected_canonical.extend(std::iter::repeat_n(Vec::new(), forked.branches.len()));

    let all_blocks: Vec<lvq_chain::Block> = (1..=blocks)
        .map(|h| (*canon.block(h).expect("ground-truth block")).clone())
        .collect();
    let params = canon.params();

    // The announcement script the feed publishes, in order: the whole
    // canonical chain, then each branch as it out-lengths the tip.
    let mut script = all_blocks.clone();
    for branch in &forked.branches {
        script.extend(branch.blocks.iter().cloned());
    }
    let canonical_announcements = blocks;
    let announcements_through = |k: usize| -> u64 {
        canonical_announcements
            + forked.branches[..=k]
                .iter()
                .map(|b| b.blocks.len() as u64)
                .sum::<u64>()
    };

    let dir = std::env::temp_dir().join(format!("lvq-reorg-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        lvq_store::BlockStore::create(&dir, params, StoreConfig::default()).expect("fresh store");
    }

    // ---- Phase 1: grow the canonical chain, reorg twice, crash. ----
    let (chain, report) =
        lvq_store::open_chain(&dir, StoreConfig::default()).expect("open the empty store");
    assert!(report.is_clean(), "fresh store must open clean: {report:?}");
    let store = Arc::clone(chain.source().store());
    let live = Arc::new(LiveNode::new(FullNode::new(chain).expect("known scheme")));
    let server = NodeServer::bind(Arc::clone(&live), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");

    let mut transport = TcpTransport::connect(server.local_addr()).expect("server is listening");
    let mut light = LightNode::sync_from(&mut transport, live.config())
        .expect("initial header sync")
        .with_max_reorg_depth(MAX_REORG_DEPTH);

    let feed = MemoryFeed::new(script.clone());
    let publisher = feed.publisher();
    let ingester = TipIngester::spawn(
        Arc::clone(&live),
        Arc::clone(&store),
        feed,
        IngestConfig::new()
            .with_seed(seed)
            .with_max_reorg_depth(MAX_REORG_DEPTH),
    );
    server.attach_ingest(ingester.monitor());

    // Canonical growth first: the client follows to tip `L` and
    // verifies the full canonical truth.
    publisher.publish(canonical_announcements);
    wait_for("the client to observe the canonical tip", || {
        light.sync_new(&mut transport).expect("header sync");
        light.client().tip_height() >= blocks
    });
    verify_expected(
        &mut light,
        &mut transport,
        &addresses,
        &expected_canonical,
        "canonical baseline",
    );

    let mut rounds = Vec::new();
    let mut orphan_rejections = 0u64;
    for k in 0..2usize {
        publisher.publish(forked.branches[k].blocks.len() as u64);
        let expected = expected_after(k);
        rounds.push(reorg_round(
            &live,
            &mut light,
            &mut transport,
            &forked.branches[k],
            &addresses,
            &expected,
            &mut orphan_rejections,
        ));
    }

    // Crash right after the depth-2 reorg: stop the ingester, tear the
    // node down, and check what the store recovered to.
    let first_run = ingester.stop().expect("clean ingest stop");
    assert_eq!(first_run.reorgs, 2, "phase 1 performed both reorgs");
    assert_eq!(first_run.deepest_reorg, 2);
    let stats1 = server.shutdown();
    assert_eq!(stats1.errors, 0, "phase 1 served with errors");
    let crash_tip_hash = forked.branches[1]
        .blocks
        .last()
        .expect("non-empty branch")
        .header
        .block_hash();
    assert_eq!(
        stats1.tip_hash, crash_tip_hash,
        "exit stats must report the adopted branch's tip hash"
    );
    drop(live);
    drop(store);

    // ---- Phase 2: reopen, replay the stream, reorg twice more. ----
    let (chain, report) =
        lvq_store::open_chain(&dir, StoreConfig::default()).expect("reopen after mid-reorg crash");
    assert!(
        report.is_clean(),
        "a mid-reorg crash must leave a recoverable store: {report:?}"
    );
    let restart_tip = chain.tip_height();
    assert_eq!(restart_tip, blocks + 2, "recovered to the depth-2 winner");
    assert_eq!(
        chain.tip_hash(),
        crash_tip_hash,
        "the reopened store must sit on the adopted branch"
    );
    assert!(
        !chain
            .source()
            .store()
            .fork_log()
            .expect("readable fork log")
            .is_empty(),
        "the fork sidecar log must have journaled the displaced blocks"
    );
    let store = Arc::clone(chain.source().store());
    let live = Arc::new(LiveNode::new(FullNode::new(chain).expect("known scheme")));
    let server = NodeServer::bind(Arc::clone(&live), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");

    // A fresh ingester replays the whole announcement stream from the
    // start: already-canonical blocks classify as duplicates, orphaned
    // ones as stored forks, and the chain does not move.
    let feed = MemoryFeed::new(script.clone());
    let publisher = feed.publisher();
    let ingester = TipIngester::spawn(
        Arc::clone(&live),
        Arc::clone(&store),
        feed,
        IngestConfig::new()
            .with_seed(seed ^ 1)
            .with_max_reorg_depth(MAX_REORG_DEPTH),
    );
    server.attach_ingest(ingester.monitor());

    // The same client reconnects and carries its branch-2 headers over.
    let mut transport = TcpTransport::connect(server.local_addr()).expect("server is listening");
    for k in 2..4usize {
        publisher.publish(announcements_through(k) - publisher.published());
        let expected = expected_after(k);
        rounds.push(reorg_round(
            &live,
            &mut light,
            &mut transport,
            &forked.branches[k],
            &addresses,
            &expected,
            &mut orphan_rejections,
        ));
    }

    // ---- Phase 3: quorum. A node still serving the orphaned ----
    // ---- canonical chain vs. the majority on the winner.      ----
    let loser = FullNode::new(forked.workload.chain).expect("known scheme");
    let mut loser_peer = LocalTransport::new(&loser);
    let mut live_peer_a = TcpTransport::connect(server.local_addr()).expect("listening");
    let mut live_peer_b = TcpTransport::connect(server.local_addr()).expect("listening");

    // A client synced from the loser sits on the orphaned chain.
    let mut quorum_light = LightNode::sync_from(&mut loser_peer, loser.config())
        .expect("sync from the orphaned node")
        .with_max_reorg_depth(MAX_REORG_DEPTH);
    assert_eq!(quorum_light.client().tip_height(), blocks);

    // Below the fork all three peers agree and serve; the sweep's tip
    // census still flags the two majority peers as forked.
    let below_fork = QuerySpec::addresses(probes.clone()).range(1, fork_height);
    let report = {
        let mut peers: Vec<&mut dyn Transport> =
            vec![&mut loser_peer, &mut live_peer_a, &mut live_peer_b];
        query_quorum_spec(
            quorum_light.client(),
            &mut peers,
            &below_fork,
            &RetryPolicy::default(),
            seed,
        )
        .expect("sub-fork quorum query")
    };
    assert_eq!(
        report.fork_peers,
        vec![1, 2],
        "both majority peers must be flagged as forked"
    );

    // Convergence: two fork peers out-vote the one endorsing the
    // orphaned chain, and the client switches to the majority tip.
    let final_tip = blocks + MAX_REORG_DEPTH;
    let best_tip_hash = forked.branches[3]
        .blocks
        .last()
        .expect("non-empty branch")
        .header
        .block_hash();
    let convergence = {
        let mut peers: Vec<&mut dyn Transport> =
            vec![&mut loser_peer, &mut live_peer_a, &mut live_peer_b];
        converge_on_majority(&mut quorum_light, &mut peers).expect("majority convergence")
    };
    assert!(convergence.switched(), "the client must switch branches");
    assert_eq!(convergence.synced_from, Some(1));
    assert_eq!(
        convergence.outcome,
        ResyncOutcome::Diverged { fork_height },
        "convergence crosses the fork at the shared prefix"
    );
    assert_eq!(quorum_light.client().tip_height(), final_tip);
    assert_eq!(
        quorum_light.client().hash_at(final_tip),
        Some(best_tip_hash)
    );

    // ---- Wind down and settle the books. ----
    let second_run = ingester.stop().expect("clean ingest stop");
    assert_eq!(second_run.reorgs, 2, "phase 2 performed both reorgs");
    assert_eq!(second_run.deepest_reorg, MAX_REORG_DEPTH);
    assert_eq!(
        first_run.reorgs + second_run.reorgs,
        MAX_REORG_DEPTH,
        "one reorg per depth in the budget"
    );
    assert_eq!(
        live.tip_hash(),
        best_tip_hash,
        "the served chain must end on the deepest winner"
    );
    let stats2 = server.shutdown();
    assert_eq!(stats2.errors, 0, "phase 2 served with errors");
    assert_eq!(stats2.tip_hash, best_tip_hash);
    assert_eq!(
        orphan_rejections,
        rounds.len() as u64,
        "every reorg must have rejected exactly one stale-headed query"
    );

    let _ = std::fs::remove_dir_all(&dir);

    Reorg {
        blocks,
        max_reorg_depth: MAX_REORG_DEPTH,
        fork_height,
        rounds,
        orphan_rejections,
        first_run,
        second_run,
        restart_tip,
        fork_peers: report.fork_peers,
        converged_tip: final_tip,
        best_tip_hash,
        server_errors: stats1.errors + stats2.errors,
    }
}

impl std::fmt::Display for Reorg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fork-aware serving — LVQ over TCP, {} canonical blocks, reorg budget {}, \
             {} stale-headed queries rejected ({} server errors)",
            self.blocks, self.max_reorg_depth, self.orphan_rejections, self.server_errors
        )?;
        let mut table = Table::new(&[
            "Reorg",
            "Fork height",
            "Old tip",
            "New tip",
            "Client rollback",
            "Verified txs",
        ]);
        for (i, r) in self.rounds.iter().enumerate() {
            table.row(vec![
                format!("depth {}", r.depth),
                r.fork_height.to_string(),
                r.old_tip.to_string(),
                r.new_tip.to_string(),
                r.client_rollback.to_string(),
                format!(
                    "{}{}",
                    r.verified_txs,
                    if i == 1 { "  (crash+replay after)" } else { "" }
                ),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(f)?;
        writeln!(
            f,
            "(crash after depth-2 reorg recovered to tip {}; replay: run 1 {} reorgs \
             deepest {}, run 2 {} reorgs deepest {}, {} announced blocks dropped)",
            self.restart_tip,
            self.first_run.reorgs,
            self.first_run.deepest_reorg,
            self.second_run.reorgs,
            self.second_run.deepest_reorg,
            self.first_run.dropped_blocks + self.second_run.dropped_blocks,
        )?;
        writeln!(
            f,
            "(quorum: fork peers {:?} out-voted the orphaned chain; client converged \
             at tip {})",
            self.fork_peers, self.converged_tip
        )?;
        writeln!(f, "best tip hash: {}", self.best_tip_hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorgs_never_leak_orphaned_proofs() {
        let result = run(Scale::Small, 5);
        assert_eq!(result.server_errors, 0);
        assert_eq!(result.rounds.len(), MAX_REORG_DEPTH as usize);
        assert_eq!(result.orphan_rejections, MAX_REORG_DEPTH);
        for (i, round) in result.rounds.iter().enumerate() {
            assert_eq!(round.depth, i as u64 + 1, "one reorg per depth, in order");
            assert_eq!(round.fork_height, result.fork_height);
            assert_eq!(round.client_rollback, round.depth);
            assert!(round.verified_txs > 0);
        }
        assert_eq!(result.restart_tip, result.blocks + 2);
        assert_eq!(result.fork_peers, vec![1, 2]);
        assert_eq!(result.converged_tip, result.blocks + MAX_REORG_DEPTH);
    }
}
