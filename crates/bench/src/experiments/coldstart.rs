//! Extra experiment: cold-start cost of the three serving paths
//! (`repro coldstart`).
//!
//! A full node restarting after a crash wants to answer its first
//! verified query as soon as possible. This experiment measures
//! time-to-first-verified-query and resident block bytes for:
//!
//! 1. **file (replay)** — deserialize the chain file and replay every
//!    commitment (`file::load`), the fully paranoid path;
//! 2. **file (trusted)** — checksum-only load (`--trust-file`): framing
//!    CRCs vouch for the bytes, derived state is rebuilt in one
//!    streaming pass;
//! 3. **store** — open the on-disk block store and serve straight from
//!    disk through the LRU block cache, decoding blocks only on demand.
//!
//! Every path answers the same Table III probe queries and each answer
//! is verified by the light client against headers only, so the
//! comparison doubles as an end-to-end correctness check: the
//! acceptance bar is zero verification failures on the disk-served
//! path.

use std::time::{Duration, Instant};

use lvq_chain::{file as chain_file, Address, BlockSource, Chain};
use lvq_core::{LightClient, Prover, Scheme};
use lvq_store::StoreConfig;

use crate::report::{bytes, Table};
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// One serving path's cold-start measurements.
#[derive(Debug, Clone, Copy)]
pub struct PathCost {
    /// Bringing the chain up (deserialize / replay / open + assemble).
    pub load: Duration,
    /// Proving and verifying the first query on the fresh chain.
    pub first_query: Duration,
    /// Block bytes resident after answering every probe once.
    pub resident_bytes: u64,
}

impl PathCost {
    /// Time from process start to the first verified answer.
    pub fn time_to_first_verified(&self) -> Duration {
        self.load + self.first_query
    }
}

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Coldstart {
    /// Chain length.
    pub blocks: u64,
    /// Size of the persisted chain file.
    pub file_bytes: u64,
    /// Total size of the store directory (segments + index + meta).
    pub store_bytes: u64,
    /// Segments the store rotated into.
    pub store_segments: u32,
    /// The `file::load` full-replay path.
    pub replay: PathCost,
    /// The `--trust-file` checksum-only path.
    pub trusted: PathCost,
    /// The serve-from-disk path.
    pub store: PathCost,
    /// Probe queries verified per path (zero failures or this
    /// experiment panics).
    pub verified_queries: u64,
}

/// Answers and verifies every probe on `chain`, returning the time the
/// first one took.
fn verify_probes<S: BlockSource>(
    chain: &Chain<S>,
    probes: &[(String, Address)],
    truth: &[usize],
) -> Duration {
    let prover = Prover::from_chain(chain).expect("chain built for a known scheme");
    let client = LightClient::new(prover.config(), chain.headers());
    let mut first = None;
    for ((label, address), expected) in probes.iter().zip(truth) {
        let started = Instant::now();
        let (response, _) = prover.respond(address).expect("honest prover never fails");
        let history = client
            .verify(address, &response)
            .expect("honest response must verify");
        first.get_or_insert_with(|| started.elapsed());
        assert_eq!(
            history.transactions.len(),
            *expected,
            "{label}: verified history must match ground truth"
        );
    }
    first.expect("at least one probe")
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("store directory exists")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// Runs the experiment under full LVQ at the Fig. 12 configuration.
pub fn run(scale: Scale, seed: u64) -> Coldstart {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let workload = build_workload(spec);
    let probes = built_probes(&workload);
    let truth: Vec<usize> = probes
        .iter()
        .map(|(_, a)| workload.chain.history_of(a).len())
        .collect();
    let blocks = workload.chain.tip_height();

    let tag = format!("lvq-coldstart-{}-{seed}", std::process::id());
    let file_path = std::env::temp_dir().join(format!("{tag}.lvq"));
    let store_dir = std::env::temp_dir().join(format!("{tag}.store"));
    let _ = std::fs::remove_dir_all(&store_dir);
    chain_file::save_to_path(&workload.chain, &file_path).expect("persist chain file");
    let store_segments = {
        let store = lvq_store::ingest_chain(&workload.chain, &store_dir, StoreConfig::default())
            .expect("ingest into fresh store");
        store.segment_count()
    };
    let file_bytes = std::fs::metadata(&file_path)
        .expect("chain file exists")
        .len();
    let store_bytes = dir_bytes(&store_dir);
    drop(workload); // cold starts should not borrow the builder's chain

    // Path 1 — full load: deserialize and replay every commitment.
    let started = Instant::now();
    let chain = chain_file::load_from_path(&file_path).expect("well-formed chain file");
    let load = started.elapsed();
    let first_query = verify_probes(&chain, &probes, &truth);
    let replay = PathCost {
        load,
        first_query,
        resident_bytes: chain.source().resident_bytes(),
    };
    drop(chain);

    // Path 2 — trusted load: checksums only, one streaming pass.
    let started = Instant::now();
    let chain = chain_file::load_from_path_trusted(&file_path).expect("well-formed chain file");
    let load = started.elapsed();
    let first_query = verify_probes(&chain, &probes, &truth);
    let trusted = PathCost {
        load,
        first_query,
        resident_bytes: chain.source().resident_bytes(),
    };
    drop(chain);

    // Path 3 — serve from disk: open the store, assemble trusted,
    // decode blocks on demand through the LRU.
    let started = Instant::now();
    let (chain, report) =
        lvq_store::open_chain(&store_dir, StoreConfig::default()).expect("well-formed store");
    let load = started.elapsed();
    assert!(report.is_clean(), "fresh store must open clean: {report:?}");
    let first_query = verify_probes(&chain, &probes, &truth);
    let store = PathCost {
        load,
        first_query,
        resident_bytes: chain.source().resident_bytes(),
    };
    drop(chain);

    let _ = std::fs::remove_file(&file_path);
    let _ = std::fs::remove_dir_all(&store_dir);

    Coldstart {
        blocks,
        file_bytes,
        store_bytes,
        store_segments,
        replay,
        trusted,
        store,
        verified_queries: 3 * probes.len() as u64,
    }
}

impl std::fmt::Display for Coldstart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Cold start — LVQ, {} blocks; chain file {}, store {} in {} segments",
            self.blocks,
            bytes(self.file_bytes),
            bytes(self.store_bytes),
            self.store_segments
        )?;
        let mut table = Table::new(&[
            "Serving path",
            "Load",
            "First verified query",
            "Resident block bytes",
        ]);
        for (label, cost) in [
            ("file (replay)", &self.replay),
            ("file (trusted)", &self.trusted),
            ("store (disk)", &self.store),
        ] {
            table.row(vec![
                label.to_string(),
                format!("{:.1?}", cost.load),
                format!("{:.1?}", cost.time_to_first_verified()),
                bytes(cost.resident_bytes),
            ]);
        }
        writeln!(f, "{table}")?;
        write!(
            f,
            "({} probe queries verified, 0 failures; resident bytes measured after all probes)",
            self.verified_queries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_serving_starts_faster_and_holds_less() {
        let result = run(Scale::Small, 5);
        // The acceptance bar: serve-from-disk reaches its first
        // verified answer before the full load-and-replay path, and
        // the LRU holds strictly less than the whole chain.
        assert!(
            result.store.time_to_first_verified() < result.replay.time_to_first_verified(),
            "store {:?} vs replay {:?}",
            result.store.time_to_first_verified(),
            result.replay.time_to_first_verified()
        );
        assert!(
            result.store.resident_bytes < result.replay.resident_bytes,
            "store {} vs replay {}",
            result.store.resident_bytes,
            result.replay.resident_bytes
        );
        // run() itself asserts every verification; reaching here means
        // zero failures across all three paths.
        assert_eq!(result.verified_queries, 18);
    }
}
