//! Extra experiment: readiness serving under load (`repro pool`).
//!
//! The [`lvq_node::NodeServer`] runs one readiness event loop owning
//! every connection and a bounded pool of proof workers behind a
//! dispatch queue. This experiment measures four things:
//!
//! 1. **Pool sizing** — a sweep of the worker count against a fixed
//!    fan-out of [`CLIENTS`] concurrent light clients: aggregate
//!    verified queries per second (best of [`REPS`] repetitions) plus
//!    the server's own latency digest and queue pressure;
//! 2. **C10K** — the event loop holding the scale's target of
//!    concurrently *open* connections ([`Scale::Small`]: 512,
//!    [`Scale::Paper`]: 10,000+) while still serving verified sessions
//!    through the standing crowd, gated on `RLIMIT_NOFILE` (both
//!    socket ends live in this one process);
//! 3. **Open-loop load** — a seeded Poisson arrival process over one
//!    pipelined v2 connection at several fractions of the measured
//!    capacity; latency is measured from each request's *scheduled*
//!    arrival, so queueing delay (and the harness falling behind)
//!    shows up in the percentiles instead of being absorbed, the way
//!    closed-loop clients absorb it;
//! 4. **Head-of-line isolation** — a deliberately slow proof pinned on
//!    one connection must not inflate the latency of queries on other
//!    connections, because proofs run on the worker pool while the
//!    event loop keeps every other socket moving.
//!
//! Phases 1, 2 and 4 verify every response against headers and ground
//! truth; phase 3 only decodes (client-side verification on the
//! measuring thread would distort the latency it is measuring).

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lvq_chain::Address;
use lvq_codec::{decode_exact, Encodable};
use lvq_core::{Scheme, SchemeConfig};
use lvq_node::frame::{read_frame, write_frame, MAX_FRAME_LEN};
use lvq_node::{
    envelope, FullNode, Handled, HelloInfo, LightNode, Message, NodeServer, QuerySpec, ServeNode,
    ServerConfig, ServerStats, TcpTransport,
};
use rand::{rngs::StdRng, RngCore, SeedableRng};

use crate::report::Table;
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// Concurrent client threads at every pool width.
pub const CLIENTS: u32 = 16;

/// Pool widths swept, in order.
pub const WIDTHS: [usize; 4] = [1, 2, 4, 16];

/// Repetitions per width; the reported row is the fastest one.
const REPS: u32 = 3;

/// Rounds over the six probe addresses per client and repetition.
const ROUNDS: u32 = 2;

/// Offered load as fractions of the measured closed-loop capacity.
const LOAD_FRACTIONS: [f64; 3] = [0.25, 0.5, 0.8];

/// How long the deliberately slow proof stalls its worker — long
/// enough for several ordinary verified queries to complete while it
/// is in flight.
const SLOW_STALL: Duration = Duration::from_millis(800);

/// Fewest timed queries either isolation run may produce for its p95
/// to mean anything.
const MIN_FAST_SAMPLES: usize = 4;

/// The address whose queries the adversarially slow server stalls on.
const SLOW_MARKER: &str = "1DeliberatelySlow";

/// One row of the sweep: a pool width and what it measured.
#[derive(Debug, Clone)]
pub struct PoolPoint {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Aggregate verified queries per second (best of [`REPS`] reps).
    pub qps: f64,
    /// Wall time of the best repetition.
    pub time: Duration,
    /// The server's accounting for the best repetition.
    pub server: ServerStats,
}

/// What the C10K phase held open and served.
#[derive(Debug, Clone)]
pub struct OpenConnections {
    /// Connections the scale asked for.
    pub target: u64,
    /// Connections actually opened — less than `target` only when
    /// `RLIMIT_NOFILE` would not stretch to both socket ends.
    pub opened: u64,
    /// The soft `RLIMIT_NOFILE` after attempting to raise it.
    pub fd_limit: u64,
    /// Verified queries served while every connection was held open.
    pub served_during: u32,
    /// The server's accounting over the whole phase.
    pub server: ServerStats,
}

/// One open-loop operating point: offered arrival rate vs observed
/// latency percentiles (measured from scheduled arrival).
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered arrival rate (Poisson mean), requests per second.
    pub offered_rps: f64,
    /// Completed requests per second of wall time.
    pub achieved_rps: f64,
    /// Requests issued at this point.
    pub requests: u32,
    /// Client-observed latency percentiles from scheduled arrival.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst request.
    pub max: Duration,
}

/// The head-of-line-blocking check: the same timed query loop run
/// twice against the same server — once idle (control), once with a
/// deliberately slow proof pinned on another connection — so the
/// contended p95 has a baseline that already includes each probe's
/// own proof cost.
#[derive(Debug, Clone)]
pub struct Isolation {
    /// How long the adversarial server stalled the slow proof.
    pub stall: Duration,
    /// What the slow connection observed end to end.
    pub slow_observed: Duration,
    /// p95 of verified queries with nothing else in flight.
    pub fast_p95_control: Duration,
    /// p95 of the same queries while the slow proof was in flight.
    pub fast_p95: Duration,
    /// Timed queries in the control run.
    pub control_samples: u32,
    /// Timed queries completed during the stall window.
    pub contended_samples: u32,
}

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Pool {
    /// Client threads at every width.
    pub clients: u32,
    /// One measurement per entry of [`WIDTHS`], in order.
    pub points: Vec<PoolPoint>,
    /// The C10K open-connection phase.
    pub c10k: OpenConnections,
    /// One entry per [`LOAD_FRACTIONS`] operating point, in order.
    pub open_loop: Vec<LoadPoint>,
    /// The head-of-line isolation phase.
    pub isolation: Isolation,
}

impl Pool {
    /// The measured point for a given pool width.
    ///
    /// # Panics
    ///
    /// Panics if `workers` was not part of the sweep.
    pub fn at(&self, workers: usize) -> &PoolPoint {
        self.points
            .iter()
            .find(|p| p.workers == workers)
            .expect("width was swept")
    }
}

/// One client session: connect, sync headers, then `rounds` rounds of
/// verified queries over all probe addresses, checked against ground
/// truth. Returns the number of queries issued.
fn client_session(
    addr: SocketAddr,
    config: SchemeConfig,
    addresses: &[Address],
    truth: &[usize],
    rounds: u32,
) -> u32 {
    let mut transport = TcpTransport::connect(addr).expect("server is listening");
    let mut light = LightNode::sync_from(&mut transport, config).expect("honest server");
    let mut queried = 0;
    for _ in 0..rounds {
        for (address, expected) in addresses.iter().zip(truth) {
            let history = light
                .run(&QuerySpec::address(address.clone()), &mut transport)
                .expect("honest response")
                .into_single();
            assert_eq!(
                history.transactions.len(),
                *expected,
                "verified history must match ground truth"
            );
            queried += 1;
        }
    }
    queried
}

/// One repetition at one pool width: bind a fresh server over the
/// shared full node, fan out [`CLIENTS`] sessions, shut down, return
/// (queries, wall time, stats).
fn repetition(
    full: &Arc<FullNode>,
    config: SchemeConfig,
    addresses: &[Address],
    truth: &[usize],
    workers: usize,
) -> (u32, Duration, ServerStats) {
    // Deep enough that every request waits for a worker instead of
    // being shed — the sweep measures throughput, not shedding.
    let server_config = ServerConfig::default()
        .with_workers(workers)
        .with_accept_queue(CLIENTS as usize * 2);
    let server =
        NodeServer::bind(Arc::clone(full), "127.0.0.1:0", server_config).expect("loopback bind");
    let addr = server.local_addr();

    let started = Instant::now();
    let queried: u32 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| scope.spawn(|| client_session(addr, config, addresses, truth, ROUNDS)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    let time = started.elapsed();
    (queried, time, server.shutdown())
}

/// Polls `cond` until it holds or `limit` elapses.
fn wait_for(what: &str, limit: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + limit;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Phase 2: hold the scale's target of open connections on one event
/// loop, then serve verified sessions through the standing crowd.
fn c10k_phase(
    full: &Arc<FullNode>,
    scale: Scale,
    config: SchemeConfig,
    addresses: &[Address],
    truth: &[usize],
) -> OpenConnections {
    let target: u64 = match scale {
        Scale::Small => 512,
        Scale::Paper => 10_000,
    };
    // Both ends of every connection are fds in this process, plus the
    // serving sessions, the listener and whatever the harness has open.
    let fd_limit = mio::rlimit::raise_nofile(target * 2 + 512)
        .or_else(|_| mio::rlimit::nofile().map(|(soft, _)| soft))
        .unwrap_or(1024);
    let opened = target.min(fd_limit.saturating_sub(256) / 2);

    let server = NodeServer::bind(Arc::clone(full), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");
    let addr = server.local_addr();

    let mut held: Vec<TcpStream> = Vec::with_capacity(opened as usize);
    for i in 0..opened {
        held.push(TcpStream::connect(addr).expect("open connection"));
        // Pace the dial so the kernel accept backlog (far smaller than
        // the target) never overflows.
        if i % 128 == 127 {
            wait_for(
                "the event loop to accept the batch",
                Duration::from_secs(10),
                || server.stats().connections > i,
            );
        }
    }
    wait_for(
        "every connection to be accepted",
        Duration::from_secs(30),
        || server.stats().connections_open >= opened,
    );

    // The crowd is idle, not dead weight: full verified sessions still
    // go through while every connection stays open.
    let mut served_during = 0;
    for _ in 0..4 {
        served_during += client_session(addr, config, addresses, truth, 1);
    }
    let open_while_serving = server.stats().connections_open;
    assert!(
        open_while_serving >= opened,
        "held connections fell to {open_while_serving} of {opened}"
    );

    drop(held);
    let stats = server.shutdown();
    OpenConnections {
        target,
        opened,
        fd_limit,
        served_during,
        server: stats,
    }
}

/// A unit-mean exponential draw (Poisson inter-arrival shape).
fn exp_draw(rng: &mut StdRng) -> f64 {
    // 53 uniform bits in (0, 1]; -ln(u) is Exp(1).
    let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    -u.ln()
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let index = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[index]
}

/// Phase 3, one operating point: fire `n` pipelined queries at a
/// seeded Poisson `offered_rps` over one v2 connection and collect the
/// latency from each request's *scheduled* arrival to its response.
fn open_loop_point(
    addr: SocketAddr,
    probe: &Address,
    offered_rps: f64,
    n: u32,
    seed: u64,
) -> LoadPoint {
    let mut stream = TcpStream::connect(addr).expect("server is listening");

    // Handshake proposing a window wide enough that the server never
    // sheds for depth — open-loop means arrivals do not wait.
    let hello = envelope::encode_v2(
        &Message::Hello(HelloInfo {
            max_in_flight: n,
            features: 0,
        }),
        0,
    );
    write_frame(&mut stream, &hello).expect("handshake write");
    let ack = read_frame(&mut stream, MAX_FRAME_LEN).expect("handshake read");
    let (ack_id, ack_v1) = envelope::unwrap_v2(&ack).expect("v2 ack");
    assert_eq!(ack_id, 0);
    let granted = match decode_exact::<Message>(&ack_v1).expect("decodable ack") {
        Message::HelloAck(info) => info.max_in_flight,
        other => panic!("expected HelloAck, got {other:?}"),
    };
    assert!(granted >= n, "server granted {granted} of {n} in flight");

    let request = Message::QueryRequest {
        address: probe.clone(),
        range: None,
    }
    .encode();

    // The arrival schedule, fixed up front so the writer and the
    // latency accounting agree on when each request *should* exist.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    let schedule: Vec<Duration> = (0..n)
        .map(|_| {
            at += exp_draw(&mut rng) / offered_rps;
            Duration::from_secs_f64(at)
        })
        .collect();

    let start = Instant::now();
    let writer_schedule = schedule.clone();
    let mut write_half = stream.try_clone().expect("clone socket");
    let writer = std::thread::spawn(move || {
        for (i, due) in writer_schedule.iter().enumerate() {
            if let Some(wait) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            let wire = envelope::wrap_v2(&request, (i + 1) as u64);
            let mut frame = Vec::with_capacity(4 + wire.len());
            frame.extend_from_slice(&u32::try_from(wire.len()).unwrap().to_le_bytes());
            frame.extend_from_slice(&wire);
            write_half.write_all(&frame).expect("submit request");
        }
    });

    let mut latencies: Vec<Duration> = Vec::with_capacity(n as usize);
    let mut outstanding: HashMap<u64, Duration> = (0..n)
        .map(|i| ((i + 1) as u64, schedule[i as usize]))
        .collect();
    for _ in 0..n {
        let reply = read_frame(&mut stream, MAX_FRAME_LEN).expect("response");
        let done = start.elapsed();
        let (id, v1) = envelope::unwrap_v2(&reply).expect("v2 response");
        let scheduled = outstanding.remove(&id).expect("known id");
        match decode_exact::<Message>(&v1).expect("decodable response") {
            Message::QueryResponse(_) => {}
            other => panic!("expected a proof, got {other:?}"),
        }
        latencies.push(done.saturating_sub(scheduled));
    }
    let wall = start.elapsed();
    writer.join().expect("writer thread");

    latencies.sort_unstable();
    LoadPoint {
        offered_rps,
        achieved_rps: f64::from(n) / wall.as_secs_f64(),
        requests: n,
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        max: *latencies.last().expect("nonempty"),
    }
}

/// Phase 3: sweep the offered load over one server.
fn open_loop_phase(
    full: &Arc<FullNode>,
    scale: Scale,
    capacity_qps: f64,
    probe: &Address,
    seed: u64,
) -> Vec<LoadPoint> {
    let n: u32 = match scale {
        Scale::Small => 240,
        Scale::Paper => 800,
    };
    let server_config = ServerConfig::default()
        .with_accept_queue(n as usize + 64)
        .with_max_in_flight(n);
    let server =
        NodeServer::bind(Arc::clone(full), "127.0.0.1:0", server_config).expect("loopback bind");
    let addr = server.local_addr();

    let points: Vec<LoadPoint> = LOAD_FRACTIONS
        .iter()
        .enumerate()
        .map(|(i, fraction)| {
            open_loop_point(addr, probe, capacity_qps * fraction, n, seed ^ (i as u64))
        })
        .collect();

    let stats = server.shutdown();
    assert_eq!(stats.errors, 0, "open-loop phase must be clean");
    assert_eq!(stats.busy, 0, "window was sized to avoid shedding");
    points
}

/// A [`FullNode`] that stalls any request mentioning [`SLOW_MARKER`] —
/// the adversarially slow prover of the head-of-line check.
struct SlowProver {
    inner: Arc<FullNode>,
    stall: Duration,
}

impl ServeNode for SlowProver {
    fn handle_classified(&self, request: &[u8]) -> Handled {
        let marker = SLOW_MARKER.as_bytes();
        if request.windows(marker.len()).any(|w| w == marker) {
            std::thread::sleep(self.stall);
        }
        self.inner.handle_classified(request)
    }
}

/// Runs verified queries round-robin over the probes for `window` wall
/// time, returning each query's latency.
fn timed_queries(
    light: &mut LightNode,
    transport: &mut TcpTransport,
    addresses: &[Address],
    truth: &[usize],
    window: Duration,
) -> Vec<Duration> {
    let phase = Instant::now();
    let mut latencies = Vec::new();
    let mut i = 0usize;
    while phase.elapsed() < window {
        let k = i % addresses.len();
        let started = Instant::now();
        let history = light
            .run(&QuerySpec::address(addresses[k].clone()), transport)
            .expect("honest response")
            .into_single();
        latencies.push(started.elapsed());
        assert_eq!(history.transactions.len(), truth[k]);
        i += 1;
    }
    latencies
}

/// Phase 4: a deliberately slow proof on one connection while other
/// connections keep querying; their p95 must match a control run of
/// the same loop against the same (idle) server, not the stall.
fn isolation_phase(
    full: &Arc<FullNode>,
    config: SchemeConfig,
    addresses: &[Address],
    truth: &[usize],
) -> Isolation {
    let node = Arc::new(SlowProver {
        inner: Arc::clone(full),
        stall: SLOW_STALL,
    });
    // Two workers: one gets pinned by the slow proof, the other keeps
    // serving. The point is that *connections* never pin the loop.
    let server_config = ServerConfig::default().with_workers(2);
    let server = NodeServer::bind(node, "127.0.0.1:0", server_config).expect("loopback bind");
    let addr = server.local_addr();

    let mut fast_transport = TcpTransport::connect(addr).expect("server is listening");
    let mut light = LightNode::sync_from(&mut fast_transport, config).expect("honest server");

    // Control: the same timed loop with nothing else in flight, so
    // each probe's own proof cost is priced into the baseline.
    let mut control = timed_queries(
        &mut light,
        &mut fast_transport,
        addresses,
        truth,
        SLOW_STALL,
    );

    // The slow connection: submit and do not read yet.
    let mut slow = TcpStream::connect(addr).expect("server is listening");
    let hello = envelope::encode_v2(
        &Message::Hello(HelloInfo {
            max_in_flight: 2,
            features: 0,
        }),
        0,
    );
    write_frame(&mut slow, &hello).expect("handshake write");
    let ack = read_frame(&mut slow, MAX_FRAME_LEN).expect("handshake read");
    assert!(matches!(envelope::unwrap_v2(&ack), Some((0, _))));
    let slow_request = envelope::wrap_v2(
        &Message::QueryRequest {
            address: Address::new(SLOW_MARKER),
            range: None,
        }
        .encode(),
        1,
    );
    let slow_started = Instant::now();
    write_frame(&mut slow, &slow_request).expect("submit slow query");

    // Contended: the identical loop for the stall window, entirely
    // overlapped with the slow proof.
    let mut contended = timed_queries(
        &mut light,
        &mut fast_transport,
        addresses,
        truth,
        SLOW_STALL,
    );

    // Now collect the slow response and confirm it really stalled.
    let reply = read_frame(&mut slow, MAX_FRAME_LEN).expect("slow response");
    let slow_observed = slow_started.elapsed();
    let (id, v1) = envelope::unwrap_v2(&reply).expect("v2 response");
    assert_eq!(id, 1);
    assert!(matches!(
        decode_exact::<Message>(&v1).expect("decodable response"),
        Message::QueryResponse(_)
    ));
    assert!(
        slow_observed >= SLOW_STALL,
        "the slow proof returned in {slow_observed:?}, before its {SLOW_STALL:?} stall"
    );

    drop(slow);
    drop(fast_transport);
    let stats = server.shutdown();
    assert_eq!(stats.errors, 0, "isolation phase must be clean");
    assert!(
        control.len() >= MIN_FAST_SAMPLES && contended.len() >= MIN_FAST_SAMPLES,
        "too few timed queries per run ({} control, {} contended) for a p95",
        control.len(),
        contended.len()
    );

    control.sort_unstable();
    contended.sort_unstable();
    Isolation {
        stall: SLOW_STALL,
        slow_observed,
        fast_p95_control: percentile(&control, 0.95),
        fast_p95: percentile(&contended, 0.95),
        control_samples: control.len() as u32,
        contended_samples: contended.len() as u32,
    }
}

/// Runs all four phases under full LVQ at the Fig. 12 configuration.
///
/// # Panics
///
/// Panics if widening the pool from one to four workers *loses*
/// throughput (beyond a 10 % tolerance for machine noise); if the C10K
/// phase drops connections or serves with errors; or if the slow proof
/// of the isolation phase inflates other connections' p95 well past
/// the idle-server control run of the same query loop.
pub fn run(scale: Scale, seed: u64) -> Pool {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let config = spec.config();
    let workload = build_workload(spec);
    let addresses: Vec<Address> = built_probes(&workload)
        .into_iter()
        .map(|(_, address)| address)
        .collect();
    let truth: Vec<usize> = addresses
        .iter()
        .map(|a| workload.chain.history_of(a).len())
        .collect();
    let full = Arc::new(FullNode::new(workload.chain).expect("known scheme"));

    // Warm the shared caches so every width measures the steady state.
    {
        let warm = NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", ServerConfig::default())
            .expect("loopback bind");
        client_session(warm.local_addr(), config, &addresses, &truth, 1);
        warm.shutdown();
    }

    // Phase 1 — pool-width sweep.
    let points: Vec<PoolPoint> = WIDTHS
        .iter()
        .map(|&workers| {
            let mut best: Option<PoolPoint> = None;
            for _ in 0..REPS {
                let (queried, time, server) =
                    repetition(&full, config, &addresses, &truth, workers);
                assert_eq!(server.errors, 0, "clean run at {workers} workers");
                assert_eq!(u64::from(queried), server.by_kind.queries);
                let qps = f64::from(queried) / time.as_secs_f64();
                if best.as_ref().is_none_or(|b| qps > b.qps) {
                    best = Some(PoolPoint {
                        workers,
                        qps,
                        time,
                        server,
                    });
                }
            }
            best.expect("at least one repetition")
        })
        .collect();
    let capacity = points.iter().map(|p| p.qps).fold(0.0, f64::max);

    // Phase 2 — C10K open connections.
    let c10k = c10k_phase(&full, scale, config, &addresses, &truth);
    assert_eq!(c10k.server.errors, 0, "C10K phase must be clean");

    // Phase 3 — open-loop arrival-rate sweep.
    let open_loop = open_loop_phase(&full, scale, capacity, &addresses[0], seed);

    // Phase 4 — head-of-line isolation.
    let isolation = isolation_phase(&full, config, &addresses, &truth);
    // A readiness loop pinned by the slow proof would add its full
    // stall to every contended query; genuine isolation keeps the
    // contended p95 within noise of the idle-server control.
    assert!(
        isolation.fast_p95 <= isolation.fast_p95_control * 2 + isolation.stall / 8,
        "slow proof leaked into other connections: contended p95 {:?} vs control p95 {:?} \
         (stall {:?})",
        isolation.fast_p95,
        isolation.fast_p95_control,
        isolation.stall
    );

    let pool = Pool {
        clients: CLIENTS,
        points,
        c10k,
        open_loop,
        isolation,
    };
    let (one, four) = (pool.at(1).qps, pool.at(4).qps);
    assert!(
        four >= one * 0.9,
        "pool of 4 lost throughput against 1 worker: {four:.0} vs {one:.0} qps"
    );
    pool
}

fn fmt_us(d: Duration) -> String {
    format!("{}", d.as_micros())
}

impl std::fmt::Display for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Worker-pool sweep — LVQ, {} concurrent clients, six Table III probes, \
             {ROUNDS} rounds per client, best of {REPS} reps",
            self.clients
        )?;
        let mut table = Table::new(&[
            "Workers",
            "Throughput",
            "p50/p95/p99 (us)",
            "Max (us)",
            "Queue high-water",
            "Shed busy",
        ]);
        for point in &self.points {
            let l = point.server.latency;
            table.row(vec![
                point.workers.to_string(),
                format!("{:.0} queries/s", point.qps),
                format!("{}/{}/{}", l.p50_us, l.p95_us, l.p99_us),
                l.max_us.to_string(),
                point.server.queue_highwater.to_string(),
                point.server.busy.to_string(),
            ]);
        }
        write!(f, "{table}")?;

        writeln!(
            f,
            "\nC10K — one readiness loop holding {} open connections \
             (target {}, RLIMIT_NOFILE {}), {} verified queries served through \
             the crowd, {} errors",
            self.c10k.opened,
            self.c10k.target,
            self.c10k.fd_limit,
            self.c10k.served_during,
            self.c10k.server.errors
        )?;

        writeln!(
            f,
            "\nOpen-loop load — Poisson arrivals over one pipelined v2 connection, \
             latency from scheduled arrival"
        )?;
        let mut table = Table::new(&[
            "Offered (rps)",
            "Achieved (rps)",
            "Requests",
            "p50/p95/p99 (us)",
            "Max (us)",
        ]);
        for point in &self.open_loop {
            table.row(vec![
                format!("{:.0}", point.offered_rps),
                format!("{:.0}", point.achieved_rps),
                point.requests.to_string(),
                format!(
                    "{}/{}/{}",
                    fmt_us(point.p50),
                    fmt_us(point.p95),
                    fmt_us(point.p99)
                ),
                fmt_us(point.max),
            ]);
        }
        write!(f, "{table}")?;

        writeln!(
            f,
            "\nHead-of-line isolation — a {:?} stalled proof on one connection; \
             other connections' p95 {:?} contended vs {:?} idle control \
             ({}/{} samples; slow connection observed {:?})",
            self.isolation.stall,
            self.isolation.fast_p95,
            self.isolation.fast_p95_control,
            self.isolation.contended_samples,
            self.isolation.control_samples,
            self.isolation.slow_observed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_sweep_holds_throughput_and_accounts_for_queueing() {
        let result = run(Scale::Small, 11);
        assert_eq!(result.points.len(), WIDTHS.len());
        for point in &result.points {
            // Every session syncs once and queries 6 addresses for
            // ROUNDS rounds; the server's books must agree.
            let expected = u64::from(CLIENTS) * u64::from(ROUNDS) * 6;
            assert_eq!(point.server.by_kind.queries, expected);
            assert_eq!(point.server.workers, point.workers as u64);
            assert_eq!(point.server.connections, u64::from(CLIENTS));
            assert_eq!(point.server.busy, 0, "queue was sized to avoid shedding");
            assert!(point.server.latency.count > 0);
            assert!(point.server.latency.p50_us <= point.server.latency.p95_us);
            assert!(point.server.latency.p99_us <= point.server.latency.max_us);
        }
        // run() already asserts the 1 -> 4 throughput direction.

        // C10K: everything the fd budget allowed was held open at
        // once, with clean books. (CI raises RLIMIT_NOFILE far above
        // the small-scale target, so this is normally all 512.)
        let c10k = &result.c10k;
        assert_eq!(c10k.target, 512);
        if c10k.fd_limit >= c10k.target * 2 + 256 {
            assert_eq!(c10k.opened, c10k.target);
        }
        assert!(c10k.opened >= 64, "fd budget too small to test anything");
        assert_eq!(c10k.server.errors, 0);
        assert_eq!(c10k.server.busy, 0);
        assert!(c10k.served_during > 0);
        assert!(c10k.server.connections >= c10k.opened);

        // Open loop: every operating point completed all requests with
        // sane percentile ordering.
        assert_eq!(result.open_loop.len(), LOAD_FRACTIONS.len());
        for point in &result.open_loop {
            assert_eq!(point.requests, 240);
            assert!(point.p50 <= point.p95);
            assert!(point.p95 <= point.p99);
            assert!(point.p99 <= point.max);
            assert!(point.achieved_rps > 0.0);
        }

        // Isolation: run() asserts the contended p95 stays within
        // noise of the idle control; pin the slow side and the sample
        // floors too.
        assert!(result.isolation.slow_observed >= result.isolation.stall);
        assert!(result.isolation.control_samples >= MIN_FAST_SAMPLES as u32);
        assert!(result.isolation.contended_samples >= MIN_FAST_SAMPLES as u32);
    }
}
