//! Extra experiment: worker-pool sizing (`repro pool`).
//!
//! The [`lvq_node::NodeServer`] serves connections from a bounded pool
//! of worker threads behind an accept queue. This experiment sweeps the
//! pool width against a fixed fan-out of [`CLIENTS`] concurrent light
//! clients and reports, per width:
//!
//! 1. **Aggregate throughput** — verified queries per second across all
//!    clients (best of [`REPS`] repetitions, so a scheduler hiccup in
//!    one run does not distort the sweep);
//! 2. **Request latency** — the server's own p50/p95/p99/max digest,
//!    measured from frame-read completion to response-ready;
//! 3. **Queue pressure** — the accept queue's high-water mark and how
//!    many connections were shed with [`lvq_node::Message::Busy`].
//!
//! Every response is verified by the light node against headers only
//! and checked against the chain's ground truth, so the sweep doubles
//! as a stress test of the pool's frame handling under contention.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lvq_chain::Address;
use lvq_core::{Scheme, SchemeConfig};
use lvq_node::{
    FullNode, LightNode, NodeServer, QuerySpec, ServerConfig, ServerStats, TcpTransport,
};

use crate::report::Table;
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// Concurrent client threads at every pool width.
pub const CLIENTS: u32 = 16;

/// Pool widths swept, in order.
pub const WIDTHS: [usize; 4] = [1, 2, 4, 16];

/// Repetitions per width; the reported row is the fastest one.
const REPS: u32 = 3;

/// Rounds over the six probe addresses per client and repetition.
const ROUNDS: u32 = 2;

/// One row of the sweep: a pool width and what it measured.
#[derive(Debug, Clone)]
pub struct PoolPoint {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Aggregate verified queries per second (best of [`REPS`] reps).
    pub qps: f64,
    /// Wall time of the best repetition.
    pub time: Duration,
    /// The server's accounting for the best repetition.
    pub server: ServerStats,
}

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Pool {
    /// Client threads at every width.
    pub clients: u32,
    /// One measurement per entry of [`WIDTHS`], in order.
    pub points: Vec<PoolPoint>,
}

impl Pool {
    /// The measured point for a given pool width.
    ///
    /// # Panics
    ///
    /// Panics if `workers` was not part of the sweep.
    pub fn at(&self, workers: usize) -> &PoolPoint {
        self.points
            .iter()
            .find(|p| p.workers == workers)
            .expect("width was swept")
    }
}

/// One client session: connect, sync headers, then `rounds` rounds of
/// verified queries over all probe addresses, checked against ground
/// truth. Returns the number of queries issued.
fn client_session(
    addr: SocketAddr,
    config: SchemeConfig,
    addresses: &[Address],
    truth: &[usize],
    rounds: u32,
) -> u32 {
    let mut transport = TcpTransport::connect(addr).expect("server is listening");
    let mut light = LightNode::sync_from(&mut transport, config).expect("honest server");
    let mut queried = 0;
    for _ in 0..rounds {
        for (address, expected) in addresses.iter().zip(truth) {
            let history = light
                .run(&QuerySpec::address(address.clone()), &mut transport)
                .expect("honest response")
                .into_single();
            assert_eq!(
                history.transactions.len(),
                *expected,
                "verified history must match ground truth"
            );
            queried += 1;
        }
    }
    queried
}

/// One repetition at one pool width: bind a fresh server over the
/// shared full node, fan out [`CLIENTS`] sessions, shut down, return
/// (queries, wall time, stats).
fn repetition(
    full: &Arc<FullNode>,
    config: SchemeConfig,
    addresses: &[Address],
    truth: &[usize],
    workers: usize,
) -> (u32, Duration, ServerStats) {
    let server_config = ServerConfig {
        workers,
        // Deep enough that all sessions wait for a worker instead of
        // being shed — the sweep measures throughput, not shedding.
        accept_queue: CLIENTS as usize * 2,
        ..ServerConfig::default()
    };
    let server =
        NodeServer::bind(Arc::clone(full), "127.0.0.1:0", server_config).expect("loopback bind");
    let addr = server.local_addr();

    let started = Instant::now();
    let queried: u32 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| scope.spawn(|| client_session(addr, config, addresses, truth, ROUNDS)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    let time = started.elapsed();
    (queried, time, server.shutdown())
}

/// Runs the sweep under full LVQ at the Fig. 12 configuration.
///
/// # Panics
///
/// Panics if widening the pool from one to four workers *loses*
/// throughput (beyond a 10 % tolerance for machine noise) — on any
/// machine more workers may merely tie one (a single core serialises
/// the CPU-bound proving anyway), but they must never hurt.
pub fn run(scale: Scale, seed: u64) -> Pool {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let config = spec.config();
    let workload = build_workload(spec);
    let addresses: Vec<Address> = built_probes(&workload)
        .into_iter()
        .map(|(_, address)| address)
        .collect();
    let truth: Vec<usize> = addresses
        .iter()
        .map(|a| workload.chain.history_of(a).len())
        .collect();
    let full = Arc::new(FullNode::new(workload.chain).expect("known scheme"));

    // Warm the shared caches so every width measures the steady state.
    {
        let warm = NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", ServerConfig::default())
            .expect("loopback bind");
        client_session(warm.local_addr(), config, &addresses, &truth, 1);
        warm.shutdown();
    }

    let points = WIDTHS
        .iter()
        .map(|&workers| {
            let mut best: Option<PoolPoint> = None;
            for _ in 0..REPS {
                let (queried, time, server) =
                    repetition(&full, config, &addresses, &truth, workers);
                assert_eq!(server.errors, 0, "clean run at {workers} workers");
                assert_eq!(u64::from(queried), server.by_kind.queries);
                let qps = f64::from(queried) / time.as_secs_f64();
                if best.as_ref().is_none_or(|b| qps > b.qps) {
                    best = Some(PoolPoint {
                        workers,
                        qps,
                        time,
                        server,
                    });
                }
            }
            best.expect("at least one repetition")
        })
        .collect();

    let pool = Pool {
        clients: CLIENTS,
        points,
    };
    let (one, four) = (pool.at(1).qps, pool.at(4).qps);
    assert!(
        four >= one * 0.9,
        "pool of 4 lost throughput against 1 worker: {four:.0} vs {one:.0} qps"
    );
    pool
}

impl std::fmt::Display for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Worker-pool sweep — LVQ, {} concurrent clients, six Table III probes, \
             {ROUNDS} rounds per client, best of {REPS} reps",
            self.clients
        )?;
        let mut table = Table::new(&[
            "Workers",
            "Throughput",
            "p50/p95/p99 (us)",
            "Max (us)",
            "Queue high-water",
            "Shed busy",
        ]);
        for point in &self.points {
            let l = point.server.latency;
            table.row(vec![
                point.workers.to_string(),
                format!("{:.0} queries/s", point.qps),
                format!("{}/{}/{}", l.p50_us, l.p95_us, l.p99_us),
                l.max_us.to_string(),
                point.server.queue_highwater.to_string(),
                point.server.busy.to_string(),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_sweep_holds_throughput_and_accounts_for_queueing() {
        let result = run(Scale::Small, 11);
        assert_eq!(result.points.len(), WIDTHS.len());
        for point in &result.points {
            // Every session syncs once and queries 6 addresses for
            // ROUNDS rounds; the server's books must agree.
            let expected = u64::from(CLIENTS) * u64::from(ROUNDS) * 6;
            assert_eq!(point.server.by_kind.queries, expected);
            assert_eq!(point.server.workers, point.workers as u64);
            assert_eq!(point.server.connections, u64::from(CLIENTS));
            assert_eq!(point.server.busy, 0, "queue was sized to avoid shedding");
            assert!(point.server.latency.count > 0);
            assert!(point.server.latency.p50_us <= point.server.latency.p95_us);
            assert!(point.server.latency.p99_us <= point.server.latency.max_us);
        }
        // 16 clients against one worker serialise behind the accept
        // queue, so the high-water mark must show real queueing.
        assert!(
            result.at(1).server.queue_highwater >= 1,
            "single worker never saw a queued connection"
        );
        // run() already asserts the 1 -> 4 throughput direction.
    }
}
