//! Extra experiment: kill-and-restart crash loop (`repro crashloop`).
//!
//! The crash-point sweep proves recovery against *simulated* crashes —
//! frozen filesystem images produced by the injection harness. This
//! experiment closes the loop with the real thing: a genuinely
//! separate serving process is SIGKILLed mid-ingest, over and over,
//! while a chaos-wrapped client keeps querying it with retries. Three
//! claims:
//!
//! 1. **zero accepted lies** — every answer a client run verifies
//!    equals the ground-truth chain truncated at the client's pinned
//!    tip, across every kill cycle; a kill can cost a retry, never a
//!    wrong verified history;
//! 2. **zero corrupt reopens** — after every SIGKILL the store opens,
//!    any torn tail is repaired at open (and reported), and a full
//!    checksum re-verification of every stored block passes; the
//!    persisted height never regresses;
//! 3. **bounded recovery** — every restarted server is back up
//!    (bound, recovered, serving) within the deadline, and the chain
//!    still converges on exactly the ground-truth tip once the feed is
//!    allowed to finish.
//!
//! The child process is this same `repro` binary re-invoked as
//! `repro crashloop-child …` (see [`child_main`]); the parent owns the
//! ground truth, the kill schedule, and every assertion.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lvq_chain::{Address, Block};
use lvq_core::Scheme;
use lvq_crypto::Hash256;
use lvq_node::{
    BlockFeed, FaultPlan, FaultyTransport, FeedError, FullNode, IngestConfig, LightNode, LiveNode,
    MemoryFeed, NodeServer, QuerySpec, ServerConfig, SupervisorConfig, TcpTransport, TipIngester,
};
use lvq_store::{BlockStore, StoreConfig};

use crate::report::Table;
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// Kill/restart cycles the serving process is dragged through.
const KILL_CYCLES: usize = 10;

/// Composite fault rate the client's own transport is mistreated with
/// on top of the real process kills.
const CLIENT_FAULT_RATE: f64 = 0.05;

/// How long the parent waits for any asynchronous condition (child
/// ready, final catch-up) before declaring recovery unbounded.
const DEADLINE: Duration = Duration::from_secs(30);

/// Per-fetch throttle inside the child's feed, slowing ingest enough
/// that the kill schedule lands mid-ingest instead of post-catch-up.
const THROTTLE: Duration = Duration::from_millis(8);

/// One kill cycle's measurements.
#[derive(Debug, Clone, Copy)]
pub struct CyclePoint {
    /// Persisted height found by the audit reopen at cycle start.
    pub tip_at_open: u64,
    /// Whether that reopen had to repair anything (torn tail, index
    /// rebuild, …) — expected after a SIGKILL, and always reported.
    pub repaired: bool,
    /// Audit reopen + full checksum re-verification, in microseconds.
    pub reopen_us: u64,
    /// Process spawn to serving (ready file observed), in milliseconds.
    pub recovery_ms: u64,
    /// Client runs that completed and verified inside this cycle.
    pub queries: u64,
    /// Client runs that errored (kill or injected fault) and retried.
    pub retries: u64,
    /// Transactions verified against pinned ground truth this cycle.
    pub verified_txs: u64,
}

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Crashloop {
    /// Ground-truth chain length.
    pub blocks: u64,
    /// Blocks persisted before the first kill cycle.
    pub prefix: u64,
    /// One point per kill cycle.
    pub points: Vec<CyclePoint>,
    /// Reopens that failed or failed re-verification — must be zero.
    pub corrupt_reopens: u64,
    /// Verified answers that deviated from ground truth — must be zero.
    pub accepted_lies: u64,
    /// Cycles whose audit reopen performed a repair.
    pub repaired_reopens: u64,
    /// Kills that landed while ingest was still mid-chain.
    pub mid_ingest_kills: u64,
    /// Worst spawn-to-serving recovery across all cycles.
    pub max_recovery_ms: u64,
    /// Transactions verified by the final full-chain query.
    pub final_verified_txs: u64,
}

/// Ground truth for one probe, truncated at `tip`.
fn truth_at(truth: &[(u64, Hash256)], tip: u64) -> Vec<(u64, Hash256)> {
    truth
        .iter()
        .copied()
        .filter(|(height, _)| *height <= tip)
        .collect()
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// One chaos-wrapped client run: fresh connection, header sync, one
/// pinned batch query over every probe, checked against ground truth.
///
/// Returns `Ok(verified_txs)` or the error that cost a retry (a kill
/// mid-exchange or an injected fault). A *verified* wrong answer does
/// not error — it panics, because it would be an accepted lie.
fn try_client_run(
    addr: std::net::SocketAddr,
    config: lvq_core::SchemeConfig,
    addresses: &[Address],
    truth: &[Vec<(u64, Hash256)>],
    fault_seed: u64,
    lies: &mut u64,
) -> Result<u64, lvq_node::NodeError> {
    let conn = TcpTransport::connect(addr)?;
    let mut transport =
        FaultyTransport::new(conn, FaultPlan::composite(CLIENT_FAULT_RATE), fault_seed);
    let mut light = LightNode::sync_from(&mut transport, config)?;
    let pinned = light.client().tip_height();
    if pinned == 0 {
        return Ok(0);
    }
    let spec = QuerySpec::addresses(addresses.to_vec()).range(1, pinned);
    let run = light.run(&spec, &mut transport)?;
    let mut verified = 0u64;
    for (qi, history) in run.histories.iter().enumerate() {
        let got: Vec<(u64, Hash256)> = history
            .transactions
            .iter()
            .map(|(height, tx)| (*height, tx.txid()))
            .collect();
        if got != truth_at(&truth[qi], pinned) {
            *lies += 1;
            panic!(
                "probe {qi}: a VERIFIED history deviates from ground truth at pinned tip {pinned}"
            );
        }
        verified += got.len() as u64;
    }
    Ok(verified)
}

/// Runs the crash loop. `child_exe` is the binary to re-invoke as the
/// serving child — the `repro` binary itself.
///
/// # Panics
///
/// Panics if any of the three claims in the module docs fails, or if a
/// child never comes up within [`DEADLINE`].
pub fn run(scale: Scale, seed: u64, child_exe: &Path) -> Crashloop {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let workload = build_workload(spec);
    let config = spec.config();
    let addresses: Vec<Address> = built_probes(&workload)
        .into_iter()
        .map(|(_, address)| address)
        .collect();
    let truth: Vec<Vec<(u64, Hash256)>> = addresses
        .iter()
        .map(|a| {
            workload
                .chain
                .history_of(a)
                .into_iter()
                .map(|(height, tx)| (height, tx.txid()))
                .collect()
        })
        .collect();
    let blocks = workload.chain.tip_height();
    let truth_tip = workload.chain.tip_hash();
    let all_blocks: Vec<Block> = (1..=blocks)
        .map(|h| (*workload.chain.block(h).expect("ground-truth block")).clone())
        .collect();
    let params = workload.chain.params();
    drop(workload);

    let dir = std::env::temp_dir().join(format!("lvq-crashloop-{}-{seed}", std::process::id()));
    let ready = dir.with_extension("ready");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&ready);

    // Persist a prefix so even the first cycle serves a nonempty chain.
    let prefix = blocks / 8;
    {
        let store = BlockStore::create(&dir, params, StoreConfig::default()).expect("fresh store");
        for block in &all_blocks[..prefix as usize] {
            store.append(block).expect("persist prefix");
        }
    }

    let mut points = Vec::new();
    // A corrupt reopen aborts the run on the spot, so a returned
    // report can only ever carry zero — the field exists so the
    // summary states the claim explicitly.
    let corrupt_reopens = 0u64;
    let mut accepted_lies = 0u64;
    let mut repaired_reopens = 0u64;
    let mut mid_ingest_kills = 0u64;
    let mut last_tip = prefix;

    for cycle in 0..KILL_CYCLES {
        // ---- Audit reopen: claim 2, measured. ----
        let audit_started = Instant::now();
        let (tip_at_open, repaired) = match BlockStore::open(&dir, StoreConfig::default()) {
            Ok((store, report)) => match store.verify_all() {
                Ok(n) => (n, !report.is_clean()),
                Err(e) => {
                    panic!("cycle {cycle}: reopened store failed re-verification: {e}");
                }
            },
            Err(e) => {
                panic!("cycle {cycle}: store failed to reopen after SIGKILL: {e}");
            }
        };
        let reopen_us = audit_started.elapsed().as_micros() as u64;
        // A kill may lose an unsynced tail, but never a height a
        // previous cycle already re-verified on disk.
        assert!(
            tip_at_open >= last_tip,
            "cycle {cycle}: persisted height regressed from {last_tip} to {tip_at_open}"
        );
        last_tip = tip_at_open;
        if repaired {
            repaired_reopens += 1;
        }
        if tip_at_open < blocks {
            mid_ingest_kills += 1;
        }

        // ---- Restart the serving process: claim 3, measured. ----
        let _ = std::fs::remove_file(&ready);
        let spawn_started = Instant::now();
        let mut child = std::process::Command::new(child_exe)
            .arg("crashloop-child")
            .arg(&dir)
            .arg(&ready)
            .arg(scale_name(scale))
            .arg(seed.to_string())
            .arg(THROTTLE.as_micros().to_string())
            .stdout(std::process::Stdio::null())
            .spawn()
            .expect("spawn crashloop child");
        let addr = loop {
            assert!(
                spawn_started.elapsed() < DEADLINE,
                "cycle {cycle}: child not serving within the recovery deadline"
            );
            if let Ok(text) = std::fs::read_to_string(&ready) {
                if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                    break addr;
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        let recovery_ms = spawn_started.elapsed().as_millis() as u64;

        // ---- Query with retries until the kill lands: claim 1. ----
        let kill_at = Instant::now() + Duration::from_millis(40 + (cycle as u64 * 37) % 110);
        let mut queries = 0u64;
        let mut retries = 0u64;
        let mut verified_txs = 0u64;
        let mut attempt = 0u64;
        while Instant::now() < kill_at {
            let fault_seed = seed ^ ((cycle as u64) << 32) ^ attempt;
            attempt += 1;
            match try_client_run(
                addr,
                config,
                &addresses,
                &truth,
                fault_seed,
                &mut accepted_lies,
            ) {
                Ok(txs) => {
                    queries += 1;
                    verified_txs += txs;
                }
                Err(_) => retries += 1,
            }
        }
        child.kill().expect("SIGKILL the serving child");
        child.wait().expect("reap the serving child");

        points.push(CyclePoint {
            tip_at_open,
            repaired,
            reopen_us,
            recovery_ms,
            queries,
            retries,
            verified_txs,
        });
    }

    // ---- Final convergence: let the feed finish, then verify all. ----
    let (chain, _report) =
        lvq_store::open_chain(&dir, StoreConfig::default()).expect("final reopen");
    let store = Arc::clone(chain.source().store());
    let live = Arc::new(LiveNode::new(FullNode::new(chain).expect("known scheme")));
    let feed = MemoryFeed::new(all_blocks);
    feed.publisher().publish_all();
    let ingester = TipIngester::spawn_supervised(
        Arc::clone(&live),
        Arc::clone(&store),
        move || feed.clone(),
        IngestConfig::new().with_seed(seed),
        SupervisorConfig::default(),
    );
    let catchup_started = Instant::now();
    while live.tip_height() < blocks {
        assert!(
            catchup_started.elapsed() < DEADLINE,
            "final catch-up did not converge within the deadline"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = ingester.stop();
    assert_eq!(
        live.tip_hash(),
        truth_tip,
        "the converged chain's tip hash must equal the ground truth's"
    );
    assert_eq!(store.verify_all().expect("final full verification"), blocks);
    // Release every handle so the store's drop-time index flush runs
    // before the post-convergence reopen audits the directory.
    drop(live);
    drop(store);

    // One last full-chain verified query through the whole serving
    // stack: every probe, every height, against the full ground truth.
    let (chain, report) =
        lvq_store::open_chain(&dir, StoreConfig::default()).expect("post-convergence reopen");
    assert!(
        report.is_clean(),
        "a cleanly stopped store must reopen clean: {report:?}"
    );
    let full = Arc::new(FullNode::new(chain).expect("known scheme"));
    let server = NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");
    let mut transport = TcpTransport::connect(server.local_addr()).expect("server is listening");
    let mut light = LightNode::sync_from(&mut transport, config).expect("final header sync");
    assert_eq!(light.client().tip_height(), blocks);
    let spec = QuerySpec::addresses(addresses.clone()).range(1, blocks);
    let run = light.run(&spec, &mut transport).expect("final full query");
    let mut final_verified_txs = 0u64;
    for (qi, history) in run.histories.iter().enumerate() {
        let got: Vec<(u64, Hash256)> = history
            .transactions
            .iter()
            .map(|(height, tx)| (*height, tx.txid()))
            .collect();
        assert_eq!(got, truth[qi], "final full history deviates for probe {qi}");
        final_verified_txs += got.len() as u64;
    }
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&ready);

    assert_eq!(corrupt_reopens, 0);
    assert_eq!(accepted_lies, 0);
    let max_recovery_ms = points.iter().map(|p| p.recovery_ms).max().unwrap_or(0);

    Crashloop {
        blocks,
        prefix,
        points,
        corrupt_reopens,
        accepted_lies,
        repaired_reopens,
        mid_ingest_kills,
        max_recovery_ms,
        final_verified_txs,
    }
}

/// The child half: open the store, serve it, follow the (throttled)
/// feed under supervision, announce readiness, and run until killed.
///
/// Invoked as `repro crashloop-child STORE_DIR READY_FILE SCALE SEED
/// THROTTLE_US`. Never returns `Ok` in practice — the parent SIGKILLs
/// it mid-flight; `Err` covers setup failures, for debuggability.
///
/// # Errors
///
/// Returns a message if the arguments are malformed or the store
/// cannot be opened and served.
pub fn child_main(args: &[String]) -> Result<(), String> {
    let [dir, ready, scale, seed, throttle_us] = args else {
        return Err("usage: crashloop-child STORE_DIR READY_FILE SCALE SEED THROTTLE_US".into());
    };
    let scale = Scale::parse(scale).ok_or(format!("unknown scale '{scale}'"))?;
    let seed: u64 = seed.parse().map_err(|_| format!("bad seed '{seed}'"))?;
    let throttle_us: u64 = throttle_us
        .parse()
        .map_err(|_| format!("bad throttle '{throttle_us}'"))?;

    // The feed is the ground-truth chain, rebuilt deterministically
    // from the same (scale, seed) the parent used.
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let workload = build_workload(spec);
    let blocks = workload.chain.tip_height();
    let all_blocks: Vec<Block> = (1..=blocks)
        .map(|h| (*workload.chain.block(h).expect("ground-truth block")).clone())
        .collect();
    drop(workload);

    let (chain, _report) = lvq_store::open_chain(dir, StoreConfig::default())
        .map_err(|e| format!("open store: {e}"))?;
    let store = Arc::clone(chain.source().store());
    let live = Arc::new(LiveNode::new(
        FullNode::new(chain).map_err(|e| format!("serve chain: {e}"))?,
    ));
    let server = NodeServer::bind(
        Arc::clone(&live),
        "127.0.0.1:0",
        ServerConfig::default().with_workers(2),
    )
    .map_err(|e| format!("bind: {e}"))?;

    let master = MemoryFeed::new(all_blocks);
    master.publisher().publish_all();
    let throttle = Duration::from_micros(throttle_us);
    let make_feed = move || ThrottledFeed {
        inner: master.clone(),
        throttle,
    };
    let ingester = TipIngester::spawn_supervised(
        Arc::clone(&live),
        store,
        make_feed,
        IngestConfig::new()
            .with_min_batch(1)
            .with_max_batch(2)
            .with_poll(Duration::from_millis(1))
            .with_seed(seed),
        SupervisorConfig::default(),
    );
    server.attach_ingest(ingester.monitor());
    server.watch_health(ingester.health().clone());

    // Announce readiness atomically (tmp + rename), then serve until
    // the parent's SIGKILL arrives.
    let ready_path = PathBuf::from(ready);
    let tmp = ready_path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| format!("ready file: {e}"))?;
        writeln!(file, "{}", server.local_addr()).map_err(|e| format!("ready file: {e}"))?;
    }
    std::fs::rename(&tmp, &ready_path).map_err(|e| format!("ready file: {e}"))?;
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}

/// A feed that sleeps before every fetch — slow enough that the
/// parent's kill schedule reliably lands mid-ingest.
struct ThrottledFeed {
    inner: MemoryFeed,
    throttle: Duration,
}

impl BlockFeed for ThrottledFeed {
    fn fetch(&mut self, from: u64, max: u64) -> Result<Vec<Block>, FeedError> {
        std::thread::sleep(self.throttle);
        self.inner.fetch(from, max)
    }
}

impl std::fmt::Display for Crashloop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Crash loop — {} SIGKILL/restart cycles over a real serving process, {} blocks \
             ({} persisted up front): {} corrupt reopens, {} accepted lies, {} repaired reopens, \
             {} kills mid-ingest, worst recovery {} ms",
            self.points.len(),
            self.blocks,
            self.prefix,
            self.corrupt_reopens,
            self.accepted_lies,
            self.repaired_reopens,
            self.mid_ingest_kills,
            self.max_recovery_ms
        )?;
        let mut table = Table::new(&[
            "Cycle",
            "Tip at reopen",
            "Repaired",
            "Reopen+verify",
            "Recovery",
            "Queries ok",
            "Retries",
            "Verified txs",
        ]);
        for (i, p) in self.points.iter().enumerate() {
            table.row(vec![
                format!("kill #{}", i + 1),
                p.tip_at_open.to_string(),
                if p.repaired { "yes" } else { "-" }.to_string(),
                format!("{:.1} ms", p.reopen_us as f64 / 1e3),
                format!("{} ms", p.recovery_ms),
                p.queries.to_string(),
                p.retries.to_string(),
                p.verified_txs.to_string(),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(f)?;
        writeln!(
            f,
            "(final convergence: tip hash equals ground truth, {} blocks re-verified, \
             {} transactions verified by the full-chain query)",
            self.blocks, self.final_verified_txs
        )
    }
}
