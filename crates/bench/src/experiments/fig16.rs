//! Fig. 16 — effect of segment length `M` on the number of endpoint
//! nodes (filter size held at the 30 KB-class value).

use lvq_core::Scheme;

use crate::experiments::verified_query;
use crate::report::{bytes, Table};
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// One `(segment length, address)` measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Segment length `M`.
    pub segment_len: u64,
    /// `Addr1..Addr6`.
    pub addr: String,
    /// Endpoint node count (the figure's y axis).
    pub endpoints: u64,
    /// Total result bytes (context; tracks endpoints since filters are
    /// fixed-size).
    pub total_bytes: u64,
    /// Prover wall time in milliseconds (context: large `M` costs the
    /// full node CPU even where bytes plateau, because node filters of
    /// wide spans are recomputed from address sets).
    pub prove_ms: u64,
}

/// The figure data.
#[derive(Debug, Clone)]
pub struct Fig16 {
    /// All cells.
    pub cells: Vec<Cell>,
    /// The swept segment lengths.
    pub lengths: Vec<u64>,
}

/// Runs the sweep: full LVQ at the fixed BMT filter size with `M` from
/// 1 to the chain length (powers of two), same ledger throughout.
pub fn run(scale: Scale, seed: u64) -> Fig16 {
    let lengths = scale.m_sweep();
    let mut cells = Vec::new();
    for &segment_len in &lengths {
        let spec = WorkloadSpec {
            segment_len,
            seed,
            ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
        };
        let workload = build_workload(spec);
        for (label, address) in built_probes(&workload) {
            let started = std::time::Instant::now();
            let (response, stats) = verified_query(&workload, &address);
            cells.push(Cell {
                segment_len,
                addr: label,
                endpoints: stats.bmt.endpoint_count(),
                total_bytes: response.total_bytes(),
                prove_ms: started.elapsed().as_millis() as u64,
            });
        }
    }
    Fig16 { cells, lengths }
}

impl Fig16 {
    /// Renders the endpoint-count table (one row per `M`).
    pub fn table(&self) -> Table {
        let mut header: Vec<String> = vec!["M".to_string()];
        header.extend((1..=6).map(|i| format!("Addr{i}")));
        header.push("Addr6 size".to_string());
        header.push("Addr6 prove+verify".to_string());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        for &m in &self.lengths {
            let mut row = vec![m.to_string()];
            for i in 1..=6 {
                let addr = format!("Addr{i}");
                let cell = self
                    .cells
                    .iter()
                    .find(|c| c.segment_len == m && c.addr == addr);
                row.push(cell.map_or("-".to_string(), |c| c.endpoints.to_string()));
            }
            let addr6 = self
                .cells
                .iter()
                .find(|c| c.segment_len == m && c.addr == "Addr6");
            row.push(addr6.map_or("-".to_string(), |c| bytes(c.total_bytes)));
            row.push(addr6.map_or("-".to_string(), |c| format!("{} ms", c.prove_ms)));
            table.row(row);
        }
        table
    }

    /// The `M` minimising endpoints for a given address.
    pub fn best_m_for(&self, addr: &str) -> Option<u64> {
        self.cells
            .iter()
            .filter(|c| c.addr == addr)
            .min_by_key(|c| c.endpoints)
            .map(|c| c.segment_len)
    }
}

impl std::fmt::Display for Fig16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 16 — endpoint nodes vs segment length (BF fixed)")?;
        write!(f, "{}", self.table())
    }
}
