//! One module per regenerated table/figure.

pub mod bf_sweep;
pub mod chaos;
pub mod coldstart;
pub mod concurrent;
pub mod crashloop;
pub mod fig12;
pub mod fig16;
pub mod ingest;
pub mod k_sweep;
pub mod latency;
pub mod pool;
pub mod quorum;
pub mod reopen;
pub mod reorg;
pub mod storage;
pub mod tables;
pub mod throughput;

use lvq_chain::Address;
use lvq_core::{Completeness, LightClient, Prover, ProverStats, QueryResponse, Scheme};
use lvq_workload::Workload;

/// Runs one verified query: the prover answers, the light client checks
/// the answer against headers only, and the ground truth (the chain's
/// own index) must agree.
///
/// Every experiment routes its measurements through this function, so a
/// full experiment run doubles as a large end-to-end correctness check.
///
/// # Panics
///
/// Panics if verification fails or the verified history disagrees with
/// the chain — either would mean the reproduction is broken.
pub fn verified_query(workload: &Workload, address: &Address) -> (QueryResponse, ProverStats) {
    let prover = Prover::from_chain(&workload.chain).expect("chain built for a known scheme");
    let (response, stats) = prover.respond(address).expect("honest prover never fails");

    let client = LightClient::new(prover.config(), workload.chain.headers());
    let history = client
        .verify(address, &response)
        .expect("honest response must verify");

    let truth = workload.chain.history_of(address);
    assert_eq!(
        history.transactions.len(),
        truth.len(),
        "verified history must match ground truth"
    );
    if prover.config().scheme() != Scheme::Strawman {
        assert_eq!(history.completeness, Completeness::Complete);
    }
    (response, stats)
}
