//! Extra experiment: query-engine throughput (`repro throughput`).
//!
//! The paper reports result *sizes*; the ROADMAP's north star ("heavy
//! traffic from millions of users") is about server-side *cost*. This
//! experiment measures the two engine optimisations of the query
//! engine:
//!
//! 1. **Warm vs. cold cache** — repeated single-address queries with the
//!    chain's span-filter / per-block-SMT memo caches cleared before
//!    every query versus left warm;
//! 2. **Batch vs. singles** — one [`Message::BatchQueryRequest`] for all
//!    six Table III probes versus six independent queries, comparing
//!    both wall time and bytes on the wire. Every batch response is
//!    verified by the light node, so the measurement doubles as an
//!    end-to-end correctness check.
//!
//! [`Message::BatchQueryRequest`]: lvq_node::Message

use std::time::{Duration, Instant};

use lvq_chain::Address;
use lvq_core::Scheme;
use lvq_node::{FullNode, LightNode, LocalTransport, QuerySpec};

use crate::report::{bytes, Table};
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// How many times each measurement loop runs (the reported numbers are
/// totals over all rounds, so noise amortises).
const ROUNDS: u32 = 4;

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Queries per second with caches cleared before every query.
    pub cold_qps: f64,
    /// Queries per second with warm caches.
    pub warm_qps: f64,
    /// Total wall time for `ROUNDS` rounds of six single queries.
    pub singles_time: Duration,
    /// Response bytes for one round of six single queries.
    pub singles_bytes: u64,
    /// Total wall time for `ROUNDS` batched six-address queries.
    pub batch_time: Duration,
    /// Response bytes for one batched six-address query.
    pub batch_bytes: u64,
    /// Span-filter cache hit rate over the warm phases (the cold phase
    /// misses by construction and is excluded).
    pub filter_hit_rate: f64,
}

impl Throughput {
    /// Warm-over-cold speedup factor.
    pub fn warm_speedup(&self) -> f64 {
        self.warm_qps / self.cold_qps
    }

    /// Batch-over-singles wall-time speedup factor.
    pub fn batch_speedup(&self) -> f64 {
        self.singles_time.as_secs_f64() / self.batch_time.as_secs_f64()
    }
}

/// Runs the experiment under full LVQ at the Fig. 12 configuration.
pub fn run(scale: Scale, seed: u64) -> Throughput {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let config = spec.config();
    let workload = build_workload(spec);
    let addresses: Vec<Address> = built_probes(&workload)
        .into_iter()
        .map(|(_, address)| address)
        .collect();
    let truth: Vec<usize> = addresses
        .iter()
        .map(|a| workload.chain.history_of(a).len())
        .collect();
    let full = FullNode::new(workload.chain).expect("known scheme");
    let mut peer = LocalTransport::new(&full);
    let mut light = LightNode::sync_from(&mut peer, config).expect("honest peer");

    // Phase 1 — cold vs. warm single-address throughput.
    let mut queried = 0u32;
    let cold_started = Instant::now();
    for _ in 0..ROUNDS {
        for address in &addresses {
            full.chain().clear_caches();
            light
                .run(&QuerySpec::address(address.clone()), &mut peer)
                .expect("honest response");
            queried += 1;
        }
    }
    let cold_qps = f64::from(queried) / cold_started.elapsed().as_secs_f64();

    // Prime the caches once, then measure the steady state. Hit-rate
    // accounting starts here — the cold phase above misses on purpose.
    for address in &addresses {
        light
            .run(&QuerySpec::address(address.clone()), &mut peer)
            .expect("honest response");
    }
    let primed = full.engine_stats().cache;
    let mut queried = 0u32;
    let mut singles_bytes = 0u64;
    let warm_started = Instant::now();
    for round in 0..ROUNDS {
        for address in &addresses {
            let run = light
                .run(&QuerySpec::address(address.clone()), &mut peer)
                .expect("honest response");
            if round == 0 {
                singles_bytes += run.traffic.response_bytes;
            }
            queried += 1;
        }
    }
    let singles_time = warm_started.elapsed();
    let warm_qps = f64::from(queried) / singles_time.as_secs_f64();

    // Phase 2 — one batch of six vs. six singles (both warm).
    let mut batch_bytes = 0;
    let batch_started = Instant::now();
    let batch_spec = QuerySpec::addresses(addresses.clone());
    for _ in 0..ROUNDS {
        let outcome = light
            .run(&batch_spec, &mut peer)
            .expect("honest batch response");
        batch_bytes = outcome.traffic.response_bytes;
        for (history, expected) in outcome.histories.iter().zip(&truth) {
            assert_eq!(
                history.transactions.len(),
                *expected,
                "batch history must match ground truth"
            );
        }
    }
    let batch_time = batch_started.elapsed();

    let cache = full.engine_stats().cache;
    let warm_hits = cache.filters.hits - primed.filters.hits;
    let warm_misses = cache.filters.misses - primed.filters.misses;
    let filter_lookups = warm_hits + warm_misses;
    Throughput {
        cold_qps,
        warm_qps,
        singles_time,
        singles_bytes,
        batch_time,
        batch_bytes,
        filter_hit_rate: if filter_lookups == 0 {
            0.0
        } else {
            warm_hits as f64 / filter_lookups as f64
        },
    }
}

impl std::fmt::Display for Throughput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Query-engine throughput — LVQ, six Table III probes, {ROUNDS} rounds"
        )?;
        let mut table = Table::new(&["Measurement", "Value"]);
        table.row(vec![
            "cold cache".to_string(),
            format!("{:.0} queries/s", self.cold_qps),
        ]);
        table.row(vec![
            "warm cache".to_string(),
            format!(
                "{:.0} queries/s ({:.1}x cold)",
                self.warm_qps,
                self.warm_speedup()
            ),
        ]);
        table.row(vec![
            "filter-cache hit rate".to_string(),
            crate::report::percent(self.filter_hit_rate),
        ]);
        table.row(vec![
            "6 singles".to_string(),
            format!(
                "{} on the wire, {:?} wall",
                bytes(self.singles_bytes),
                self.singles_time / ROUNDS
            ),
        ]);
        table.row(vec![
            "batch of 6".to_string(),
            format!(
                "{} on the wire, {:?} wall ({:.1}x singles)",
                bytes(self.batch_bytes),
                self.batch_time / ROUNDS,
                self.batch_speedup()
            ),
        ]);
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_smaller_and_caches_pay_off() {
        let result = run(Scale::Small, 11);
        // The size claim is deterministic: one shared descent per
        // segment must beat six copies of it.
        assert!(
            result.batch_bytes < result.singles_bytes,
            "batch {} B vs singles {} B",
            result.batch_bytes,
            result.singles_bytes
        );
        // Warm caches can only help; asserting a hard 2x here would be
        // flaky on loaded CI machines, so the test pins direction and
        // the report carries the magnitude.
        assert!(result.warm_qps > result.cold_qps);
        assert!(result.filter_hit_rate > 0.5);
    }
}
