//! Extra experiment: reopen cost with and without the persistent
//! address index (`repro reopen`).
//!
//! A full node that already holds the chain in its block store still
//! pays a full derived-state replay on every restart: `open_chain`
//! decodes each block to rebuild the per-block address tables and span
//! hashes before the first query can be answered. The persistent Merkle
//! AVL index turns that replay into a handful of point reads — reopen
//! loads the anchored root record and walks the tree for exactly the
//! state it needs.
//!
//! The experiment ingests one chain into a store, builds the index once
//! (the one-time cost a node pays on its first `--index` open), then
//! measures reopen-to-first-verified-query for:
//!
//! 1. **store (replay)** — `open_chain`: checksummed block reads plus a
//!    full derived-state replay; every table resident forever;
//! 2. **store (indexed)** — `open_chain_indexed`: root-record read plus
//!    index point reads; table bytes resident only inside the bounded
//!    node cache.
//!
//! Both paths answer the same Table III probe queries verified by the
//! light client against headers only, so byte-level equivalence of the
//! two serving paths is checked end to end on every run.

use std::time::Instant;

use lvq_chain::{Address, BlockSource, Chain, TableSource};
use lvq_core::{LightClient, Prover, Scheme};
use lvq_store::{AddrIndexRecovery, StoreConfig};

use crate::report::{bytes, Table};
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

pub use super::coldstart::PathCost;

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Reopen {
    /// Chain length.
    pub blocks: u64,
    /// On-disk size of the index node log.
    pub index_bytes: u64,
    /// One-time index build on the first `--index` open.
    pub build: std::time::Duration,
    /// The `open_chain` full derived-state replay path.
    pub replay: PathCost,
    /// The `open_chain_indexed` point-read path.
    pub indexed: PathCost,
    /// Byte budget of the index node cache during the indexed run.
    pub index_cache_budget: u64,
    /// Probe queries verified per path (zero failures or this
    /// experiment panics).
    pub verified_queries: u64,
}

/// Answers and verifies every probe on `chain`, returning the time the
/// first one took.
fn verify_probes<S: BlockSource, T: TableSource>(
    chain: &Chain<S, T>,
    probes: &[(String, Address)],
    truth: &[usize],
) -> std::time::Duration {
    let prover = Prover::from_chain(chain).expect("chain built for a known scheme");
    let client = LightClient::new(prover.config(), chain.headers());
    let mut first = None;
    for ((label, address), expected) in probes.iter().zip(truth) {
        let started = Instant::now();
        let (response, _) = prover.respond(address).expect("honest prover never fails");
        let history = client
            .verify(address, &response)
            .expect("honest response must verify");
        first.get_or_insert_with(|| started.elapsed());
        assert_eq!(
            history.transactions.len(),
            *expected,
            "{label}: verified history must match ground truth"
        );
    }
    first.expect("at least one probe")
}

/// Runs the experiment under full LVQ at the Fig. 12 configuration.
pub fn run(scale: Scale, seed: u64) -> Reopen {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let workload = build_workload(spec);
    let probes = built_probes(&workload);
    let truth: Vec<usize> = probes
        .iter()
        .map(|(_, a)| workload.chain.history_of(a).len())
        .collect();
    let blocks = workload.chain.tip_height();
    let index_cache_budget = workload
        .chain
        .params()
        .cache_config()
        .index_node_cache_bytes;

    let tag = format!("lvq-reopen-{}-{seed}", std::process::id());
    let store_dir = std::env::temp_dir().join(format!("{tag}.store"));
    let _ = std::fs::remove_dir_all(&store_dir);
    lvq_store::ingest_chain(&workload.chain, &store_dir, StoreConfig::default())
        .expect("ingest into fresh store");
    drop(workload); // reopens should not borrow the builder's chain

    // One-time build: the first indexed open finds no index and replays
    // the store into the tree. Every later open is point reads.
    let started = Instant::now();
    let (chain, report) = lvq_store::open_chain_indexed(&store_dir, StoreConfig::default())
        .expect("well-formed store");
    let build = started.elapsed();
    assert!(
        matches!(
            report.addr_index,
            AddrIndexRecovery::Rebuilt {
                reason: "no index present"
            }
        ),
        "first open must build the index: {report:?}"
    );
    let index_bytes = chain.tables().data_bytes();
    drop(chain);

    // Path 1 — replay: open the store and rebuild every derived table.
    let started = Instant::now();
    let (chain, report) =
        lvq_store::open_chain(&store_dir, StoreConfig::default()).expect("well-formed store");
    let load = started.elapsed();
    assert!(report.is_clean(), "fresh store must open clean: {report:?}");
    let first_query = verify_probes(&chain, &probes, &truth);
    let replay = PathCost {
        load,
        first_query,
        resident_bytes: chain.tables().resident_bytes(),
    };
    drop(chain);

    // Path 2 — indexed: reopen from the anchored root, point reads only.
    let started = Instant::now();
    let (chain, report) = lvq_store::open_chain_indexed(&store_dir, StoreConfig::default())
        .expect("well-formed store");
    let load = started.elapsed();
    assert_eq!(
        report.addr_index,
        AddrIndexRecovery::Intact,
        "second indexed open must be pure point reads"
    );
    assert!(report.is_clean(), "fresh store must open clean: {report:?}");
    let first_query = verify_probes(&chain, &probes, &truth);
    let indexed = PathCost {
        load,
        first_query,
        resident_bytes: chain.tables().resident_bytes(),
    };
    drop(chain);

    let _ = std::fs::remove_dir_all(&store_dir);

    Reopen {
        blocks,
        index_bytes,
        build,
        replay,
        indexed,
        index_cache_budget: index_cache_budget as u64,
        verified_queries: 2 * probes.len() as u64,
    }
}

impl std::fmt::Display for Reopen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Reopen — LVQ, {} blocks; index {} on disk, built once in {:.1?}",
            self.blocks,
            bytes(self.index_bytes),
            self.build
        )?;
        let mut table = Table::new(&[
            "Reopen path",
            "Load",
            "First verified query",
            "Resident table bytes",
        ]);
        for (label, cost) in [
            ("store (replay)", &self.replay),
            ("store (indexed)", &self.indexed),
        ] {
            table.row(vec![
                label.to_string(),
                format!("{:.1?}", cost.load),
                format!("{:.1?}", cost.time_to_first_verified()),
                bytes(cost.resident_bytes),
            ]);
        }
        writeln!(f, "{table}")?;
        write!(
            f,
            "({} probe queries verified, 0 failures; indexed resident bytes bounded \
             by the {} node cache)",
            self.verified_queries,
            bytes(self.index_cache_budget)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_reopen_beats_replay_and_stays_bounded() {
        let result = run(Scale::Small, 5);
        // The acceptance bar: the indexed reopen itself is strictly
        // faster than the derived-state replay (the replay cost grows
        // with the chain; the indexed open is a root read plus point
        // reads, so the gap only widens at paper scale)...
        assert!(
            result.indexed.load < result.replay.load,
            "indexed {:?} vs replay {:?}",
            result.indexed.load,
            result.replay.load
        );
        // ...and holds only cache-bounded table state, not the chain.
        assert!(
            result.indexed.resident_bytes <= result.index_cache_budget,
            "indexed resident {} exceeds the {} cache budget",
            result.indexed.resident_bytes,
            result.index_cache_budget
        );
        // run() itself asserts every verification; reaching here means
        // zero failures across both paths.
        assert_eq!(result.verified_queries, 12);
    }
}
