//! Extra experiment: concurrent TCP serving (`repro concurrent`).
//!
//! The ROADMAP's north star is a full node answering "heavy traffic
//! from millions of users". This experiment stands up one
//! [`NodeServer`] over loopback TCP and compares a single light client
//! against several querying concurrently:
//!
//! 1. **Aggregate throughput** — total verified queries per second with
//!    `CLIENTS` threads versus one, both against warm caches so the
//!    comparison measures serving concurrency and not cache warm-up;
//! 2. **Cache sharing** — all connections share one `Arc<FullNode>`,
//!    so the span-filter memo cache hit rate stays high even though
//!    every client arrives over its own socket.
//!
//! Every response is verified by the light node against headers only
//! and checked against the chain's ground truth, so the measurement
//! doubles as an end-to-end correctness check of the TCP path.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lvq_chain::Address;
use lvq_core::{Scheme, SchemeConfig};
use lvq_node::{
    FullNode, LightNode, NodeServer, QuerySpec, ServerConfig, ServerStats, TcpTransport,
};

use crate::report::Table;
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// Concurrent client threads in the fan-out phase.
const CLIENTS: u32 = 4;

/// Rounds over the six probe addresses per measured phase and client.
const ROUNDS: u32 = 6;

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Concurrent {
    /// Client threads in the concurrent phase.
    pub clients: u32,
    /// Verified queries per second with a single client.
    pub baseline_qps: f64,
    /// Aggregate verified queries per second with [`Concurrent::clients`]
    /// clients.
    pub concurrent_qps: f64,
    /// Wall time of the single-client phase.
    pub baseline_time: Duration,
    /// Wall time of the concurrent phase.
    pub concurrent_time: Duration,
    /// Span-filter cache hit rate during the concurrent phase.
    pub filter_hit_rate: f64,
    /// The server's own accounting over the whole run.
    pub server: ServerStats,
}

impl Concurrent {
    /// Concurrent-over-baseline throughput scaling factor.
    pub fn scaling(&self) -> f64 {
        self.concurrent_qps / self.baseline_qps
    }
}

/// One client session: connect, sync headers, then run `rounds` rounds
/// of verified queries over all probe addresses, checking every history
/// against ground truth. Returns the number of queries issued.
fn client_session(
    addr: SocketAddr,
    config: SchemeConfig,
    addresses: &[Address],
    truth: &[usize],
    rounds: u32,
) -> u32 {
    let mut transport = TcpTransport::connect(addr).expect("server is listening");
    let mut light = LightNode::sync_from(&mut transport, config).expect("honest server");
    let mut queried = 0;
    for _ in 0..rounds {
        for (address, expected) in addresses.iter().zip(truth) {
            let history = light
                .run(&QuerySpec::address(address.clone()), &mut transport)
                .expect("honest response")
                .into_single();
            assert_eq!(
                history.transactions.len(),
                *expected,
                "verified history must match ground truth"
            );
            queried += 1;
        }
    }
    queried
}

/// Runs the experiment under full LVQ at the Fig. 12 configuration.
pub fn run(scale: Scale, seed: u64) -> Concurrent {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let config = spec.config();
    let workload = build_workload(spec);
    let addresses: Vec<Address> = built_probes(&workload)
        .into_iter()
        .map(|(_, address)| address)
        .collect();
    let truth: Vec<usize> = addresses
        .iter()
        .map(|a| workload.chain.history_of(a).len())
        .collect();

    let full = Arc::new(FullNode::new(workload.chain).expect("known scheme"));
    // A worker owns its connection for the whole session, so the pool
    // must be at least CLIENTS wide or the fan-out phase serialises
    // (and on a single-core box the auto-sized pool is one worker).
    let server_config = ServerConfig::default().with_workers(CLIENTS as usize);
    let server =
        NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", server_config).expect("loopback bind");
    let addr = server.local_addr();

    // Warm the shared caches so both phases measure the steady state.
    client_session(addr, config, &addresses, &truth, 1);

    // Phase 1 — one client, warm caches.
    let started = Instant::now();
    let baseline_queries = client_session(addr, config, &addresses, &truth, ROUNDS);
    let baseline_time = started.elapsed();
    let baseline_qps = f64::from(baseline_queries) / baseline_time.as_secs_f64();

    // Phase 2 — CLIENTS clients in parallel against the same server.
    let before = full.engine_stats().cache;
    let started = Instant::now();
    let concurrent_queries: u32 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| scope.spawn(|| client_session(addr, config, &addresses, &truth, ROUNDS)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum()
    });
    let concurrent_time = started.elapsed();
    let concurrent_qps = f64::from(concurrent_queries) / concurrent_time.as_secs_f64();

    let after = full.engine_stats().cache;
    let hits = after.filters.hits - before.filters.hits;
    let misses = after.filters.misses - before.filters.misses;
    let lookups = hits + misses;

    let server_stats = server.shutdown();
    Concurrent {
        clients: CLIENTS,
        baseline_qps,
        concurrent_qps,
        baseline_time,
        concurrent_time,
        filter_hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        server: server_stats,
    }
}

impl std::fmt::Display for Concurrent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Concurrent TCP serving — LVQ, six Table III probes, {ROUNDS} rounds per client"
        )?;
        let mut table = Table::new(&["Measurement", "Value"]);
        table.row(vec![
            "1 client".to_string(),
            format!("{:.0} queries/s", self.baseline_qps),
        ]);
        table.row(vec![
            format!("{} clients", self.clients),
            format!(
                "{:.0} queries/s aggregate ({:.1}x one client)",
                self.concurrent_qps,
                self.scaling()
            ),
        ]);
        table.row(vec![
            "shared filter-cache hit rate".to_string(),
            crate::report::percent(self.filter_hit_rate),
        ]);
        table.row(vec![
            "server".to_string(),
            format!(
                "{} requests over {} connections, {} errors",
                self.server.requests, self.server.connections, self.server.errors
            ),
        ]);
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_clients_share_caches_and_scale() {
        let result = run(Scale::Small, 11);
        assert_eq!(result.clients, CLIENTS);
        assert!(result.clients >= 4);
        // All connections hit one Arc<FullNode>, so the concurrent
        // phase must observe the shared warm cache.
        assert!(result.filter_hit_rate > 0.5, "{}", result.filter_hit_rate);
        // Four clients must not *lose* to one. On a multi-core box
        // they win outright; on a single core the proving serialises
        // and the best concurrency can do is tie, so the assertion
        // pins the direction with a 15 % noise tolerance and the
        // report carries the magnitude.
        assert!(
            result.concurrent_qps > result.baseline_qps * 0.85,
            "concurrent {} qps vs baseline {} qps",
            result.concurrent_qps,
            result.baseline_qps
        );
        // A clean run: every frame parsed, every response written.
        assert_eq!(result.server.errors, 0);
        // 1 warm-up + 1 baseline + CLIENTS concurrent sessions.
        assert_eq!(result.server.connections, u64::from(CLIENTS) + 2);
    }
}
