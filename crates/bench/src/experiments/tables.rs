//! Tables I, II and III.

use lvq_core::{segment, Scheme};

use crate::report::Table;
use crate::scale::Scale;
use crate::workloads::{build_workload, WorkloadSpec};

/// Table I — blocks to be merged per height (`M ≥ 8`).
pub fn table1() -> Table {
    let mut table = Table::new(&["Height", "#Blocks", "Blocks to be merged"]);
    for height in 1..=8u64 {
        let range = segment::merged_range(height, 8);
        let blocks: Vec<String> = (range.lo..=range.hi).map(|h| h.to_string()).collect();
        table.row(vec![
            height.to_string(),
            range.len().to_string(),
            blocks.join(", "),
        ]);
    }
    table
}

/// Table II — sub-segment division of the trailing partial segment
/// (`M = 256`, blocks indexed from 1).
pub fn table2() -> Table {
    let mut table = Table::new(&["h_t", "Sub-segments"]);
    for tip in [464u64, 465, 466] {
        let segs = segment::segments(tip, 256);
        let subs: Vec<String> = segs
            .iter()
            .filter(|s| s.lo > 256) // the paper's table lists only the partial segment
            .map(|s| {
                if s.lo == s.hi {
                    format!("[{}]", s.lo)
                } else {
                    format!("[{},{}]", s.lo, s.hi)
                }
            })
            .collect();
        table.row(vec![tip.to_string(), subs.join(", ")]);
    }
    table
}

/// Table III — planted probe footprints, checked against the generated
/// chain's ground truth.
///
/// # Panics
///
/// Panics if the generator failed to plant a probe exactly — that would
/// invalidate every other experiment.
pub fn table3(scale: Scale, seed: u64) -> Table {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let workload = build_workload(spec);
    let mut table = Table::new(&["Index", "Address", "#Tx", "#Block"]);
    for (i, probe) in workload.probes.iter().enumerate() {
        let truth = workload.chain.history_of(&probe.address);
        assert_eq!(truth.len() as u64, probe.tx_count, "planting broken");
        table.row(vec![
            (i + 1).to_string(),
            probe.address.to_string(),
            probe.tx_count.to_string(),
            probe.block_heights.len().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rendered = table1().render();
        // Paper Table I's height-8 row.
        assert!(rendered.contains("1, 2, 3, 4, 5, 6, 7, 8"));
        // Height 4 merges four blocks (the pseudocode off-by-one the
        // paper's own table contradicts).
        assert!(rendered.contains("| 4      | 4       | 1, 2, 3, 4"));
    }

    #[test]
    fn table2_matches_paper() {
        let rendered = table2().render();
        assert!(rendered.contains("[257,384], [385,448], [449,464]"));
        assert!(rendered.contains("[465]"));
        assert!(rendered.contains("[465,466]"));
    }

    #[test]
    fn table3_small_scale() {
        let rendered = table3(Scale::Small, 7).render();
        assert!(rendered.contains("1GuLyHTpL6U121Ewe5h31jP4HPC8s4mLTs"));
    }
}
