//! Extra experiment: quorum queries over live servers (`repro quorum`).
//!
//! Paper Challenge 3: a **strawman** full node can silently withhold
//! transactions, because Merkle branches prove correctness but not
//! completeness. This experiment stands up three live
//! [`NodeServer`]s over loopback TCP — two honest, one running a
//! [`CensoringNode`] that drops a transaction from every
//! multi-transaction Merkle-branch fragment — and demonstrates both
//! halves of the claim with [`query_quorum_batch`]:
//!
//! 1. **Alone, censorship is invisible** — the censor's batch response
//!    verifies as correct even though transactions are missing;
//! 2. **A quorum exposes it** — the union over all peers restores the
//!    ground truth for every probe address, the censoring peer is
//!    flagged by index, and no honest peer is falsely accused.
//!
//! The censor runs behind the same worker-pool server as the honest
//! peers (via the [`ServeNode`] trait), so the TCP path — framing,
//! versioned envelope, pooling — is identical for all three.

use std::sync::Arc;

use lvq_chain::Address;
use lvq_codec::{decode_exact, Encodable};
use lvq_core::{BatchQueryResponse, BlockFragment, LightClient, QueryResponse, Scheme};
use lvq_node::{
    query_quorum_batch, FullNode, Handled, Message, NodeServer, RequestKind, ServeNode,
    ServerConfig, TcpTransport, Traffic,
};

use crate::report::{bytes, Table};
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// Peers in the quorum.
const PEERS: usize = 3;

/// Index of the censoring peer in the quorum sweep order.
const CENSOR: usize = 1;

/// A strawman full node that drops one transaction from every
/// multi-transaction Merkle-branch fragment before answering — the
/// minimal censorship a lone light client cannot detect (the entry
/// count and filter hashes are pinned by the headers, so only a
/// fragment that still holds at least one branch survives
/// verification).
struct CensoringNode {
    inner: Arc<FullNode>,
}

impl CensoringNode {
    fn censor_fragment(fragment: &mut BlockFragment) {
        if let BlockFragment::MerkleBranches(txs) = fragment {
            if txs.len() > 1 {
                txs.pop();
            }
        }
    }
}

impl ServeNode for CensoringNode {
    fn handle_classified(&self, request: &[u8]) -> Handled {
        let mut handled = self.inner.handle_classified(request);
        if handled.error.is_some() {
            return handled;
        }
        match handled.kind {
            RequestKind::Query => {
                if let Ok(Message::QueryResponse(mut response)) = decode_exact(&handled.bytes) {
                    if let QueryResponse::PerBlock(per_block) = response.as_mut() {
                        for entry in &mut per_block.entries {
                            Self::censor_fragment(&mut entry.fragment);
                        }
                    }
                    handled.bytes = Message::QueryResponse(response).encode();
                }
            }
            RequestKind::BatchQuery => {
                if let Ok(Message::BatchQueryResponse(mut response)) = decode_exact(&handled.bytes)
                {
                    if let BatchQueryResponse::PerBlock(per_block) = response.as_mut() {
                        for entry in &mut per_block.entries {
                            for fragment in &mut entry.fragments {
                                Self::censor_fragment(fragment);
                            }
                        }
                    }
                    handled.bytes = Message::BatchQueryResponse(response).encode();
                }
            }
            _ => {}
        }
        handled
    }
}

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Quorum {
    /// Peers queried (honest plus censor).
    pub peers: usize,
    /// Index of the censoring peer.
    pub censor: usize,
    /// Transactions missing from the lone censor's verified answer —
    /// withheld yet undetected (Challenge 3).
    pub alone_missing: u64,
    /// Ground-truth transactions over all probe addresses.
    pub truth_total: u64,
    /// Peers flagged as withholding by the quorum.
    pub withholding_peers: Vec<usize>,
    /// Peers whose response failed verification outright.
    pub rejected_peers: Vec<usize>,
    /// Total traffic of the three-peer quorum round.
    pub traffic: Traffic,
}

/// Runs the experiment under the strawman at the Fig. 12 configuration.
///
/// # Panics
///
/// Panics if the censor goes undetected in the quorum, if any honest
/// peer is falsely accused, or if the merged histories disagree with
/// the chain's ground truth — each would mean the quorum logic (or the
/// TCP path under it) is broken.
pub fn run(scale: Scale, seed: u64) -> Quorum {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Strawman, scale)
    };
    let workload = build_workload(spec);
    let addresses: Vec<Address> = built_probes(&workload)
        .into_iter()
        .map(|(_, address)| address)
        .collect();
    let truth: Vec<usize> = addresses
        .iter()
        .map(|a| workload.chain.history_of(a).len())
        .collect();
    let truth_total: u64 = truth.iter().map(|&n| n as u64).sum();

    let full = Arc::new(FullNode::new(workload.chain).expect("known scheme"));
    let client = LightClient::new(full.config(), full.chain().headers());
    let censor_node = Arc::new(CensoringNode {
        inner: Arc::clone(&full),
    });

    let honest_a = NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");
    let censor_srv = NodeServer::bind(censor_node, "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");
    let honest_b = NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");

    let mut ta = TcpTransport::connect(honest_a.local_addr()).expect("server is listening");
    let mut tc = TcpTransport::connect(censor_srv.local_addr()).expect("server is listening");
    let mut tb = TcpTransport::connect(honest_b.local_addr()).expect("server is listening");

    // Phase 1 — the censor alone: verifies cleanly, yet transactions
    // are missing and nothing flags the peer.
    let alone = query_quorum_batch(&client, &mut [&mut tc], &addresses).expect("alone verifies");
    let alone_total: u64 = alone
        .histories
        .iter()
        .map(|h| h.transactions.len() as u64)
        .sum();
    assert!(
        alone_total < truth_total,
        "the censor must actually withhold something ({alone_total} of {truth_total})"
    );
    assert!(
        alone.withholding_peers.is_empty() && alone.rejected_peers.is_empty(),
        "withholding must be undetectable without a second peer"
    );

    // Phase 2 — quorum of three, censor in the middle.
    let outcome = query_quorum_batch(&client, &mut [&mut ta, &mut tc, &mut tb], &addresses)
        .expect("quorum with honest peers verifies");
    for ((history, expected), address) in outcome.histories.iter().zip(&truth).zip(&addresses) {
        assert_eq!(
            history.transactions.len(),
            *expected,
            "union must restore ground truth for {address}"
        );
    }
    assert_eq!(
        outcome.withholding_peers,
        vec![CENSOR],
        "exactly the censor is flagged, with zero false accusations"
    );
    assert!(outcome.rejected_peers.is_empty());

    drop((ta, tb, tc));
    for stats in [
        honest_a.shutdown(),
        censor_srv.shutdown(),
        honest_b.shutdown(),
    ] {
        assert_eq!(stats.errors, 0, "clean TCP run on every peer");
    }

    Quorum {
        peers: PEERS,
        censor: CENSOR,
        alone_missing: truth_total - alone_total,
        truth_total,
        withholding_peers: outcome.withholding_peers,
        rejected_peers: outcome.rejected_peers,
        traffic: outcome.traffic,
    }
}

impl std::fmt::Display for Quorum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Quorum vs. withholding — strawman, {} live TCP peers, six Table III probes",
            self.peers
        )?;
        let mut table = Table::new(&["Measurement", "Value"]);
        table.row(vec![
            "censor alone".to_string(),
            format!(
                "verifies; {} of {} transactions silently missing",
                self.alone_missing, self.truth_total
            ),
        ]);
        table.row(vec![
            "quorum union".to_string(),
            format!("all {} transactions restored", self.truth_total),
        ]);
        table.row(vec![
            "flagged peers".to_string(),
            format!(
                "{:?} (censor is peer {}); {} false accusations",
                self.withholding_peers,
                self.censor,
                self.withholding_peers.len().saturating_sub(1)
            ),
        ]);
        table.row(vec![
            "quorum traffic".to_string(),
            format!(
                "{} requests, {} responses",
                bytes(self.traffic.request_bytes),
                bytes(self.traffic.response_bytes)
            ),
        ]);
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_over_tcp_flags_the_censor_only() {
        let result = run(Scale::Small, 11);
        assert_eq!(result.peers, PEERS);
        assert!(result.alone_missing > 0);
        assert_eq!(result.withholding_peers, vec![CENSOR]);
        assert!(result.rejected_peers.is_empty());
        assert!(result.traffic.response_bytes > 0);
    }
}
