//! Extra experiment: self-healing clients under chaos (`repro chaos`).
//!
//! The paper's trust model says a light node trusts *proofs*, not
//! *peers* — so a misbehaving transport must never cost correctness,
//! only patience. This experiment stands up a live worker-pool
//! [`NodeServer`] over loopback TCP and sweeps seeded composite fault
//! rates (0%, 1%, 5%, 20%: dropped connections, spurious `Busy`, stale
//! replies, truncations, bit flips, injected latency) through a
//! three-peer quorum client stack — [`FaultyTransport`] over
//! [`TcpTransport`], driven by [`query_quorum_spec`]'s per-peer
//! retries — plus one permanently dead peer, and demonstrates three
//! claims:
//!
//! 1. **100% eventual success** — every probe query completes within
//!    the retry budget at every fault rate, even with one of four
//!    peers permanently down (graceful k-of-n degradation);
//! 2. **zero incorrect verifications** — every answer equals the
//!    chain's ground truth exactly; corrupted responses only ever cost
//!    a retry or take a peer out of the quorum, never poison a result;
//! 3. **reproducibility** — the entire fault schedule, retry history,
//!    and byte traffic replay bit-for-bit under the same seed (each
//!    rate is run twice and the outcomes compared; only wall-clock
//!    latency may differ).

use std::sync::Arc;
use std::time::{Duration, Instant};

use lvq_chain::Address;
use lvq_core::{LightClient, Scheme};
use lvq_crypto::Hash256;
use lvq_node::{
    query_quorum_spec, FaultPlan, FaultStats, FaultyTransport, FullNode, NodeServer, PeerOutcome,
    QuerySpec, RetryPolicy, ServerConfig, TcpTransport, Transport,
};

use crate::report::Table;
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// Composite fault rates swept (fraction of exchanges corrupted).
const RATES: &[f64] = &[0.0, 0.01, 0.05, 0.20];

/// Live (merely faulty) peers in the quorum.
const LIVE_PEERS: usize = 3;

/// Sweeps of the whole probe list per rate, so the rarer fault rates
/// see enough exchanges to actually fire.
const PASSES: usize = 3;

/// Per-peer retry budget at every rate: 10 attempts, 2–20ms
/// decorrelated-jitter backoff, no wall-clock deadline (determinism).
fn retry_policy() -> RetryPolicy {
    RetryPolicy::new(10).backoff(Duration::from_millis(2), Duration::from_millis(20))
}

/// One rate's aggregate outcome.
#[derive(Debug, Clone)]
pub struct RatePoint {
    /// Composite fault rate in percent.
    pub rate_percent: f64,
    /// Probe queries issued.
    pub queries: usize,
    /// Queries that exhausted the whole quorum — must be zero.
    pub failures: u64,
    /// Faults the injection layer actually fired across the live
    /// peers (the dead fixture's unconditional drops are excluded so
    /// the 0% row reads as exactly fault-free).
    pub faults_injected: u64,
    /// Attempts across the live peers and all queries.
    pub attempts: u64,
    /// Live-peer retries (attempts beyond each peer's first; the dead
    /// fixture exhausts its budget every query by construction).
    pub retries: u64,
    /// Queries that lost at least one peer (dead peer included — so
    /// with the permanently dead peer this equals `queries`).
    pub degraded_queries: u64,
    /// Fewest peers serving any single query.
    pub served_min: usize,
    /// Mean per-query wall-clock latency in microseconds.
    pub mean_latency_us: u64,
    /// Worst per-query wall-clock latency in microseconds.
    pub max_latency_us: u64,
}

/// Everything a rate produces that must replay exactly under the same
/// seed (wall-clock latency excluded — it is a measurement, not an
/// outcome).
#[derive(Debug, Clone, PartialEq, Eq)]
struct RateSignature {
    fault_stats: Vec<FaultStats>,
    attempts: u64,
    retries: u64,
    request_bytes: u64,
    response_bytes: u64,
    history_digests: Vec<Vec<(u64, Hash256)>>,
}

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Chaos {
    /// Live peers per query (plus one permanently dead peer).
    pub live_peers: usize,
    /// Ground-truth transactions over all probe addresses.
    pub truth_total: u64,
    /// One aggregate per swept fault rate.
    pub points: Vec<RatePoint>,
    /// Whether every rate replayed bit-for-bit on its second run.
    pub reproducible: bool,
}

/// Runs the sweep against a live TCP server.
///
/// # Panics
///
/// Panics if any query fails to complete within the retry budget, if
/// any verified history deviates from the chain's ground truth, or if
/// a rate's second same-seed run diverges from its first — each would
/// break one of the three claims above.
pub fn run(scale: Scale, seed: u64) -> Chaos {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let workload = build_workload(spec);
    let addresses: Vec<Address> = built_probes(&workload)
        .into_iter()
        .map(|(_, address)| address)
        .collect();
    let truth: Vec<Vec<(u64, Hash256)>> = addresses
        .iter()
        .map(|a| {
            workload
                .chain
                .history_of(a)
                .into_iter()
                .map(|(height, tx)| (height, tx.txid()))
                .collect()
        })
        .collect();
    let truth_total: u64 = truth.iter().map(|h| h.len() as u64).sum();

    let full = Arc::new(FullNode::new(workload.chain).expect("known scheme"));
    let client = LightClient::new(full.config(), full.chain().headers());
    // A worker owns its connection for the whole session, so the pool
    // must be at least as wide as the quorum (live peers + the dead
    // one) or the peers would starve each other rather than the faults.
    let config = ServerConfig::default().with_workers(LIVE_PEERS + 1);
    let server = NodeServer::bind(Arc::clone(&full), "127.0.0.1:0", config).expect("loopback bind");
    let addr = server.local_addr();

    let mut points = Vec::new();
    let mut reproducible = true;
    for (ri, &rate) in RATES.iter().enumerate() {
        let (point, signature) = run_rate(&client, addr, &addresses, &truth, rate, seed, ri);
        // The whole point of seeded chaos: the same seed must replay
        // the same faults, retries, bytes, and answers.
        let (_, replay) = run_rate(&client, addr, &addresses, &truth, rate, seed, ri);
        reproducible &= signature == replay;
        assert!(
            signature == replay,
            "rate {rate}: same-seed replay diverged"
        );
        points.push(point);
    }

    let stats = server.shutdown();
    assert_eq!(
        stats.errors, 0,
        "fault injection lives in the client stack; the server sees only well-formed requests"
    );

    Chaos {
        live_peers: LIVE_PEERS,
        truth_total,
        points,
        reproducible,
    }
}

fn mix(seed: u64, a: u64, b: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (a << 32) ^ b
}

fn run_rate(
    client: &LightClient,
    addr: std::net::SocketAddr,
    addresses: &[Address],
    truth: &[Vec<(u64, Hash256)>],
    rate: f64,
    seed: u64,
    rate_index: usize,
) -> (RatePoint, RateSignature) {
    let policy = retry_policy();
    let plan = FaultPlan::composite(rate);
    // Three live-but-faulty peers: separate TCP connections to the
    // server, each mistreated by its own seeded injector.
    let mut live: Vec<FaultyTransport<TcpTransport>> = (0..LIVE_PEERS)
        .map(|p| {
            let conn = TcpTransport::connect(addr).expect("server is listening");
            FaultyTransport::new(conn, plan, mix(seed, rate_index as u64, p as u64))
        })
        .collect();
    // Plus one peer that is down for good: every exchange drops. The
    // quorum must degrade gracefully around it at every rate.
    let mut dead = FaultyTransport::new(
        TcpTransport::connect(addr).expect("server is listening"),
        FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::none()
        },
        mix(seed, rate_index as u64, 0xDEAD),
    );

    let mut failures = 0u64;
    let mut attempts = 0u64;
    let mut retries = 0u64;
    let mut degraded_queries = 0u64;
    let mut served_min = LIVE_PEERS + 1;
    let mut latencies_us: Vec<u64> = Vec::with_capacity(addresses.len());
    let mut request_bytes = 0u64;
    let mut response_bytes = 0u64;
    let mut history_digests = Vec::with_capacity(addresses.len());

    for (pass_qi, (qi, address)) in (0..PASSES)
        .flat_map(|_| addresses.iter().enumerate())
        .enumerate()
    {
        let spec = QuerySpec::address(address.clone());
        let started = Instant::now();
        let report = {
            let mut peers: Vec<&mut dyn Transport> =
                live.iter_mut().map(|t| t as &mut dyn Transport).collect();
            peers.push(&mut dead as &mut dyn Transport);
            query_quorum_spec(
                client,
                peers.as_mut_slice(),
                &spec,
                &policy,
                mix(seed, rate_index as u64, 0x1000 + pass_qi as u64),
            )
        };
        latencies_us.push(started.elapsed().as_micros() as u64);
        let report = match report {
            Ok(report) => report,
            Err(e) => {
                failures += 1;
                panic!(
                    "query {qi} at rate {rate} exhausted the whole quorum: {e} \
                     ({failures} failures — the retry budget must absorb every fault)"
                );
            }
        };
        // Claim 2: the merged answer IS the ground truth — a corrupted
        // response that verified would show up right here.
        let got: Vec<(u64, Hash256)> = report.histories[0]
            .transactions
            .iter()
            .map(|(height, tx)| (*height, tx.txid()))
            .collect();
        assert_eq!(
            got, truth[qi],
            "rate {rate}, query {qi}: verified history deviates from ground truth"
        );
        history_digests.push(got);

        for peer in &report.peers[..LIVE_PEERS] {
            attempts += peer.attempts;
            retries += peer.retries;
            // The dead peer is unreachable by construction; a live peer
            // must never be *rejected* — no corrupted reply may look
            // like a provably-lying peer... except a stale replay of a
            // different query's response, which verifies as exactly
            // that. Rejection is a sound outcome; losing the answer
            // would not be.
            if let PeerOutcome::Rejected(e) = &peer.outcome {
                assert!(
                    !matches!(e, lvq_node::NodeError::Verify(_)) || rate > 0.0,
                    "fault-free peer rejected for verification: {e}"
                );
            }
        }
        let served = report.served();
        served_min = served_min.min(served);
        if report.is_degraded() {
            degraded_queries += 1;
        }
        request_bytes += report.traffic.request_bytes;
        response_bytes += report.traffic.response_bytes;
    }

    let faults_injected = live.iter().map(|t| t.stats().injected()).sum::<u64>();
    let fault_stats: Vec<FaultStats> = live
        .iter()
        .map(FaultyTransport::stats)
        .chain(std::iter::once(dead.stats()))
        .collect();

    let mean_latency_us = latencies_us.iter().sum::<u64>() / latencies_us.len().max(1) as u64;
    let max_latency_us = latencies_us.iter().copied().max().unwrap_or(0);

    (
        RatePoint {
            rate_percent: rate * 100.0,
            queries: addresses.len() * PASSES,
            failures,
            faults_injected,
            attempts,
            retries,
            degraded_queries,
            served_min,
            mean_latency_us,
            max_latency_us,
        },
        RateSignature {
            fault_stats,
            attempts,
            retries,
            request_bytes,
            response_bytes,
            history_digests,
        },
    )
}

impl std::fmt::Display for Chaos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Chaos — LVQ over live TCP, {} faulty peers + 1 dead peer, {} ground-truth transactions, \
             every rate replayed twice ({})",
            self.live_peers,
            self.truth_total,
            if self.reproducible {
                "bit-reproducible"
            } else {
                "NOT reproducible"
            }
        )?;
        let mut table = Table::new(&[
            "Fault rate",
            "Queries",
            "Failures",
            "Faults",
            "Attempts",
            "Retries",
            "Peers served (min)",
            "Latency mean/max",
        ]);
        for p in &self.points {
            table.row(vec![
                format!("{:.0}%", p.rate_percent),
                p.queries.to_string(),
                p.failures.to_string(),
                p.faults_injected.to_string(),
                p.attempts.to_string(),
                p.retries.to_string(),
                format!("{} of {}", p.served_min, self.live_peers + 1),
                format!(
                    "{:.1} ms / {:.1} ms",
                    p.mean_latency_us as f64 / 1e3,
                    p.max_latency_us as f64 / 1e3
                ),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(f)?;
        let baseline = self.points.first().map(|p| p.mean_latency_us).unwrap_or(0);
        if let (Some(worst), true) = (self.points.last(), baseline > 0) {
            writeln!(
                f,
                "(latency inflation at {:.0}% faults: mean {:.2}x over the fault-free sweep; \
                 zero failed queries and zero incorrect verifications at every rate)",
                worst.rate_percent,
                worst.mean_latency_us as f64 / baseline as f64,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_sweep_succeeds_and_replays() {
        let result = run(Scale::Small, 5);
        assert_eq!(result.points.len(), RATES.len());
        assert!(result.reproducible);
        for point in &result.points {
            assert_eq!(point.failures, 0, "every query within the retry budget");
            // The dead peer degrades every query; the live ones serve.
            assert_eq!(point.degraded_queries, point.queries as u64);
            assert!(point.served_min >= 1);
        }
        // The fault-free point is exactly that.
        assert_eq!(result.points[0].faults_injected, 0);
        assert_eq!(result.points[0].retries, 0);
        // And the 20% point really does inject and really does retry.
        let worst = result.points.last().unwrap();
        assert!(worst.faults_injected > 0);
        assert!(worst.retries > 0);
    }
}
