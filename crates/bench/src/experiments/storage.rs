//! Storage ablation (paper Challenge 1): bytes a light node stores per
//! scheme, versus the naive strawman that embeds whole filters in
//! headers.

use lvq_core::{LightClient, Scheme, SchemeConfig};

use crate::report::{bytes, Table};
use crate::scale::Scale;
use crate::workloads::{build_workload, WorkloadSpec};

/// One scheme's measured light-node storage.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scheme label.
    pub label: String,
    /// Total header bytes the light node stores.
    pub total_bytes: u64,
    /// Bytes per header.
    pub per_header: u64,
}

/// The ablation data.
#[derive(Debug, Clone)]
pub struct Storage {
    /// One row per design point.
    pub rows: Vec<Row>,
    /// Chain length used.
    pub blocks: u64,
}

/// Measures header storage for each scheme and computes the naive
/// BF-in-header strawman of paper §IV-A1 for comparison.
pub fn run(scale: Scale, seed: u64) -> Storage {
    let blocks = scale.blocks();
    let mut rows = Vec::new();

    // The original strawman stores the whole filter in every header:
    // 80 base bytes + the filter itself.
    let naive_per_header = 80 + u64::from(scale.per_block_bf());
    rows.push(Row {
        label: "strawman (BF in header, §IV-A)".to_string(),
        total_bytes: blocks * naive_per_header,
        per_header: naive_per_header,
    });

    for scheme in Scheme::ALL {
        let spec = WorkloadSpec {
            seed,
            ..WorkloadSpec::paper_default(scheme, scale)
        };
        let workload = build_workload(spec);
        let config: SchemeConfig = spec.config();
        let client = LightClient::new(config, workload.chain.headers());
        let total = client.storage_bytes();
        rows.push(Row {
            label: scheme.name().to_string(),
            total_bytes: total,
            per_header: total / blocks,
        });
    }
    Storage { rows, blocks }
}

impl std::fmt::Display for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Storage ablation — light-node header storage over {} blocks",
            self.blocks
        )?;
        let mut table = Table::new(&["Design", "Per header", "Total"]);
        for row in &self.rows {
            table.row(vec![
                row.label.clone(),
                bytes(row.per_header),
                bytes(row.total_bytes),
            ]);
        }
        write!(f, "{table}")
    }
}
