//! Extra ablation (not in the paper): the number of Bloom hash
//! functions `k`, which the paper only ever sets "by default".
//!
//! More hash functions sharpen per-block filters (fewer FPM blocks) but
//! saturate merged BMT filters faster (clean checks move down the
//! tree). This sweep quantifies the trade-off the paper's default
//! hides.

use lvq_bloom::{theoretical_fpr, BloomParams};
use lvq_core::{Scheme, SchemeConfig};
use lvq_workload::WorkloadBuilder;

use crate::experiments::verified_query;
use crate::report::{bytes, Table};
use crate::scale::Scale;

/// One `(k, address)` measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Hash-function count.
    pub k: u32,
    /// `Addr1..Addr6`.
    pub addr: String,
    /// Total result bytes.
    pub total_bytes: u64,
    /// BMT endpoint count.
    pub endpoints: u64,
}

/// The sweep data.
#[derive(Debug, Clone)]
pub struct KSweep {
    /// All cells.
    pub cells: Vec<Cell>,
    /// Swept hash counts.
    pub ks: Vec<u32>,
    /// Theoretical single-block FPR at each k (for context).
    pub block_fpr: Vec<f64>,
}

/// Runs the sweep: full LVQ at the fixed BMT filter size, `k` from 1
/// to 6, same ledger throughout.
pub fn run(scale: Scale, seed: u64) -> KSweep {
    let ks: Vec<u32> = (1..=6).collect();
    let mut cells = Vec::new();
    let mut block_fpr = Vec::new();
    // Expected unique addresses per block, for the theoretical column.
    let addrs_per_block = match scale {
        Scale::Small => 30,
        Scale::Paper => 500,
    };
    for &k in &ks {
        let bloom = BloomParams::new(scale.bmt_bf(), k).expect("non-zero");
        block_fpr.push(theoretical_fpr(bloom.bits(), k, addrs_per_block));
        let config =
            SchemeConfig::new(Scheme::Lvq, bloom, scale.blocks()).expect("power-of-two segment");
        let workload = WorkloadBuilder::new(config.chain_params())
            .blocks(scale.blocks())
            .traffic(scale.traffic())
            .seed(seed)
            .probes(scale.probes())
            .build()
            .expect("scaled probes fit");
        for (i, probe) in workload.probes.iter().enumerate() {
            let (response, stats) = verified_query(&workload, &probe.address);
            cells.push(Cell {
                k,
                addr: format!("Addr{}", i + 1),
                total_bytes: response.total_bytes(),
                endpoints: stats.bmt.endpoint_count(),
            });
        }
    }
    KSweep {
        cells,
        ks,
        block_fpr,
    }
}

impl KSweep {
    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut header: Vec<String> = vec!["k".to_string(), "block FPR".to_string()];
        for i in 1..=6 {
            header.push(format!("Addr{i} size"));
        }
        header.push("Addr1 endpoints".to_string());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        for (idx, &k) in self.ks.iter().enumerate() {
            let mut row = vec![k.to_string(), format!("{:.2e}", self.block_fpr[idx])];
            for i in 1..=6 {
                let addr = format!("Addr{i}");
                let cell = self.cells.iter().find(|c| c.k == k && c.addr == addr);
                row.push(cell.map_or("-".to_string(), |c| bytes(c.total_bytes)));
            }
            let a1 = self.cells.iter().find(|c| c.k == k && c.addr == "Addr1");
            row.push(a1.map_or("-".to_string(), |c| c.endpoints.to_string()));
            table.row(row);
        }
        table
    }
}

impl std::fmt::Display for KSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation — number of Bloom hash functions k (LVQ, fixed BF size)"
        )?;
        write!(f, "{}", self.table())
    }
}
