//! Extra experiment: live follow-the-tip ingest (`repro ingest`).
//!
//! A full node that answers queries from a frozen snapshot is only
//! half a node: Bitcoin's chain grows, and the paper's verifiability
//! story must survive the growth. This experiment stands up a
//! worker-pool [`NodeServer`] over a [`LiveNode`] backed by an on-disk
//! [`lvq_store::BlockStore`], then drives a [`TipIngester`] that
//! appends freshly published blocks into the store and extends the
//! serving chain **while queries are in flight**, demonstrating:
//!
//! 1. **the tip moves for connected clients** — a light client that
//!    connected *before* ingest started observes the tip advance
//!    through incremental `GetHeadersFrom` syncs, never a full
//!    re-download;
//! 2. **every answer verifies at a pinned height** — at each
//!    checkpoint the client pins `range(1, its_own_tip)` and the
//!    verified histories match the ground-truth chain truncated at
//!    that height, even though the server's tip may already be ahead;
//! 3. **zero server errors** — concurrent append and serve never
//!    produce a malformed or rejected exchange;
//! 4. **crash-shaped restart resumes exactly** — the ingester is
//!    stopped mid-feed, the store reopened, and a fresh ingester
//!    resumes from the last persisted height with no duplicate and no
//!    lost blocks (the final tip hash equals the ground truth's).

use std::sync::Arc;
use std::time::{Duration, Instant};

use lvq_chain::Address;
use lvq_core::Scheme;
use lvq_crypto::Hash256;
use lvq_node::{
    FullNode, IngestConfig, IngestStats, LightNode, LiveNode, MemoryFeed, NodeServer, QuerySpec,
    ServerConfig, TcpTransport, TipIngester,
};
use lvq_store::StoreConfig;

use crate::report::Table;
use crate::scale::Scale;
use crate::workloads::{build_workload, built_probes, WorkloadSpec};

/// How long the experiment is willing to wait for an asynchronous
/// condition (ingest catch-up, client tip observation) before giving
/// up. Generous on purpose: the ingester polls every couple of
/// milliseconds, so in practice conditions resolve ~1000x faster.
const DEADLINE: Duration = Duration::from_secs(30);

/// One live checkpoint: the feed published up to a height, the client
/// observed the tip reach it, and every probe verified at that pinned
/// height.
#[derive(Debug, Clone, Copy)]
pub struct Checkpoint {
    /// Height the feed had published when the checkpoint was taken.
    pub published: u64,
    /// The client's own tip when it issued the pinned query.
    pub pinned_tip: u64,
    /// Headers the client gained through `GetHeadersFrom` syncs to
    /// reach this checkpoint.
    pub synced_headers: u64,
    /// Transactions verified across all probes at the pinned height.
    pub verified_txs: u64,
}

/// The experiment data.
#[derive(Debug, Clone)]
pub struct Ingest {
    /// Ground-truth chain length.
    pub blocks: u64,
    /// Blocks persisted in the store before the server came up.
    pub prefix: u64,
    /// Live checkpoints taken while the chain grew under the server.
    pub checkpoints: Vec<Checkpoint>,
    /// Ingest counters from the first (interrupted) run.
    pub first_run: IngestStats,
    /// Ingest counters from the resumed run.
    pub second_run: IngestStats,
    /// Transactions verified by the final full-chain query.
    pub final_verified_txs: u64,
    /// Server-side errors across both serving sessions (must be 0).
    pub server_errors: u64,
}

/// Polls `cond` until it holds or [`DEADLINE`] expires.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let started = Instant::now();
    while !cond() {
        assert!(started.elapsed() < DEADLINE, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Ground truth for one probe, truncated at `tip`.
fn truth_at(truth: &[(u64, Hash256)], tip: u64) -> Vec<(u64, Hash256)> {
    truth
        .iter()
        .copied()
        .filter(|(height, _)| *height <= tip)
        .collect()
}

/// Runs one pinned batch query over every probe and checks the
/// verified histories against ground truth truncated at the client's
/// tip. Returns the number of transactions verified.
fn verify_pinned(
    light: &mut LightNode,
    transport: &mut TcpTransport,
    addresses: &[Address],
    truth: &[Vec<(u64, Hash256)>],
) -> u64 {
    let pinned = light.client().tip_height();
    let spec = QuerySpec::addresses(addresses.to_vec()).range(1, pinned);
    let run = light
        .run(&spec, transport)
        .expect("pinned query against an honest growing server must succeed");
    let mut verified = 0u64;
    for (qi, history) in run.histories.iter().enumerate() {
        let got: Vec<(u64, Hash256)> = history
            .transactions
            .iter()
            .map(|(height, tx)| (*height, tx.txid()))
            .collect();
        assert_eq!(
            got,
            truth_at(&truth[qi], pinned),
            "probe {qi}: verified history at pinned tip {pinned} deviates from ground truth"
        );
        verified += got.len() as u64;
    }
    verified
}

/// Runs the experiment under full LVQ at the Fig. 12 configuration.
///
/// # Panics
///
/// Panics if any of the four claims in the module docs fails: a stuck
/// tip, a history deviating from pinned ground truth, a server error,
/// or a resume that duplicates or loses blocks.
pub fn run(scale: Scale, seed: u64) -> Ingest {
    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::paper_default(Scheme::Lvq, scale)
    };
    let workload = build_workload(spec);
    let addresses: Vec<Address> = built_probes(&workload)
        .into_iter()
        .map(|(_, address)| address)
        .collect();
    let truth: Vec<Vec<(u64, Hash256)>> = addresses
        .iter()
        .map(|a| {
            workload
                .chain
                .history_of(a)
                .into_iter()
                .map(|(height, tx)| (height, tx.txid()))
                .collect()
        })
        .collect();
    let blocks = workload.chain.tip_height();
    let truth_tip = workload.chain.tip_hash();
    let all_blocks: Vec<lvq_chain::Block> = (1..=blocks)
        .map(|h| (*workload.chain.block(h).expect("ground-truth block")).clone())
        .collect();
    let params = workload.chain.params();
    drop(workload);

    // The store starts with only a prefix persisted; everything above
    // it arrives through the live feed while the server runs.
    let prefix = blocks / 4;
    let interrupt_at = prefix + (blocks - prefix) / 2;
    let dir = std::env::temp_dir().join(format!("lvq-ingest-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = lvq_store::BlockStore::create(&dir, params, StoreConfig::default())
            .expect("fresh store");
        for block in &all_blocks[..prefix as usize] {
            store.append(block).expect("persist prefix");
        }
    }

    // ---- Phase 1: serve while the chain grows, stop mid-feed. ----
    let (chain, report) =
        lvq_store::open_chain(&dir, StoreConfig::default()).expect("reopen prefix store");
    assert!(
        report.is_clean(),
        "prefix store must open clean: {report:?}"
    );
    let store = Arc::clone(chain.source().store());
    let live = Arc::new(LiveNode::new(FullNode::new(chain).expect("known scheme")));
    let server = NodeServer::bind(Arc::clone(&live), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");
    let addr = server.local_addr();

    // The client connects BEFORE ingest starts: its whole view of the
    // growth comes through incremental `GetHeadersFrom` syncs.
    let mut transport = TcpTransport::connect(addr).expect("server is listening");
    let mut light =
        LightNode::sync_from(&mut transport, live.config()).expect("initial header sync");
    assert_eq!(
        light.client().tip_height(),
        prefix,
        "before ingest the server must expose exactly the persisted prefix"
    );

    let feed = MemoryFeed::new(all_blocks.clone());
    let publisher = feed.publisher();
    let ingester = TipIngester::spawn(
        Arc::clone(&live),
        Arc::clone(&store),
        feed,
        IngestConfig::new().with_seed(seed),
    );
    server.attach_ingest(ingester.monitor());

    // Publish in two steps and checkpoint after each: the tip must be
    // observed to advance while the server keeps answering.
    let mut checkpoints = Vec::new();
    let step1 = prefix + (blocks - prefix) / 4;
    for target in [step1, interrupt_at] {
        publisher.publish(target - publisher.published());
        let mut synced_headers = 0u64;
        wait_for("the client to observe the published tip", || {
            synced_headers += light
                .sync_new(&mut transport)
                .expect("incremental header sync")
                .new_headers();
            light.client().tip_height() >= target
        });
        assert!(
            synced_headers > 0,
            "tip advance must arrive through GetHeadersFrom"
        );
        let verified_txs = verify_pinned(&mut light, &mut transport, &addresses, &truth);
        checkpoints.push(Checkpoint {
            published: target,
            pinned_tip: light.client().tip_height(),
            synced_headers,
            verified_txs,
        });
    }

    // Stop the ingester mid-feed (blocks above `interrupt_at` are
    // still unpublished) — the crash-shaped interruption.
    let first_run = ingester.stop().expect("clean ingest stop");
    assert_eq!(first_run.resume_height, prefix);
    assert_eq!(first_run.blocks_appended, interrupt_at - prefix);
    let stats1 = server.shutdown();
    assert_eq!(stats1.errors, 0, "phase 1 served with errors");
    assert_eq!(stats1.ingest.blocks_appended, first_run.blocks_appended);
    drop(live);
    drop(store);

    // ---- Phase 2: reopen, resume, catch up, verify everything. ----
    let (chain, report) =
        lvq_store::open_chain(&dir, StoreConfig::default()).expect("reopen after interruption");
    assert!(
        report.is_clean(),
        "a stopped ingester leaves a clean store: {report:?}"
    );
    let store = Arc::clone(chain.source().store());
    let live = Arc::new(LiveNode::new(FullNode::new(chain).expect("known scheme")));
    assert_eq!(
        live.tip_height(),
        interrupt_at,
        "restart must resume from the last persisted height"
    );
    let server = NodeServer::bind(Arc::clone(&live), "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");
    let addr = server.local_addr();

    let feed = MemoryFeed::new(all_blocks);
    feed.publisher().publish_all();
    let ingester = TipIngester::spawn(
        Arc::clone(&live),
        Arc::clone(&store),
        feed,
        IngestConfig::new().with_seed(seed ^ 1),
    );
    server.attach_ingest(ingester.monitor());

    // The same light client carries over: it reconnects and keeps
    // syncing incrementally from its phase-1 tip.
    let mut transport = TcpTransport::connect(addr).expect("server is listening");
    wait_for("the client to observe the full chain", || {
        light
            .sync_new(&mut transport)
            .expect("incremental header sync");
        light.client().tip_height() >= blocks
    });
    let final_verified_txs = verify_pinned(&mut light, &mut transport, &addresses, &truth);
    let truth_total: u64 = truth.iter().map(|h| h.len() as u64).sum();
    assert_eq!(final_verified_txs, truth_total);

    let second_run = ingester.stop().expect("clean ingest stop");
    assert_eq!(second_run.resume_height, interrupt_at);
    assert_eq!(second_run.blocks_appended, blocks - interrupt_at);
    assert_eq!(
        first_run.blocks_appended + second_run.blocks_appended,
        blocks - prefix,
        "resume must neither duplicate nor lose blocks"
    );
    assert_eq!(
        live.tip_hash(),
        truth_tip,
        "the grown chain's tip hash must equal the ground truth's"
    );
    let stats2 = server.shutdown();
    assert_eq!(stats2.errors, 0, "phase 2 served with errors");

    let _ = std::fs::remove_dir_all(&dir);

    Ingest {
        blocks,
        prefix,
        checkpoints,
        first_run,
        second_run,
        final_verified_txs,
        server_errors: stats1.errors + stats2.errors,
    }
}

impl std::fmt::Display for Ingest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Live ingest — LVQ over TCP, {} blocks total, {} persisted before serving, \
             interrupted at {} and resumed ({} server errors)",
            self.blocks,
            self.prefix,
            self.first_run.resume_height + self.first_run.blocks_appended,
            self.server_errors
        )?;
        let mut table = Table::new(&[
            "Checkpoint",
            "Published",
            "Pinned tip",
            "Headers via GetHeadersFrom",
            "Verified txs",
        ]);
        for (i, c) in self.checkpoints.iter().enumerate() {
            table.row(vec![
                format!("live #{}", i + 1),
                c.published.to_string(),
                c.pinned_tip.to_string(),
                c.synced_headers.to_string(),
                c.verified_txs.to_string(),
            ]);
        }
        table.row(vec![
            "final".to_string(),
            self.blocks.to_string(),
            self.blocks.to_string(),
            "-".to_string(),
            self.final_verified_txs.to_string(),
        ]);
        write!(f, "{table}")?;
        writeln!(f)?;
        writeln!(
            f,
            "(run 1: {} blocks in {} batches, {} retries, resumed at {}; \
             run 2: {} blocks in {} batches, {} retries, resumed at {}; \
             every history verified at its pinned height)",
            self.first_run.blocks_appended,
            self.first_run.batches,
            self.first_run.retries,
            self.first_run.resume_height,
            self.second_run.blocks_appended,
            self.second_run.batches,
            self.second_run.retries,
            self.second_run.resume_height,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_grows_the_tip_and_resumes_exactly() {
        let result = run(Scale::Small, 5);
        assert_eq!(result.server_errors, 0);
        assert_eq!(result.checkpoints.len(), 2);
        // The tip really advanced, checkpoint over checkpoint.
        assert!(result.checkpoints[0].pinned_tip > result.prefix);
        assert!(result.checkpoints[1].pinned_tip > result.checkpoints[0].pinned_tip);
        for c in &result.checkpoints {
            assert!(c.synced_headers > 0, "growth must flow via GetHeadersFrom");
            assert!(c.pinned_tip >= c.published);
        }
        // run() itself asserts resume exactness; spot-check the split.
        assert_eq!(
            result.first_run.blocks_appended + result.second_run.blocks_appended,
            result.blocks - result.prefix
        );
        assert!(result.final_verified_txs > 0);
    }
}
