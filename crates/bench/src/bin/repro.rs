//! Regenerates the LVQ paper's evaluation tables and figures.
//!
//! ```text
//! repro <experiment> [--scale small|paper] [--seed N]
//!
//! experiments: all, table1, table2, table3, fig12, fig13, fig14,
//!              fig15, fig16, storage, ksweep, latency, throughput,
//!              concurrent, pool, quorum, coldstart, chaos, ingest,
//!              crashloop, reopen, reorg
//! ```
//!
//! `fig13`/`fig14`/`fig15` share one filter-size sweep; asking for any
//! of them prints all three (they are views of the same runs).

use std::process::ExitCode;
use std::time::Instant;

use lvq_bench::experiments::{
    bf_sweep, chaos, coldstart, concurrent, crashloop, fig12, fig16, ingest, k_sweep, latency,
    pool, quorum, reopen, reorg, storage, tables, throughput,
};
use lvq_bench::Scale;

struct Options {
    experiment: String,
    scale: Scale,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut experiment = None;
    let mut scale = Scale::Small;
    let mut seed = 0x1_5EED;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&v).ok_or(format!("unknown scale '{v}'"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(Options {
        experiment: experiment.unwrap_or_else(|| "all".to_string()),
        scale,
        seed,
    })
}

const USAGE: &str =
    "usage: repro <all|table1|table2|table3|fig12|fig13|fig14|fig15|fig16|storage|ksweep|latency|throughput|concurrent|pool|quorum|coldstart|chaos|ingest|crashloop|reopen|reorg> \
                     [--scale small|paper] [--seed N]";

fn main() -> ExitCode {
    // The crash-loop experiment re-invokes this binary as its serving
    // child; intercept that role before normal argument parsing.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("crashloop-child") {
        return match crashloop::child_main(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("crashloop-child: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let scale_name = match opts.scale {
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    println!(
        "# LVQ evaluation reproduction — experiment '{}', scale '{}', seed {}",
        opts.experiment, scale_name, opts.seed
    );
    println!(
        "# chain: {} blocks, per-block BF {} B, BMT BF {} B, k = {}",
        opts.scale.blocks(),
        opts.scale.per_block_bf(),
        opts.scale.bmt_bf(),
        opts.scale.hashes()
    );
    println!();

    let started = Instant::now();
    let want = |name: &str| opts.experiment == "all" || opts.experiment == name;
    let mut matched = false;

    if want("table1") {
        matched = true;
        println!("Table I — blocks to be merged");
        println!("{}", tables::table1());
    }
    if want("table2") {
        matched = true;
        println!("Table II — segment division (M = 256)");
        println!("{}", tables::table2());
    }
    if want("table3") {
        matched = true;
        println!("Table III — probe addresses (planted and verified)");
        println!("{}", tables::table3(opts.scale, opts.seed));
    }
    if want("fig12") {
        matched = true;
        println!("{}", fig12::run(opts.scale, opts.seed));
    }
    if want("fig13") || want("fig14") || want("fig15") {
        matched = true;
        println!("{}", bf_sweep::run(opts.scale, opts.seed));
    }
    if want("fig16") {
        matched = true;
        let result = fig16::run(opts.scale, opts.seed);
        println!("{result}");
        if let Some(best) = result.best_m_for("Addr6") {
            println!("(Addr6 endpoint minimum at M = {best})");
        }
        println!();
    }
    if want("storage") {
        matched = true;
        println!("{}", storage::run(opts.scale, opts.seed));
    }
    if want("latency") {
        matched = true;
        println!("{}", latency::run(opts.scale, opts.seed));
        println!();
    }
    if want("ksweep") {
        matched = true;
        println!("{}", k_sweep::run(opts.scale, opts.seed));
    }
    if want("throughput") {
        matched = true;
        println!("{}", throughput::run(opts.scale, opts.seed));
        println!();
    }
    if want("concurrent") {
        matched = true;
        println!("{}", concurrent::run(opts.scale, opts.seed));
        println!();
    }
    if want("pool") {
        matched = true;
        println!("{}", pool::run(opts.scale, opts.seed));
        println!();
    }
    if want("quorum") {
        matched = true;
        println!("{}", quorum::run(opts.scale, opts.seed));
        println!();
    }
    if want("coldstart") {
        matched = true;
        println!("{}", coldstart::run(opts.scale, opts.seed));
        println!();
    }
    if want("chaos") {
        matched = true;
        println!("{}", chaos::run(opts.scale, opts.seed));
        println!();
    }
    if want("ingest") {
        matched = true;
        println!("{}", ingest::run(opts.scale, opts.seed));
        println!();
    }
    if want("crashloop") {
        matched = true;
        let exe = std::env::current_exe().expect("own executable path");
        println!("{}", crashloop::run(opts.scale, opts.seed, &exe));
        println!();
    }
    if want("reopen") {
        matched = true;
        println!("{}", reopen::run(opts.scale, opts.seed));
        println!();
    }
    if want("reorg") {
        matched = true;
        println!("{}", reorg::run(opts.scale, opts.seed));
        println!();
    }

    if !matched {
        eprintln!("unknown experiment '{}'\n{USAGE}", opts.experiment);
        return ExitCode::FAILURE;
    }
    println!("# completed in {:.1?}", started.elapsed());
    ExitCode::SUCCESS
}
