//! Shared workload construction for the experiments.

use lvq_bloom::BloomParams;
use lvq_chain::Address;
use lvq_core::{Scheme, SchemeConfig};
use lvq_workload::{BranchSpec, ForkedWorkload, Workload, WorkloadBuilder};

use crate::scale::Scale;

/// Everything that determines one experiment chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// The scheme whose commitments the chain carries.
    pub scheme: Scheme,
    /// Bloom filter size in bytes.
    pub bf_size: u32,
    /// Segment length `M`.
    pub segment_len: u64,
    /// Experiment scale (blocks, traffic, probes).
    pub scale: Scale,
    /// RNG seed; equal seeds give bit-identical transaction streams
    /// regardless of scheme or filter size, so scheme comparisons see
    /// the *same* ledger.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's default configuration for `scheme` at `scale`:
    /// 10 KB-class filters for per-block schemes, 30 KB-class filters
    /// and `M = blocks` for BMT schemes (§VII-B).
    pub fn paper_default(scheme: Scheme, scale: Scale) -> Self {
        let bf_size = if scheme.is_per_block() {
            scale.per_block_bf()
        } else {
            scale.bmt_bf()
        };
        WorkloadSpec {
            scheme,
            bf_size,
            segment_len: scale.blocks(),
            scale,
            seed: 0x1_5EED,
        }
    }

    /// The scheme configuration this spec implies.
    pub fn config(&self) -> SchemeConfig {
        SchemeConfig::new(
            self.scheme,
            BloomParams::new(self.bf_size, self.scale.hashes()).expect("non-zero bf size"),
            self.segment_len,
        )
        .expect("power-of-two segment length")
    }
}

/// Builds the chain and plants the scaled Table III probes.
pub fn build_workload(spec: WorkloadSpec) -> Workload {
    WorkloadBuilder::new(spec.config().chain_params())
        .blocks(spec.scale.blocks())
        .traffic(spec.scale.traffic())
        .seed(spec.seed)
        .probes(spec.scale.probes())
        .build()
        .expect("probe specs are scaled to the chain length")
}

/// Builds the chain, plants the scaled Table III probes, and grows the
/// requested competing branches for reorg experiments.
pub fn build_forked_workload(spec: WorkloadSpec, branches: &[BranchSpec]) -> ForkedWorkload {
    WorkloadBuilder::new(spec.config().chain_params())
        .blocks(spec.scale.blocks())
        .traffic(spec.scale.traffic())
        .seed(spec.seed)
        .probes(spec.scale.probes())
        .build_forked(branches)
        .expect("probe and branch specs are scaled to the chain length")
}

/// The probes of a built workload, labelled `Addr1..Addr6` as the paper
/// does.
pub fn built_probes(workload: &Workload) -> Vec<(String, Address)> {
    workload
        .probes
        .iter()
        .enumerate()
        .map(|(i, p)| (format!("Addr{}", i + 1), p.address.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_follow_section_seven() {
        let strawman = WorkloadSpec::paper_default(Scheme::Strawman, Scale::Paper);
        assert_eq!(strawman.bf_size, 10_000);
        let lvq = WorkloadSpec::paper_default(Scheme::Lvq, Scale::Paper);
        assert_eq!(lvq.bf_size, 30_000);
        assert_eq!(lvq.segment_len, 4096);
    }

    #[test]
    fn workload_builds_at_small_scale() {
        let w = build_workload(WorkloadSpec::paper_default(Scheme::Lvq, Scale::Small));
        assert_eq!(w.chain.tip_height(), Scale::Small.blocks());
        let probes = built_probes(&w);
        assert_eq!(probes.len(), 6);
        assert_eq!(probes[0].0, "Addr1");
    }
}
