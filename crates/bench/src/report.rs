//! Table formatting helpers for experiment output.

/// Formats a byte count the way the paper does (decimal units:
/// KB = 10³ B, MB = 10⁶ B; see DESIGN.md interpretation 5).
///
/// # Examples
///
/// ```
/// assert_eq!(lvq_bench::report::bytes(950), "950 B");
/// assert_eq!(lvq_bench::report::bytes(41_120_000), "41.12 MB");
/// ```
pub fn bytes(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.2} MB", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2} KB", n as f64 / 1e3)
    } else {
        format!("{n} B")
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn percent(x: f64) -> String {
    format!("{:.1} %", x * 100.0)
}

/// A simple aligned text table (markdown-compatible).
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders as a markdown table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(bytes(0), "0 B");
        assert_eq!(bytes(999), "999 B");
        assert_eq!(bytes(1_000), "1.00 KB");
        assert_eq!(bytes(30_000), "30.00 KB");
        assert_eq!(bytes(843_220_000), "843.22 MB");
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.starts_with("| a | bb |\n|---|----|\n"));
        assert!(s.contains("| 1 | 2  |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        Table::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }
}
