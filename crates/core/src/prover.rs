//! The full-node side: response generation (paper §V).

use lvq_bloom::BloomFilter;
use lvq_chain::{Address, BlockSource, Chain, InMemoryBlocks, InMemoryTables, TableSource};
use lvq_merkle::bmt::{self, BmtBatchNode, BmtBatchProof, BmtProofNode};

use crate::batch::{
    BatchBlockEntry, BatchPerBlockResponse, BatchQueryResponse, BatchSegmentBundle,
    BatchSegmentedResponse,
};
use crate::error::ProveError;
use crate::fragment::{BlockFragment, ExistenceProof, TxWithBranch};
use crate::result::{
    BlockEntry, PerBlockResponse, QueryResponse, SegmentBundle, SegmentedResponse,
};
use crate::scheme::{Scheme, SchemeConfig};
use crate::segment::{segments, Segment};
use crate::stats::ProverStats;

/// A full node's query answering engine.
///
/// Borrowing the [`Chain`] immutably, a prover turns an address into the
/// scheme's [`QueryResponse`] together with [`ProverStats`] describing
/// what it cost (endpoint counts, FPM hits, fragment census).
///
/// The prover is generic over the chain's [`BlockSource`]: against the
/// default in-memory source block bodies are already deserialized, while
/// against a disk-backed source they are materialized lazily — only for
/// the (few) blocks whose filters actually matched.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Prover<'a, S: BlockSource = InMemoryBlocks, T: TableSource = InMemoryTables> {
    chain: &'a Chain<S, T>,
    config: SchemeConfig,
}

impl<S: BlockSource, T: TableSource> Clone for Prover<'_, S, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: BlockSource, T: TableSource> Copy for Prover<'_, S, T> {}

impl<'a, S: BlockSource, T: TableSource> Prover<'a, S, T> {
    /// Creates a prover for `chain` with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ProveError::SchemeMismatch`] if the chain was built
    /// with different parameters than `config` implies.
    pub fn new(chain: &'a Chain<S, T>, config: SchemeConfig) -> Result<Self, ProveError> {
        if chain.params() != config.chain_params() {
            return Err(ProveError::SchemeMismatch);
        }
        Ok(Prover { chain, config })
    }

    /// Creates a prover, inferring the configuration from the chain.
    ///
    /// # Errors
    ///
    /// Returns [`ProveError::SchemeMismatch`] if the chain's commitment
    /// policy matches none of the four schemes.
    pub fn from_chain(chain: &'a Chain<S, T>) -> Result<Self, ProveError> {
        let config =
            SchemeConfig::from_chain_params(chain.params()).ok_or(ProveError::SchemeMismatch)?;
        Ok(Prover { chain, config })
    }

    /// This prover's configuration.
    pub fn config(&self) -> SchemeConfig {
        self.config
    }

    /// Answers a transaction-history query for `address` over the whole
    /// chain.
    ///
    /// # Errors
    ///
    /// Returns a [`ProveError`] only on prover-side inconsistencies
    /// (wrong scheme, corrupted chain); honest configurations never
    /// fail.
    pub fn respond(&self, address: &Address) -> Result<(QueryResponse, ProverStats), ProveError> {
        self.respond_over(address, 1, self.chain.tip_height())
    }

    /// Answers a query restricted to blocks `lo..=hi` (paper §VII-A:
    /// "a query of larger range can be performed similarly" — and so
    /// can a smaller one).
    ///
    /// BMT roots only exist for canonical dyadic spans, so a range
    /// query reuses the canonical segments that intersect the range;
    /// at the left boundary the segment proof may cover blocks below
    /// `lo`, whose failed leaves then simply need no block-level
    /// fragment. The verifier applies the same rule
    /// ([`crate::LightClient::verify_range`]).
    ///
    /// # Errors
    ///
    /// Returns [`ProveError::InvalidRange`] unless
    /// `1 ≤ lo ≤ hi ≤ tip`.
    pub fn respond_range(
        &self,
        address: &Address,
        lo: u64,
        hi: u64,
    ) -> Result<(QueryResponse, ProverStats), ProveError> {
        if lo == 0 || lo > hi || hi > self.chain.tip_height() {
            return Err(ProveError::InvalidRange {
                lo,
                hi,
                tip: self.chain.tip_height(),
            });
        }
        self.respond_over(address, lo, hi)
    }

    /// Shared implementation; `lo = 1, hi = 0` encodes the empty chain.
    fn respond_over(
        &self,
        address: &Address,
        lo: u64,
        hi: u64,
    ) -> Result<(QueryResponse, ProverStats), ProveError> {
        let positions = BloomFilter::bit_positions(self.config.bloom(), address.as_bytes());
        let mut stats = ProverStats::default();
        let response = if self.config.scheme().is_per_block() {
            QueryResponse::PerBlock(
                self.respond_per_block(address, lo, hi, &positions, &mut stats)?,
            )
        } else {
            QueryResponse::Segmented(
                self.respond_segmented(address, lo, hi, &positions, &mut stats)?,
            )
        };
        Ok((response, stats))
    }

    /// Strawman / LVQ-without-BMT: one `(BF, fragment)` entry per block
    /// (paper §IV-A, Fig. 6).
    fn respond_per_block(
        &self,
        address: &Address,
        lo: u64,
        hi: u64,
        positions: &[u64],
        stats: &mut ProverStats,
    ) -> Result<PerBlockResponse, ProveError> {
        let mut entries = Vec::with_capacity(hi.saturating_sub(lo) as usize + 1);
        for height in lo..=hi {
            let filter = self.chain.leaf_filter(height)?;
            let fragment = if filter.check_positions(positions).is_clean() {
                BlockFragment::Empty
            } else {
                self.resolve_block(height, address, stats)?
            };
            stats.fragments.record(&fragment);
            entries.push(BlockEntry { filter, fragment });
        }
        Ok(PerBlockResponse { entries })
    }

    /// LVQ / LVQ-without-SMT: one merged BMT proof per (sub-)segment
    /// plus block-level fragments for failed leaves (paper §V).
    fn respond_segmented(
        &self,
        address: &Address,
        lo: u64,
        hi: u64,
        positions: &[u64],
        stats: &mut ProverStats,
    ) -> Result<SegmentedResponse, ProveError> {
        let mut bundles = Vec::new();
        for seg in segments(hi, self.config.segment_len()) {
            if seg.hi < lo {
                // Entirely below the queried range.
                continue;
            }
            let source = self.chain.segment_source(seg.lo, seg.hi)?;
            let proof = bmt::prove(&source, positions)?;
            stats.bmt.merge(&proof.stats());

            let mut fragments = Vec::new();
            for height in failed_leaves(proof.root(), seg.lo, seg.hi) {
                if height < lo {
                    // Proven to match, but outside the queried range: no
                    // block-level resolution is owed.
                    continue;
                }
                let fragment = self.resolve_block(height, address, stats)?;
                stats.fragments.record(&fragment);
                fragments.push((height, fragment));
            }
            bundles.push(SegmentBundle { proof, fragments });
        }
        Ok(SegmentedResponse { segments: bundles })
    }

    /// Answers one batched query for several addresses over the whole
    /// chain (the multi-address counterpart of [`Prover::respond`]).
    ///
    /// Under the BMT schemes, each segment receives a single shared
    /// descent ([`bmt::prove_multi`]) serving every address's bit
    /// positions; under the per-block schemes, each block's filter is
    /// included once for all addresses. With the `parallel` feature
    /// enabled, segment proofs are generated on scoped worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ProveError::EmptyBatch`] for an empty address list, and
    /// otherwise fails only on prover-side inconsistencies, exactly as
    /// [`Prover::respond`].
    pub fn respond_batch(
        &self,
        addresses: &[Address],
    ) -> Result<(BatchQueryResponse, ProverStats), ProveError> {
        self.respond_batch_over(addresses, 1, self.chain.tip_height())
    }

    /// Answers a batched query restricted to blocks `lo..=hi` — the
    /// multi-address counterpart of [`Prover::respond_range`], with the
    /// same boundary rule: a left-boundary segment's proof may cover
    /// blocks below `lo`, whose failed leaves then need no block-level
    /// fragment for any address.
    ///
    /// # Errors
    ///
    /// Returns [`ProveError::EmptyBatch`] for an empty address list and
    /// [`ProveError::InvalidRange`] unless `1 ≤ lo ≤ hi ≤ tip`.
    pub fn respond_batch_range(
        &self,
        addresses: &[Address],
        lo: u64,
        hi: u64,
    ) -> Result<(BatchQueryResponse, ProverStats), ProveError> {
        if lo == 0 || lo > hi || hi > self.chain.tip_height() {
            return Err(ProveError::InvalidRange {
                lo,
                hi,
                tip: self.chain.tip_height(),
            });
        }
        self.respond_batch_over(addresses, lo, hi)
    }

    /// Shared implementation; `lo = 1, hi = 0` encodes the empty chain.
    fn respond_batch_over(
        &self,
        addresses: &[Address],
        lo: u64,
        hi: u64,
    ) -> Result<(BatchQueryResponse, ProverStats), ProveError> {
        if addresses.is_empty() {
            return Err(ProveError::EmptyBatch);
        }
        let position_sets: Vec<Vec<u64>> = addresses
            .iter()
            .map(|a| BloomFilter::bit_positions(self.config.bloom(), a.as_bytes()))
            .collect();
        let mut stats = ProverStats::default();
        let response = if self.config.scheme().is_per_block() {
            BatchQueryResponse::PerBlock(self.respond_batch_per_block(
                addresses,
                lo,
                hi,
                &position_sets,
                &mut stats,
            )?)
        } else {
            BatchQueryResponse::Segmented(self.respond_batch_segmented(
                addresses,
                lo,
                hi,
                &position_sets,
                &mut stats,
            )?)
        };
        Ok((response, stats))
    }

    /// Per-block schemes: each block's filter once, then one fragment
    /// per address.
    fn respond_batch_per_block(
        &self,
        addresses: &[Address],
        lo: u64,
        hi: u64,
        position_sets: &[Vec<u64>],
        stats: &mut ProverStats,
    ) -> Result<BatchPerBlockResponse, ProveError> {
        let mut entries = Vec::with_capacity(hi.saturating_sub(lo) as usize + 1);
        for height in lo..=hi {
            let filter = self.chain.leaf_filter(height)?;
            let mut fragments = Vec::with_capacity(addresses.len());
            for (address, positions) in addresses.iter().zip(position_sets) {
                let fragment = if filter.check_positions(positions).is_clean() {
                    BlockFragment::Empty
                } else {
                    self.resolve_block(height, address, stats)?
                };
                stats.fragments.record(&fragment);
                fragments.push(fragment);
            }
            entries.push(BatchBlockEntry { filter, fragments });
        }
        Ok(BatchPerBlockResponse { entries })
    }

    /// BMT schemes: one shared multi-address proof per (sub-)segment,
    /// then per-address fragment sections for its matched leaves.
    ///
    /// Only segments intersecting `lo..=hi` are included, and failed
    /// leaves below `lo` (a boundary segment's prefix) are owed no
    /// fragment — the batch analogue of [`Prover::respond_range`]'s
    /// boundary rule.
    fn respond_batch_segmented(
        &self,
        addresses: &[Address],
        lo: u64,
        hi: u64,
        position_sets: &[Vec<u64>],
        stats: &mut ProverStats,
    ) -> Result<BatchSegmentedResponse, ProveError> {
        let segs: Vec<Segment> = segments(hi, self.config.segment_len())
            .into_iter()
            .filter(|seg| seg.hi >= lo)
            .collect();
        let proofs = self.batch_segment_proofs(&segs, position_sets)?;

        let mut bundles = Vec::with_capacity(segs.len());
        for (seg, proof) in segs.iter().zip(proofs) {
            stats.batch_bmt.merge(&proof.stats());
            let mut sections = Vec::with_capacity(addresses.len());
            for (j, address) in addresses.iter().enumerate() {
                let mut section = Vec::new();
                for height in batch_failed_leaves(proof.root(), seg.lo, seg.hi, position_sets, j) {
                    if height < lo {
                        // Proven to match, but outside the queried
                        // range: no block-level resolution is owed.
                        continue;
                    }
                    let fragment = self.resolve_block(height, address, stats)?;
                    stats.fragments.record(&fragment);
                    section.push((height, fragment));
                }
                sections.push(section);
            }
            bundles.push(BatchSegmentBundle { proof, sections });
        }
        Ok(BatchSegmentedResponse { segments: bundles })
    }

    /// Generates the shared proof for every segment, sequentially.
    #[cfg(not(feature = "parallel"))]
    fn batch_segment_proofs(
        &self,
        segs: &[Segment],
        position_sets: &[Vec<u64>],
    ) -> Result<Vec<BmtBatchProof>, ProveError> {
        segs.iter()
            .map(|seg| {
                let source = self.chain.segment_source(seg.lo, seg.hi)?;
                Ok(bmt::prove_multi(&source, position_sets)?)
            })
            .collect()
    }

    /// Generates the shared proof for every segment on scoped worker
    /// threads (one per segment; segments are few and coarse-grained).
    ///
    /// The chain's span-filter cache is lock-guarded, so concurrent
    /// descents share memoised filters instead of recomputing them.
    #[cfg(feature = "parallel")]
    fn batch_segment_proofs(
        &self,
        segs: &[Segment],
        position_sets: &[Vec<u64>],
    ) -> Result<Vec<BmtBatchProof>, ProveError> {
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = segs
                .iter()
                .map(|seg| {
                    scope.spawn(move || -> Result<BmtBatchProof, ProveError> {
                        let source = self.chain.segment_source(seg.lo, seg.hi)?;
                        Ok(bmt::prove_multi(&source, position_sets)?)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("segment proof worker panicked"))
                .collect()
        })
    }

    /// Consults a block body to resolve a failed filter check into the
    /// scheme's fragment (the table in [`BlockFragment`]'s docs).
    fn resolve_block(
        &self,
        height: u64,
        address: &Address,
        stats: &mut ProverStats,
    ) -> Result<BlockFragment, ProveError> {
        stats.blocks_resolved += 1;
        let block = self.chain.block(height)?;
        let indices = block.tx_indices_for(address);
        let existent = !indices.is_empty();
        if !existent {
            stats.fpm_blocks += 1;
        }

        Ok(match (self.config.scheme(), existent) {
            // Existent cases.
            (Scheme::Strawman, true) => {
                BlockFragment::MerkleBranches(self.branches_for(&block, &indices))
            }
            (Scheme::LvqWithoutBmt | Scheme::Lvq, true) => {
                let smt = self.chain.address_smt(height)?;
                BlockFragment::Existence(ExistenceProof {
                    smt: smt.prove(address.as_bytes()),
                    transactions: self.branches_for(&block, &indices),
                })
            }
            (Scheme::LvqWithoutSmt, true) => {
                BlockFragment::IntegralBlock(Box::new((*block).clone()))
            }
            // FPM cases.
            (Scheme::Strawman | Scheme::LvqWithoutSmt, false) => {
                BlockFragment::IntegralBlock(Box::new((*block).clone()))
            }
            (Scheme::LvqWithoutBmt | Scheme::Lvq, false) => {
                let smt = self.chain.address_smt(height)?;
                BlockFragment::AbsenceSmt(smt.prove(address.as_bytes()))
            }
        })
    }

    fn branches_for(&self, block: &lvq_chain::Block, indices: &[usize]) -> Vec<TxWithBranch> {
        let tree = block.tx_tree();
        indices
            .iter()
            .map(|&i| TxWithBranch {
                transaction: block.transactions[i].clone(),
                branch: tree.branch(i).expect("index from the same block"),
            })
            .collect()
    }
}

/// Collects the heights of leaf endpoints whose filters match address
/// `j`'s positions, in ascending order — the per-address failed leaves
/// of a shared batch proof.
fn batch_failed_leaves(
    node: &BmtBatchNode,
    lo: u64,
    hi: u64,
    position_sets: &[Vec<u64>],
    j: usize,
) -> Vec<u64> {
    fn walk(node: &BmtBatchNode, lo: u64, hi: u64, positions: &[u64], out: &mut Vec<u64>) {
        match node {
            BmtBatchNode::Leaf { filter } => {
                if !filter.check_positions(positions).is_clean() {
                    out.push(lo);
                }
            }
            BmtBatchNode::CleanNode { .. } => {}
            BmtBatchNode::Branch { left, right } => {
                let mid = lo + (hi - lo) / 2;
                walk(left, lo, mid, positions, out);
                walk(right, mid + 1, hi, positions, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(node, lo, hi, &position_sets[j], &mut out);
    out
}

/// Collects the failed-leaf heights of a proof in ascending order by
/// mirroring the span arithmetic of the descent.
fn failed_leaves(node: &BmtProofNode, lo: u64, hi: u64) -> Vec<u64> {
    fn walk(node: &BmtProofNode, lo: u64, hi: u64, out: &mut Vec<u64>) {
        match node {
            BmtProofNode::CleanLeaf { .. } | BmtProofNode::CleanNode { .. } => {}
            BmtProofNode::FailedLeaf { .. } => out.push(lo),
            BmtProofNode::Branch { left, right } => {
                let mid = lo + (hi - lo) / 2;
                walk(left, lo, mid, out);
                walk(right, mid + 1, hi, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(node, lo, hi, &mut out);
    out
}
