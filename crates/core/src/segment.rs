//! Segment arithmetic: paper Algorithm 1, Table I, §V-B and Table II.
//!
//! A chain with segment length `M` (a power of two) is cut into
//! *complete segments* of `M` blocks; the trailing partial segment is
//! further cut into dyadic *sub-segments* following the binary expansion
//! of its length (paper Eq. 5/6, Table II). The defining invariant —
//! verified exhaustively by the tests — is that **the last block of
//! every (sub-)segment commits a BMT merging exactly that
//! (sub-)segment**, so a light node can check one BMT proof per segment
//! against a header it already stores.

pub use lvq_merkle::bmt::merge_count;

/// One (sub-)segment: an inclusive, dyadically-sized block range whose
/// last block commits the BMT over exactly this range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// First block height.
    pub lo: u64,
    /// Last block height (the block whose header carries the BMT root
    /// for this segment).
    pub hi: u64,
}

impl Segment {
    /// Number of blocks in the segment.
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Segments are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `height` lies inside the segment.
    pub fn contains(&self, height: u64) -> bool {
        self.lo <= height && height <= self.hi
    }
}

/// Splits heights `1..=tip` into complete segments and the dyadic
/// sub-segments of the trailing partial segment (paper §V-B).
///
/// # Panics
///
/// Panics if `segment_len` is not a power of two (enforced upstream by
/// [`crate::SchemeConfig`]).
///
/// # Examples
///
/// Paper Table II (`M = 256`, blocks indexed from 1):
///
/// ```
/// use lvq_core::segment::{segments, Segment};
///
/// let segs = segments(464, 256);
/// assert_eq!(
///     segs,
///     vec![
///         Segment { lo: 1, hi: 256 },
///         Segment { lo: 257, hi: 384 },
///         Segment { lo: 385, hi: 448 },
///         Segment { lo: 449, hi: 464 },
///     ],
/// );
/// ```
pub fn segments(tip: u64, segment_len: u64) -> Vec<Segment> {
    assert!(
        segment_len > 0 && segment_len & (segment_len - 1) == 0,
        "segment length must be a power of two"
    );
    let mut out = Vec::new();
    let complete = tip / segment_len;
    for i in 0..complete {
        out.push(Segment {
            lo: i * segment_len + 1,
            hi: (i + 1) * segment_len,
        });
    }
    // Paper Eq. 6: decompose the remainder from the highest power of two
    // downwards.
    let mut start = complete * segment_len + 1;
    let mut rem = tip % segment_len;
    while rem > 0 {
        let width = 1u64 << (63 - rem.leading_zeros());
        out.push(Segment {
            lo: start,
            hi: start + width - 1,
        });
        start += width;
        rem -= width;
    }
    out
}

/// In-segment position (1-based) of `height`: the paper's `l`, with
/// `l = M` for the last block of a complete segment.
pub fn segment_position(height: u64, segment_len: u64) -> u64 {
    let r = height % segment_len;
    if r == 0 {
        segment_len
    } else {
        r
    }
}

/// The block range `height` merges into its BMT (paper Table I):
/// `merge_count` trailing blocks ending at `height`.
pub fn merged_range(height: u64, segment_len: u64) -> Segment {
    let count = merge_count(segment_position(height, segment_len));
    Segment {
        lo: height - count + 1,
        hi: height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one() {
        // Paper Table I: height → blocks merged (M ≥ 8).
        let cases = [
            (1u64, vec![1u64]),
            (2, vec![1, 2]),
            (3, vec![3]),
            (4, vec![1, 2, 3, 4]),
            (5, vec![5]),
            (6, vec![5, 6]),
            (7, vec![7]),
            (8, vec![1, 2, 3, 4, 5, 6, 7, 8]),
        ];
        for (height, blocks) in cases {
            let range = merged_range(height, 8);
            let got: Vec<u64> = (range.lo..=range.hi).collect();
            assert_eq!(got, blocks, "height {height}");
        }
    }

    #[test]
    fn table_two() {
        // Paper Table II: M = 256. The table lists the trailing partial
        // segment's sub-segments; `segments` additionally returns the
        // complete segment [1,256].
        let cases: [(u64, Vec<(u64, u64)>); 3] = [
            (464, vec![(257, 384), (385, 448), (449, 464)]),
            (465, vec![(257, 384), (385, 448), (449, 464), (465, 465)]),
            (466, vec![(257, 384), (385, 448), (449, 464), (465, 466)]),
        ];
        for (tip, subs) in cases {
            let segs = segments(tip, 256);
            assert_eq!(segs[0], Segment { lo: 1, hi: 256 });
            let got: Vec<(u64, u64)> = segs[1..].iter().map(|s| (s.lo, s.hi)).collect();
            assert_eq!(got, subs, "tip {tip}");
        }
    }

    #[test]
    fn exact_multiple_has_only_complete_segments() {
        let segs = segments(512, 256);
        assert_eq!(
            segs,
            vec![Segment { lo: 1, hi: 256 }, Segment { lo: 257, hi: 512 }]
        );
    }

    #[test]
    fn zero_tip_has_no_segments() {
        assert!(segments(0, 256).is_empty());
    }

    #[test]
    fn segment_len_one_degenerates_to_blocks() {
        let segs = segments(3, 1);
        assert_eq!(segs.len(), 3);
        assert!(segs.iter().all(|s| s.len() == 1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        segments(10, 3);
    }

    /// The §V invariant everything rests on: for every tip and every M,
    /// the segments tile `1..=tip`, each has dyadic length, and each
    /// segment's last block merges exactly the segment.
    #[test]
    fn invariant_last_block_merges_its_segment() {
        for m in [1u64, 2, 4, 8, 16, 64, 256] {
            for tip in 1..=700u64 {
                let segs = segments(tip, m);
                let mut next = 1;
                for seg in &segs {
                    assert_eq!(seg.lo, next, "tiling break at tip={tip} m={m}");
                    let len = seg.len();
                    assert!(len.is_power_of_two());
                    assert!(len <= m);
                    assert_eq!(
                        merged_range(seg.hi, m),
                        *seg,
                        "merge mismatch at tip={tip} m={m} seg={seg:?}"
                    );
                    next = seg.hi + 1;
                }
                assert_eq!(next, tip + 1, "coverage break at tip={tip} m={m}");
            }
        }
    }

    #[test]
    fn sub_segment_widths_decrease() {
        // Eq. 6 emits powers from high to low, so widths strictly
        // decrease within the partial segment.
        for tip in 1..=256u64 {
            let segs = segments(tip, 256);
            let widths: Vec<u64> = segs.iter().map(Segment::len).collect();
            for pair in widths.windows(2) {
                if pair[0] != 256 {
                    assert!(pair[0] > pair[1], "tip {tip}: {widths:?}");
                }
            }
        }
    }

    #[test]
    fn positions() {
        assert_eq!(segment_position(1, 8), 1);
        assert_eq!(segment_position(8, 8), 8);
        assert_eq!(segment_position(9, 8), 1);
        assert_eq!(segment_position(16, 8), 8);
        assert_eq!(segment_position(5, 1), 1);
    }
}
