//! The four evaluated query schemes.

use lvq_bloom::BloomParams;
use lvq_chain::{ChainError, ChainParams, CommitmentPolicy};

/// The four systems compared in paper §VII-B / Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// The strawman *variant*: headers commit `H(BF)`; the full node
    /// transmits each block's BF plus Merkle branches (existent) or the
    /// integral block (FPM). No appearance-count proof (Challenge 3
    /// remains open — verification is correctness-only).
    Strawman,
    /// LVQ without BMT: per-block BF transmission as in the strawman,
    /// but SMT proofs replace integral blocks (FPM) and prove appearance
    /// counts (existence).
    LvqWithoutBmt,
    /// LVQ without SMT: segment BMT proofs avoid per-block BF
    /// transmission; every failed leaf falls back to an integral block
    /// (an FPM cannot be disproven and an appearance count cannot be
    /// proven without SMT).
    LvqWithoutSmt,
    /// Full LVQ: BMT segment proofs plus SMT count/inexistence proofs.
    Lvq,
}

impl Scheme {
    /// All four schemes, in the paper's Fig. 12 order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Strawman,
        Scheme::LvqWithoutBmt,
        Scheme::LvqWithoutSmt,
        Scheme::Lvq,
    ];

    /// The header commitments this scheme requires.
    pub fn policy(self) -> CommitmentPolicy {
        match self {
            Scheme::Strawman => CommitmentPolicy::strawman(),
            Scheme::LvqWithoutBmt => CommitmentPolicy::lvq_without_bmt(),
            Scheme::LvqWithoutSmt => CommitmentPolicy::lvq_without_smt(),
            Scheme::Lvq => CommitmentPolicy::lvq(),
        }
    }

    /// True if the scheme transmits one BF per block (no BMT merging).
    pub fn is_per_block(self) -> bool {
        matches!(self, Scheme::Strawman | Scheme::LvqWithoutBmt)
    }

    /// True if the scheme proves appearance counts with SMT.
    pub fn has_smt(self) -> bool {
        matches!(self, Scheme::LvqWithoutBmt | Scheme::Lvq)
    }

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Strawman => "strawman",
            Scheme::LvqWithoutBmt => "LVQ w/o BMT",
            Scheme::LvqWithoutSmt => "LVQ w/o SMT",
            Scheme::Lvq => "LVQ",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A scheme plus the numeric knobs shared by prover and verifier.
///
/// # Examples
///
/// ```
/// use lvq_bloom::BloomParams;
/// use lvq_core::{Scheme, SchemeConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Paper §VII-B: BMT schemes use 30 KB filters and M = 4096.
/// let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(30_000, 2)?, 4096)?;
/// assert_eq!(config.scheme(), Scheme::Lvq);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeConfig {
    scheme: Scheme,
    bloom: BloomParams,
    segment_len: u64,
}

impl SchemeConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::InvalidSegmentLen`] if `segment_len` is not
    /// a power of two.
    pub fn new(scheme: Scheme, bloom: BloomParams, segment_len: u64) -> Result<Self, ChainError> {
        // Reuse the chain-params validation.
        ChainParams::new(bloom, segment_len, scheme.policy())?;
        Ok(SchemeConfig {
            scheme,
            bloom,
            segment_len,
        })
    }

    /// The scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Bloom parameters every block's filter uses.
    pub fn bloom(&self) -> BloomParams {
        self.bloom
    }

    /// The paper's `M`.
    pub fn segment_len(&self) -> u64 {
        self.segment_len
    }

    /// The chain parameters a chain for this scheme must be built with.
    pub fn chain_params(&self) -> ChainParams {
        ChainParams::new(self.bloom, self.segment_len, self.scheme.policy())
            .expect("validated at construction")
    }

    /// Recovers the configuration from a chain's parameters, or `None`
    /// if the chain's commitment policy matches no scheme.
    pub fn from_chain_params(params: ChainParams) -> Option<Self> {
        let scheme = Scheme::ALL
            .into_iter()
            .find(|s| s.policy() == params.policy())?;
        Some(SchemeConfig {
            scheme,
            bloom: params.bloom(),
            segment_len: params.segment_len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_chain_params() {
        for scheme in Scheme::ALL {
            let config = SchemeConfig::new(scheme, BloomParams::new(100, 2).unwrap(), 16).unwrap();
            let back = SchemeConfig::from_chain_params(config.chain_params()).unwrap();
            assert_eq!(back, config);
        }
    }

    #[test]
    fn predicates() {
        assert!(Scheme::Strawman.is_per_block());
        assert!(Scheme::LvqWithoutBmt.is_per_block());
        assert!(!Scheme::Lvq.is_per_block());
        assert!(!Scheme::LvqWithoutSmt.has_smt());
        assert!(Scheme::Lvq.has_smt());
    }

    #[test]
    fn invalid_segment_rejected() {
        assert!(SchemeConfig::new(Scheme::Lvq, BloomParams::new(100, 2).unwrap(), 3).is_err());
    }

    #[test]
    fn names_are_paper_labels() {
        assert_eq!(Scheme::Lvq.to_string(), "LVQ");
        assert_eq!(Scheme::Strawman.to_string(), "strawman");
    }
}
