//! Query response types and exact size accounting.

use lvq_bloom::BloomFilter;
use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_merkle::BmtProof;

use crate::fragment::BlockFragment;

/// One block's worth of a per-block response: the transmitted Bloom
/// filter (the light node only stores `H(BF)`) and the fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEntry {
    /// The block's address Bloom filter.
    pub filter: BloomFilter,
    /// The block's fragment.
    pub fragment: BlockFragment,
}

impl Encodable for BlockEntry {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.filter.encode_into(out);
        self.fragment.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.filter.encoded_len() + self.fragment.encoded_len()
    }
}

impl Decodable for BlockEntry {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BlockEntry {
            filter: BloomFilter::decode_from(reader)?,
            fragment: BlockFragment::decode_from(reader)?,
        })
    }
}

/// Response of the per-block schemes (strawman, LVQ without BMT): one
/// entry per block, heights `1..=tip` in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerBlockResponse {
    /// One entry per block, in height order.
    pub entries: Vec<BlockEntry>,
}

impl Encodable for PerBlockResponse {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.entries.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.entries.encoded_len()
    }
}

impl Decodable for PerBlockResponse {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PerBlockResponse {
            entries: Vec::<BlockEntry>::decode_from(reader)?,
        })
    }
}

/// One (sub-)segment of a BMT-scheme response: the merged BMT proof
/// plus a fragment for every failed leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentBundle {
    /// The merged BMT branch proof over the segment (paper Fig. 11).
    pub proof: BmtProof,
    /// `(height, fragment)` for each failed leaf, in height order.
    pub fragments: Vec<(u64, BlockFragment)>,
}

impl Encodable for SegmentBundle {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.proof.encode_into(out);
        lvq_codec::write_compact_size(out, self.fragments.len() as u64);
        for (height, fragment) in &self.fragments {
            lvq_codec::write_compact_size(out, *height);
            fragment.encode_into(out);
        }
    }

    fn encoded_len(&self) -> usize {
        self.proof.encoded_len()
            + lvq_codec::compact_size_len(self.fragments.len() as u64)
            + self
                .fragments
                .iter()
                .map(|(h, f)| lvq_codec::compact_size_len(*h) + f.encoded_len())
                .sum::<usize>()
    }
}

impl Decodable for SegmentBundle {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let proof = BmtProof::decode_from(reader)?;
        let count = reader.read_len()?;
        let mut fragments = Vec::with_capacity(count.min(reader.remaining()));
        for _ in 0..count {
            let height = lvq_codec::read_compact_size(reader)?;
            let fragment = BlockFragment::decode_from(reader)?;
            fragments.push((height, fragment));
        }
        Ok(SegmentBundle { proof, fragments })
    }
}

/// Response of the BMT schemes (LVQ without SMT, full LVQ): one bundle
/// per (sub-)segment in the verifier's own division order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentedResponse {
    /// One bundle per segment, in segment order.
    pub segments: Vec<SegmentBundle>,
}

impl Encodable for SegmentedResponse {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.segments.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.segments.encoded_len()
    }
}

impl Decodable for SegmentedResponse {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SegmentedResponse {
            segments: Vec::<SegmentBundle>::decode_from(reader)?,
        })
    }
}

/// A complete query response — the object whose encoded size the paper's
/// evaluation measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResponse {
    /// Per-block schemes.
    PerBlock(PerBlockResponse),
    /// BMT schemes.
    Segmented(SegmentedResponse),
}

impl QueryResponse {
    /// Total response size in bytes — the paper's "size of query
    /// results".
    pub fn total_bytes(&self) -> u64 {
        self.encoded_len() as u64
    }

    /// Category-by-category size breakdown.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        SizeBreakdown::of(self)
    }
}

impl Encodable for QueryResponse {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            QueryResponse::PerBlock(r) => {
                out.push(0);
                r.encode_into(out);
            }
            QueryResponse::Segmented(r) => {
                out.push(1);
                r.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            QueryResponse::PerBlock(r) => r.encoded_len(),
            QueryResponse::Segmented(r) => r.encoded_len(),
        }
    }
}

impl Decodable for QueryResponse {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match reader.read_u8()? {
            0 => QueryResponse::PerBlock(PerBlockResponse::decode_from(reader)?),
            1 => QueryResponse::Segmented(SegmentedResponse::decode_from(reader)?),
            other => {
                return Err(DecodeError::InvalidValue {
                    what: "query response tag",
                    found: u64::from(other),
                })
            }
        })
    }
}

/// Byte-level decomposition of a response by payload category.
///
/// `bloom_filters + bmt_overhead` is the size of the BMT branches for
/// segmented responses (paper Fig. 14's numerator); for per-block
/// responses `bloom_filters` counts the transmitted per-block filters
/// instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SizeBreakdown {
    /// Bloom filter material (per-block filters or BMT endpoint
    /// filters).
    pub bloom_filters: u64,
    /// BMT proof hashes and tree-structure bytes.
    pub bmt_overhead: u64,
    /// SMT proofs (existence counts and inexistence adjacency pairs).
    pub smt_proofs: u64,
    /// Transaction Merkle branches.
    pub merkle_branches: u64,
    /// Raw transactions accompanying the branches.
    pub transactions: u64,
    /// Integral blocks (the strawman's FPM fallback).
    pub integral_blocks: u64,
    /// Tags, counts and other framing bytes.
    pub framing: u64,
}

impl SizeBreakdown {
    /// Computes the breakdown of a response. Category sums always equal
    /// [`QueryResponse::total_bytes`].
    pub fn of(response: &QueryResponse) -> SizeBreakdown {
        let mut b = SizeBreakdown::default();
        match response {
            QueryResponse::PerBlock(r) => {
                for entry in &r.entries {
                    b.bloom_filters += entry.filter.encoded_len() as u64;
                    b.add_fragment(&entry.fragment);
                }
            }
            QueryResponse::Segmented(r) => {
                for bundle in &r.segments {
                    let stats = bundle.proof.stats();
                    b.bloom_filters += stats.filter_bytes;
                    b.bmt_overhead +=
                        bundle.proof.encoded_len() as u64 - stats.filter_bytes - stats.hash_bytes;
                    b.bmt_overhead += stats.hash_bytes;
                    for (_, fragment) in &bundle.fragments {
                        b.add_fragment(fragment);
                    }
                }
            }
        }
        b.framing = response.total_bytes() - b.categorised();
        b
    }

    fn add_fragment(&mut self, fragment: &BlockFragment) {
        match fragment {
            BlockFragment::Empty => {}
            BlockFragment::MerkleBranches(txs) => {
                for t in txs {
                    self.transactions += t.transaction.encoded_len() as u64;
                    self.merkle_branches += t.branch.encoded_len() as u64;
                }
            }
            BlockFragment::Existence(proof) => {
                self.smt_proofs += proof.smt.encoded_len() as u64;
                for t in &proof.transactions {
                    self.transactions += t.transaction.encoded_len() as u64;
                    self.merkle_branches += t.branch.encoded_len() as u64;
                }
            }
            BlockFragment::AbsenceSmt(proof) => {
                self.smt_proofs += proof.encoded_len() as u64;
            }
            BlockFragment::IntegralBlock(block) => {
                self.integral_blocks += block.encoded_len() as u64;
            }
        }
    }

    fn categorised(&self) -> u64 {
        self.bloom_filters
            + self.bmt_overhead
            + self.smt_proofs
            + self.merkle_branches
            + self.transactions
            + self.integral_blocks
    }

    /// Sum of all categories — equals the response's total size.
    pub fn total(&self) -> u64 {
        self.categorised() + self.framing
    }

    /// BMT branch bytes (filters + hashes + structure) — Fig. 14's
    /// numerator. Only meaningful for segmented responses.
    pub fn bmt_branch_bytes(&self) -> u64 {
        self.bloom_filters + self.bmt_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_bloom::BloomParams;
    use lvq_chain::{Address, Block, Transaction};
    use lvq_codec::decode_exact;
    use lvq_merkle::bmt::{self, Bmt, BmtSource};

    fn params() -> BloomParams {
        BloomParams::new(64, 2).unwrap()
    }

    fn per_block_response() -> QueryResponse {
        let block =
            Block::new_unchained(vec![Transaction::coinbase(Address::new("1Miner"), 50, 0)]);
        QueryResponse::PerBlock(PerBlockResponse {
            entries: vec![
                BlockEntry {
                    filter: BloomFilter::new(params()),
                    fragment: BlockFragment::Empty,
                },
                BlockEntry {
                    filter: BloomFilter::new(params()),
                    fragment: BlockFragment::IntegralBlock(Box::new(block)),
                },
            ],
        })
    }

    fn segmented_response() -> QueryResponse {
        let leaves = vec![BloomFilter::new(params()); 4];
        let tree = Bmt::build(1, leaves).unwrap();
        let positions = BloomFilter::bit_positions(tree.params(), b"probe");
        let proof = bmt::prove(&tree, &positions).unwrap();
        QueryResponse::Segmented(SegmentedResponse {
            segments: vec![SegmentBundle {
                proof,
                fragments: Vec::new(),
            }],
        })
    }

    #[test]
    fn roundtrip_both_kinds() {
        for response in [per_block_response(), segmented_response()] {
            let bytes = response.encode();
            assert_eq!(bytes.len(), response.encoded_len());
            assert_eq!(decode_exact::<QueryResponse>(&bytes).unwrap(), response);
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        for response in [per_block_response(), segmented_response()] {
            let b = response.size_breakdown();
            assert_eq!(b.total(), response.total_bytes());
        }
    }

    #[test]
    fn per_block_breakdown_categories() {
        let response = per_block_response();
        let b = response.size_breakdown();
        // Two transmitted filters.
        assert_eq!(
            b.bloom_filters,
            2 * BloomFilter::new(params()).encoded_len() as u64
        );
        assert!(b.integral_blocks > 0);
        assert_eq!(b.bmt_overhead, 0);
    }

    #[test]
    fn segmented_breakdown_categories() {
        let response = segmented_response();
        let b = response.size_breakdown();
        assert!(b.bloom_filters > 0, "endpoint filters counted");
        assert_eq!(b.integral_blocks, 0);
        assert_eq!(b.bmt_branch_bytes(), b.bloom_filters + b.bmt_overhead);
    }

    #[test]
    fn bad_response_tag_rejected() {
        assert!(decode_exact::<QueryResponse>(&[9]).is_err());
    }
}
