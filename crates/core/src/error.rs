//! Prover- and verifier-side error types.

use std::error::Error;
use std::fmt;

use lvq_chain::ChainError;
use lvq_merkle::{BmtError, SmtError};

/// Errors a full node can hit while *generating* a response.
///
/// These indicate misconfiguration or chain corruption on the prover's
/// own side — an honest prover over a valid chain never fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProveError {
    /// The chain was built with a different commitment policy than the
    /// prover's scheme requires.
    SchemeMismatch,
    /// The chain is empty; there is nothing to prove over.
    EmptyChain,
    /// A range query's bounds were not `1 ≤ lo ≤ hi ≤ tip`.
    InvalidRange {
        /// Requested lower bound.
        lo: u64,
        /// Requested upper bound.
        hi: u64,
        /// Chain tip at request time.
        tip: u64,
    },
    /// A batched query was issued with zero addresses.
    EmptyBatch,
    /// An underlying chain access failed.
    Chain(ChainError),
    /// An underlying BMT operation failed.
    Bmt(BmtError),
    /// An underlying SMT operation failed.
    Smt(SmtError),
}

impl fmt::Display for ProveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProveError::SchemeMismatch => {
                f.write_str("chain commitments do not match the prover's scheme")
            }
            ProveError::EmptyChain => f.write_str("cannot prove over an empty chain"),
            ProveError::EmptyBatch => f.write_str("batched query needs at least one address"),
            ProveError::InvalidRange { lo, hi, tip } => {
                write!(f, "invalid query range {lo}..={hi} for tip {tip}")
            }
            ProveError::Chain(e) => write!(f, "chain error: {e}"),
            ProveError::Bmt(e) => write!(f, "bmt error: {e}"),
            ProveError::Smt(e) => write!(f, "smt error: {e}"),
        }
    }
}

impl Error for ProveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProveError::Chain(e) => Some(e),
            ProveError::Bmt(e) => Some(e),
            ProveError::Smt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChainError> for ProveError {
    fn from(e: ChainError) -> Self {
        ProveError::Chain(e)
    }
}

impl From<BmtError> for ProveError {
    fn from(e: BmtError) -> Self {
        ProveError::Bmt(e)
    }
}

impl From<SmtError> for ProveError {
    fn from(e: SmtError) -> Self {
        ProveError::Smt(e)
    }
}

/// Errors a light client raises while *verifying* a response.
///
/// Every variant means the response must be rejected: either the full
/// node is malicious (paper §VI's forgery attempts all land here) or the
/// response was corrupted in transit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The response shape does not match the scheme (e.g. a per-block
    /// response for a BMT scheme).
    WrongResponseKind,
    /// A range verification was requested with bounds outside
    /// `1 ≤ lo ≤ hi ≤ tip`.
    InvalidRange {
        /// Requested lower bound.
        lo: u64,
        /// Requested upper bound.
        hi: u64,
        /// Header-set tip.
        tip: u64,
    },
    /// A per-block response did not contain exactly one entry per block.
    WrongEntryCount {
        /// Entries received.
        got: u64,
        /// Entries expected (the chain tip).
        expected: u64,
    },
    /// A segmented response's segments do not match the verifier's own
    /// segment division.
    SegmentMismatch,
    /// A batched verification was requested with zero addresses.
    EmptyBatch,
    /// A batched response's per-address section count does not match the
    /// number of queried addresses.
    SectionCountMismatch {
        /// Sections (or per-entry fragments) received.
        got: u64,
        /// Queried addresses.
        expected: u64,
    },
    /// A synced header's previous-block hash does not match its
    /// predecessor — the header set is not a chain.
    BrokenHeaderChain {
        /// Height of the first inconsistent header.
        height: u64,
    },
    /// A header the verifier holds lacks a commitment the scheme needs —
    /// the light node's header set does not fit the configuration.
    MissingCommitment {
        /// Height of the offending header.
        height: u64,
        /// Which commitment is missing.
        what: &'static str,
    },
    /// The transmitted Bloom filter does not hash to the committed
    /// `H(BF)`.
    FilterHashMismatch {
        /// Height of the offending block.
        height: u64,
    },
    /// A transmitted filter's parameters differ from the configuration.
    FilterParamsMismatch {
        /// Height of the offending block.
        height: u64,
    },
    /// The fragment kind is not acceptable for the block's filter check
    /// outcome under this scheme (e.g. `Empty` for a failed check).
    UnexpectedFragment {
        /// Height of the offending block.
        height: u64,
    },
    /// The failed-leaf set of a BMT proof does not match the fragments
    /// supplied for the segment.
    FragmentSetMismatch,
    /// A Merkle branch did not verify against the committed root.
    InvalidMerkleBranch {
        /// Height of the offending block.
        height: u64,
    },
    /// Two fragments proved the same transaction slot (an attempt to
    /// satisfy an SMT count by duplicating one transaction).
    DuplicateTransaction {
        /// Height of the offending block.
        height: u64,
    },
    /// The number of distinct proven transactions differs from the
    /// SMT-committed appearance count.
    CountMismatch {
        /// Height of the offending block.
        height: u64,
        /// Count committed in the SMT.
        committed: u64,
        /// Distinct transactions proven.
        proven: u64,
    },
    /// A proven transaction does not involve the queried address.
    UninvolvedTransaction {
        /// Height of the offending block.
        height: u64,
    },
    /// An integral block does not match the stored header.
    BlockHeaderMismatch {
        /// Height of the offending block.
        height: u64,
    },
    /// An integral block's body does not match its own Merkle root.
    BlockBodyMismatch {
        /// Height of the offending block.
        height: u64,
    },
    /// An SMT sub-proof failed.
    Smt {
        /// Height of the offending block.
        height: u64,
        /// The underlying error.
        source: SmtError,
    },
    /// A BMT segment proof failed.
    Bmt {
        /// The segment's last block height (whose header commits the
        /// BMT root).
        segment_hi: u64,
        /// The underlying error.
        source: BmtError,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::WrongResponseKind => f.write_str("response kind does not match the scheme"),
            QueryError::InvalidRange { lo, hi, tip } => {
                write!(f, "invalid verification range {lo}..={hi} for tip {tip}")
            }
            QueryError::WrongEntryCount { got, expected } => {
                write!(f, "expected {expected} per-block entries, got {got}")
            }
            QueryError::SegmentMismatch => {
                f.write_str("segmented response does not match the segment division")
            }
            QueryError::EmptyBatch => {
                f.write_str("batched verification needs at least one address")
            }
            QueryError::SectionCountMismatch { got, expected } => {
                write!(f, "expected {expected} per-address sections, got {got}")
            }
            QueryError::BrokenHeaderChain { height } => {
                write!(f, "header chain breaks at height {height}")
            }
            QueryError::MissingCommitment { height, what } => {
                write!(f, "header {height} lacks the {what} commitment")
            }
            QueryError::FilterHashMismatch { height } => {
                write!(f, "bloom filter hash mismatch at height {height}")
            }
            QueryError::FilterParamsMismatch { height } => {
                write!(f, "bloom filter parameters mismatch at height {height}")
            }
            QueryError::UnexpectedFragment { height } => {
                write!(f, "fragment kind unacceptable at height {height}")
            }
            QueryError::FragmentSetMismatch => {
                f.write_str("fragments do not match the bmt proof's failed leaves")
            }
            QueryError::InvalidMerkleBranch { height } => {
                write!(f, "invalid merkle branch at height {height}")
            }
            QueryError::DuplicateTransaction { height } => {
                write!(f, "duplicate transaction proof at height {height}")
            }
            QueryError::CountMismatch {
                height,
                committed,
                proven,
            } => write!(
                f,
                "height {height}: smt commits {committed} transactions, {proven} proven"
            ),
            QueryError::UninvolvedTransaction { height } => {
                write!(
                    f,
                    "proven transaction at height {height} does not involve the address"
                )
            }
            QueryError::BlockHeaderMismatch { height } => {
                write!(f, "integral block header mismatch at height {height}")
            }
            QueryError::BlockBodyMismatch { height } => {
                write!(f, "integral block body mismatch at height {height}")
            }
            QueryError::Smt { height, source } => {
                write!(f, "smt proof failed at height {height}: {source}")
            }
            QueryError::Bmt { segment_hi, source } => {
                write!(
                    f,
                    "bmt proof failed for segment ending at {segment_hi}: {source}"
                )
            }
        }
    }
}

impl Error for QueryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QueryError::Smt { source, .. } => Some(source),
            QueryError::Bmt { source, .. } => Some(source),
            _ => None,
        }
    }
}
