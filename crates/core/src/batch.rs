//! Batched multi-address query responses.
//!
//! A light node with several addresses of interest (its own wallet plus
//! watch-only addresses, say) can query them one message at a time — or
//! batch them. Batching pays off twice:
//!
//! * **bytes** — under the BMT schemes, one shared descent per segment
//!   ([`lvq_merkle::bmt::prove_multi`]) replaces N single-address
//!   proofs, and under the per-block schemes each block's filter is
//!   transmitted once instead of N times;
//! * **time** — the prover walks each segment (or block) once, and the
//!   chain's span-filter cache is hot for every address after the
//!   first.
//!
//! The response carries one *section* per address, in request order, so
//! the verifier produces one independent
//! [`crate::VerifiedHistory`] per address — each exactly as strong as a
//! dedicated single-address verification (see the soundness notes in
//! [`lvq_merkle::bmt::prove_multi`]'s module).

use lvq_bloom::BloomFilter;
use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_merkle::BmtBatchProof;

use crate::fragment::BlockFragment;

/// One block's worth of a batched per-block response: the filter is
/// transmitted once, followed by one fragment per queried address in
/// batch order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchBlockEntry {
    /// The block's address Bloom filter (shared by all addresses).
    pub filter: BloomFilter,
    /// One fragment per queried address, in batch order.
    pub fragments: Vec<BlockFragment>,
}

impl Encodable for BatchBlockEntry {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.filter.encode_into(out);
        self.fragments.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.filter.encoded_len() + self.fragments.encoded_len()
    }
}

impl Decodable for BatchBlockEntry {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BatchBlockEntry {
            filter: BloomFilter::decode_from(reader)?,
            fragments: Vec::<BlockFragment>::decode_from(reader)?,
        })
    }
}

/// Batched response of the per-block schemes: one entry per block,
/// heights in order, each carrying a per-address fragment list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPerBlockResponse {
    /// One entry per block, in height order.
    pub entries: Vec<BatchBlockEntry>,
}

impl Encodable for BatchPerBlockResponse {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.entries.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.entries.encoded_len()
    }
}

impl Decodable for BatchPerBlockResponse {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BatchPerBlockResponse {
            entries: Vec::<BatchBlockEntry>::decode_from(reader)?,
        })
    }
}

/// One (sub-)segment of a batched BMT-scheme response: the shared
/// multi-address proof plus one fragment *section* per address.
///
/// Section `j` holds `(height, fragment)` pairs for exactly the leaves
/// whose filters matched address `j`'s positions, in height order — the
/// per-address analogue of [`crate::SegmentBundle::fragments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSegmentBundle {
    /// The shared multi-address BMT proof over the segment.
    pub proof: BmtBatchProof,
    /// One section per queried address, in batch order.
    pub sections: Vec<Vec<(u64, BlockFragment)>>,
}

impl Encodable for BatchSegmentBundle {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.proof.encode_into(out);
        lvq_codec::write_compact_size(out, self.sections.len() as u64);
        for section in &self.sections {
            lvq_codec::write_compact_size(out, section.len() as u64);
            for (height, fragment) in section {
                lvq_codec::write_compact_size(out, *height);
                fragment.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        self.proof.encoded_len()
            + lvq_codec::compact_size_len(self.sections.len() as u64)
            + self
                .sections
                .iter()
                .map(|section| {
                    lvq_codec::compact_size_len(section.len() as u64)
                        + section
                            .iter()
                            .map(|(h, f)| lvq_codec::compact_size_len(*h) + f.encoded_len())
                            .sum::<usize>()
                })
                .sum::<usize>()
    }
}

impl Decodable for BatchSegmentBundle {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let proof = BmtBatchProof::decode_from(reader)?;
        let section_count = reader.read_len()?;
        let mut sections = Vec::with_capacity(section_count.min(reader.remaining()));
        for _ in 0..section_count {
            let count = reader.read_len()?;
            let mut section = Vec::with_capacity(count.min(reader.remaining()));
            for _ in 0..count {
                let height = lvq_codec::read_compact_size(reader)?;
                let fragment = BlockFragment::decode_from(reader)?;
                section.push((height, fragment));
            }
            sections.push(section);
        }
        Ok(BatchSegmentBundle { proof, sections })
    }
}

/// Batched response of the BMT schemes: one bundle per (sub-)segment in
/// the verifier's own division order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSegmentedResponse {
    /// One bundle per segment, in segment order.
    pub segments: Vec<BatchSegmentBundle>,
}

impl Encodable for BatchSegmentedResponse {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.segments.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.segments.encoded_len()
    }
}

impl Decodable for BatchSegmentedResponse {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BatchSegmentedResponse {
            segments: Vec::<BatchSegmentBundle>::decode_from(reader)?,
        })
    }
}

/// A complete batched query response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchQueryResponse {
    /// Per-block schemes.
    PerBlock(BatchPerBlockResponse),
    /// BMT schemes.
    Segmented(BatchSegmentedResponse),
}

impl BatchQueryResponse {
    /// Total response size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.encoded_len() as u64
    }
}

impl Encodable for BatchQueryResponse {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            BatchQueryResponse::PerBlock(r) => {
                out.push(0);
                r.encode_into(out);
            }
            BatchQueryResponse::Segmented(r) => {
                out.push(1);
                r.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            BatchQueryResponse::PerBlock(r) => r.encoded_len(),
            BatchQueryResponse::Segmented(r) => r.encoded_len(),
        }
    }
}

impl Decodable for BatchQueryResponse {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match reader.read_u8()? {
            0 => BatchQueryResponse::PerBlock(BatchPerBlockResponse::decode_from(reader)?),
            1 => BatchQueryResponse::Segmented(BatchSegmentedResponse::decode_from(reader)?),
            other => {
                return Err(DecodeError::InvalidValue {
                    what: "batch query response tag",
                    found: u64::from(other),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_bloom::BloomParams;
    use lvq_codec::decode_exact;
    use lvq_merkle::bmt::{self, Bmt};

    fn params() -> BloomParams {
        BloomParams::new(64, 2).unwrap()
    }

    fn per_block_response() -> BatchQueryResponse {
        BatchQueryResponse::PerBlock(BatchPerBlockResponse {
            entries: vec![BatchBlockEntry {
                filter: BloomFilter::new(params()),
                fragments: vec![BlockFragment::Empty, BlockFragment::Empty],
            }],
        })
    }

    fn segmented_response() -> BatchQueryResponse {
        let leaves = vec![BloomFilter::new(params()); 4];
        let tree = Bmt::build(1, leaves).unwrap();
        let sets = vec![
            BloomFilter::bit_positions(params(), b"a"),
            BloomFilter::bit_positions(params(), b"b"),
        ];
        let proof = bmt::prove_multi(&tree, &sets).unwrap();
        BatchQueryResponse::Segmented(BatchSegmentedResponse {
            segments: vec![BatchSegmentBundle {
                proof,
                sections: vec![Vec::new(), Vec::new()],
            }],
        })
    }

    #[test]
    fn roundtrip_both_kinds() {
        for response in [per_block_response(), segmented_response()] {
            let bytes = response.encode();
            assert_eq!(bytes.len(), response.encoded_len());
            assert_eq!(
                decode_exact::<BatchQueryResponse>(&bytes).unwrap(),
                response
            );
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(decode_exact::<BatchQueryResponse>(&[9]).is_err());
    }
}
