//! The light-node side: response verification (paper §V, §VI).

use std::collections::BTreeSet;

use lvq_bloom::BloomFilter;
use lvq_chain::{balance_of, Address, BalanceBreakdown, BlockHeader, Transaction};

use crate::batch::{BatchQueryResponse, BatchSegmentBundle};
use crate::error::QueryError;
use crate::fragment::BlockFragment;
use crate::result::{QueryResponse, SegmentBundle};
use crate::scheme::{Scheme, SchemeConfig};
use crate::segment::{segments, Segment};

/// Runs `f` over `0..count`, preserving order.
///
/// With the `parallel` feature the items run on scoped worker threads
/// (one per segment; segments are few and coarse-grained) — the
/// light-side counterpart of the prover's parallel segment proofs.
#[cfg(not(feature = "parallel"))]
fn map_segments<T, F>(count: usize, f: F) -> Vec<Result<T, QueryError>>
where
    F: Fn(usize) -> Result<T, QueryError>,
{
    (0..count).map(f).collect()
}

/// Parallel variant: see the sequential twin above.
#[cfg(feature = "parallel")]
fn map_segments<T, F>(count: usize, f: F) -> Vec<Result<T, QueryError>>
where
    T: Send,
    F: Fn(usize) -> Result<T, QueryError> + Sync,
{
    if count <= 1 {
        return (0..count).map(f).collect();
    }
    let f = &f;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..count).map(|i| scope.spawn(move || f(i))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("segment verify worker panicked"))
            .collect()
    })
}

/// How much the verification established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completeness {
    /// Every relevant transaction is provably included and none omitted
    /// — the balance is trustworthy.
    Complete,
    /// Every returned transaction is provably on-chain, but omissions
    /// cannot be ruled out (the strawman's Challenge 3): the paper's
    /// *correctness* without *completeness*.
    CorrectnessOnly,
}

/// The outcome of a successful verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedHistory {
    /// Proven transactions as `(height, transaction)`, in chain order.
    pub transactions: Vec<(u64, Transaction)>,
    /// Paper Eq. 1 over the proven history.
    pub balance: BalanceBreakdown,
    /// Whether completeness was established.
    pub completeness: Completeness,
}

/// A light node's verification engine: stored headers plus the scheme
/// configuration, nothing else.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct LightClient {
    config: SchemeConfig,
    headers: Vec<BlockHeader>,
}

impl LightClient {
    /// Creates a client holding `headers` (height 1 first).
    pub fn new(config: SchemeConfig, headers: Vec<BlockHeader>) -> Self {
        LightClient { config, headers }
    }

    /// This client's configuration.
    pub fn config(&self) -> SchemeConfig {
        self.config
    }

    /// The chain tip implied by the stored headers.
    pub fn tip_height(&self) -> u64 {
        self.headers.len() as u64
    }

    /// Total bytes of stored headers — the storage cost of paper
    /// Challenge 1.
    pub fn storage_bytes(&self) -> u64 {
        self.headers.iter().map(|h| h.storage_len() as u64).sum()
    }

    /// Checks that the stored headers form a hash chain (each header's
    /// `prev_block` is the hash of its predecessor) — the SPV sanity
    /// check a light node runs after the initial header download.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::BrokenHeaderChain`] at the first break.
    pub fn validate_header_chain(&self) -> Result<(), QueryError> {
        let mut prev = lvq_crypto::Hash256::ZERO;
        for (i, header) in self.headers.iter().enumerate() {
            if header.prev_block != prev {
                return Err(QueryError::BrokenHeaderChain {
                    height: i as u64 + 1,
                });
            }
            prev = header.block_hash();
        }
        Ok(())
    }

    /// Appends newly announced headers, checking that each one chains
    /// onto the current tip — how a light node follows a growing chain.
    ///
    /// On error nothing is appended.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::BrokenHeaderChain`] at the first header
    /// that does not extend the chain.
    pub fn append_headers(
        &mut self,
        new_headers: impl IntoIterator<Item = BlockHeader>,
    ) -> Result<(), QueryError> {
        let mut prev = self
            .headers
            .last()
            .map(BlockHeader::block_hash)
            .unwrap_or(lvq_crypto::Hash256::ZERO);
        let mut accepted = Vec::new();
        for header in new_headers {
            if header.prev_block != prev {
                return Err(QueryError::BrokenHeaderChain {
                    height: self.headers.len() as u64 + accepted.len() as u64 + 1,
                });
            }
            prev = header.block_hash();
            accepted.push(header);
        }
        self.headers.extend(accepted);
        Ok(())
    }

    /// The block hash of the stored header at `height`, or
    /// [`lvq_crypto::Hash256::ZERO`] at height 0 (where every chain
    /// agrees) — what a reorg-aware client pins its incremental sync
    /// to. `None` above the stored tip.
    pub fn hash_at(&self, height: u64) -> Option<lvq_crypto::Hash256> {
        if height == 0 {
            return Some(lvq_crypto::Hash256::ZERO);
        }
        self.headers
            .get(height as usize - 1)
            .map(BlockHeader::block_hash)
    }

    /// Discards every stored header strictly above `height` — the
    /// rollback half of following a chain through a reorg. Returns how
    /// many headers were dropped (zero when already at or below
    /// `height`).
    ///
    /// Proofs verified against a discarded header were proofs against
    /// an orphaned block: the caller must drop any state derived from
    /// them and re-query once the replacement headers are appended.
    pub fn rollback_to(&mut self, height: u64) -> u64 {
        let before = self.headers.len() as u64;
        if height >= before {
            return 0;
        }
        self.headers.truncate(height as usize);
        before - height
    }

    /// Verifies a full-node response for `address`.
    ///
    /// On success the returned history is *correct* (every transaction
    /// is on-chain at the stated height) and, except for the strawman's
    /// existence fragments, *complete* (no relevant transaction in
    /// `1..=tip` was omitted).
    ///
    /// # Errors
    ///
    /// Returns a [`QueryError`] describing the first inconsistency; any
    /// error means the response must be discarded and the full node
    /// distrusted.
    pub fn verify(
        &self,
        address: &Address,
        response: &QueryResponse,
    ) -> Result<VerifiedHistory, QueryError> {
        self.verify_over(address, response, 1, self.tip_height())
    }

    /// Verifies a response restricted to blocks `lo..=hi` (the range
    /// counterpart of [`crate::Prover::respond_range`]).
    ///
    /// On success, completeness covers exactly the requested range: no
    /// transaction of `address` in blocks `lo..=hi` was omitted.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::InvalidRange`] unless `1 ≤ lo ≤ hi ≤ tip`,
    /// and any other [`QueryError`] exactly as [`LightClient::verify`]
    /// does.
    pub fn verify_range(
        &self,
        address: &Address,
        lo: u64,
        hi: u64,
        response: &QueryResponse,
    ) -> Result<VerifiedHistory, QueryError> {
        if lo == 0 || lo > hi || hi > self.tip_height() {
            return Err(QueryError::InvalidRange {
                lo,
                hi,
                tip: self.tip_height(),
            });
        }
        self.verify_over(address, response, lo, hi)
    }

    /// Verifies a batched multi-address response, returning one
    /// [`VerifiedHistory`] per address in batch order.
    ///
    /// Each per-address verdict is exactly as strong as a dedicated
    /// [`LightClient::verify`]: the shared BMT proof is checked against
    /// every address's bit positions individually (a node may only be
    /// treated as clean for an address whose positions it is actually
    /// clean for), and each address's fragment section must account for
    /// exactly its matched leaves.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::EmptyBatch`] for an empty address list,
    /// [`QueryError::SectionCountMismatch`] when the response does not
    /// carry one section per address, and any other [`QueryError`]
    /// exactly as [`LightClient::verify`] does.
    pub fn verify_batch(
        &self,
        addresses: &[Address],
        response: &BatchQueryResponse,
    ) -> Result<Vec<VerifiedHistory>, QueryError> {
        self.verify_batch_over(addresses, response, 1, self.tip_height())
    }

    /// Verifies a batched response restricted to blocks `lo..=hi` — the
    /// batch counterpart of [`LightClient::verify_range`], applying the
    /// same boundary rule (failed leaves below `lo` are owed no
    /// fragment in any address's section).
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::InvalidRange`] unless `1 ≤ lo ≤ hi ≤ tip`,
    /// and otherwise errors exactly as [`LightClient::verify_batch`].
    pub fn verify_batch_range(
        &self,
        addresses: &[Address],
        lo: u64,
        hi: u64,
        response: &BatchQueryResponse,
    ) -> Result<Vec<VerifiedHistory>, QueryError> {
        if lo == 0 || lo > hi || hi > self.tip_height() {
            return Err(QueryError::InvalidRange {
                lo,
                hi,
                tip: self.tip_height(),
            });
        }
        self.verify_batch_over(addresses, response, lo, hi)
    }

    /// Shared implementation; `lo = 1, hi = 0` encodes the empty chain.
    fn verify_batch_over(
        &self,
        addresses: &[Address],
        response: &BatchQueryResponse,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<VerifiedHistory>, QueryError> {
        if addresses.is_empty() {
            return Err(QueryError::EmptyBatch);
        }
        let position_sets: Vec<Vec<u64>> = addresses
            .iter()
            .map(|a| BloomFilter::bit_positions(self.config.bloom(), a.as_bytes()))
            .collect();
        let n = addresses.len();
        let mut collected: Vec<Vec<(u64, Transaction)>> = vec![Vec::new(); n];
        let mut correctness_only = vec![false; n];

        match (self.config.scheme().is_per_block(), response) {
            (true, BatchQueryResponse::PerBlock(r)) => {
                let expected = hi.saturating_sub(lo.saturating_sub(1));
                if r.entries.len() as u64 != expected {
                    return Err(QueryError::WrongEntryCount {
                        got: r.entries.len() as u64,
                        expected,
                    });
                }
                for (i, entry) in r.entries.iter().enumerate() {
                    let height = lo + i as u64;
                    if entry.fragments.len() != n {
                        return Err(QueryError::SectionCountMismatch {
                            got: entry.fragments.len() as u64,
                            expected: n as u64,
                        });
                    }
                    let header = &self.headers[(height - 1) as usize];
                    let committed =
                        header
                            .commitments
                            .bf_hash
                            .ok_or(QueryError::MissingCommitment {
                                height,
                                what: "bloom filter hash",
                            })?;
                    if entry.filter.params() != self.config.bloom() {
                        return Err(QueryError::FilterParamsMismatch { height });
                    }
                    if entry.filter.content_hash() != committed {
                        return Err(QueryError::FilterHashMismatch { height });
                    }
                    for (j, (address, positions)) in
                        addresses.iter().zip(&position_sets).enumerate()
                    {
                        let fragment = &entry.fragments[j];
                        if entry.filter.check_positions(positions).is_clean() {
                            if *fragment != BlockFragment::Empty {
                                return Err(QueryError::UnexpectedFragment { height });
                            }
                        } else {
                            let txs = self.verify_fragment(height, address, fragment)?;
                            if matches!(fragment, BlockFragment::MerkleBranches(_)) {
                                correctness_only[j] = true;
                            }
                            collected[j].extend(txs.into_iter().map(|t| (height, t)));
                        }
                    }
                }
            }
            (false, BatchQueryResponse::Segmented(r)) => {
                let segs: Vec<Segment> = segments(hi, self.config.segment_len())
                    .into_iter()
                    .filter(|seg| seg.hi >= lo)
                    .collect();
                if r.segments.len() != segs.len() {
                    return Err(QueryError::SegmentMismatch);
                }
                let per_segment = map_segments(segs.len(), |i| {
                    self.verify_batch_segment(
                        addresses,
                        &position_sets,
                        &segs[i],
                        &r.segments[i],
                        lo,
                    )
                });
                for result in per_segment {
                    let (sections, flags) = result?;
                    for (j, (txs, flag)) in sections.into_iter().zip(flags).enumerate() {
                        collected[j].extend(txs);
                        correctness_only[j] |= flag;
                    }
                }
            }
            _ => return Err(QueryError::WrongResponseKind),
        }

        Ok(collected
            .into_iter()
            .zip(addresses)
            .zip(correctness_only)
            .map(|((mut txs, address), partial)| {
                txs.sort_by_key(|(h, _)| *h);
                let balance = balance_of(address, txs.iter().map(|(_, t)| t));
                VerifiedHistory {
                    transactions: txs,
                    balance,
                    completeness: if partial {
                        Completeness::CorrectnessOnly
                    } else {
                        Completeness::Complete
                    },
                }
            })
            .collect())
    }

    /// Verifies one segment of a single-address segmented response.
    ///
    /// Returns the `(height, transaction)` list the segment proves plus
    /// a correctness-only flag.
    fn verify_segment(
        &self,
        address: &Address,
        positions: &[u64],
        seg: &Segment,
        bundle: &SegmentBundle,
        lo: u64,
    ) -> Result<(Vec<(u64, Transaction)>, bool), QueryError> {
        let header = &self.headers[(seg.hi - 1) as usize];
        let root = header
            .commitments
            .bmt_root
            .ok_or(QueryError::MissingCommitment {
                height: seg.hi,
                what: "bmt root",
            })?;
        let coverage = bundle
            .proof
            .verify(seg.lo, seg.len(), &root, self.config.bloom(), positions)
            .map_err(|source| QueryError::Bmt {
                segment_hi: seg.hi,
                source,
            })?;
        // The failed leaves inside the queried range and the supplied
        // fragments must agree exactly — a prover cannot silently drop
        // a block whose filter matched. (Failed leaves below `lo`
        // belong to a boundary segment's prefix and are outside the
        // query.)
        let supplied: Vec<u64> = bundle.fragments.iter().map(|(h, _)| *h).collect();
        let owed: Vec<u64> = coverage
            .failed_leaves
            .iter()
            .copied()
            .filter(|&h| h >= lo)
            .collect();
        if supplied != owed {
            return Err(QueryError::FragmentSetMismatch);
        }
        let mut collected = Vec::new();
        let mut correctness_only = false;
        for (height, fragment) in &bundle.fragments {
            let txs = self.verify_fragment(*height, address, fragment)?;
            if matches!(fragment, BlockFragment::MerkleBranches(_)) {
                correctness_only = true;
            }
            collected.extend(txs.into_iter().map(|t| (*height, t)));
        }
        Ok((collected, correctness_only))
    }

    /// Verifies one segment of a batched segmented response: the shared
    /// proof against every address's positions, then each address's
    /// fragment section against exactly its in-range matched leaves.
    ///
    /// Returns per-address `(height, transaction)` lists plus a
    /// per-address correctness-only flag.
    #[allow(clippy::type_complexity)]
    fn verify_batch_segment(
        &self,
        addresses: &[Address],
        position_sets: &[Vec<u64>],
        seg: &Segment,
        bundle: &BatchSegmentBundle,
        lo: u64,
    ) -> Result<(Vec<Vec<(u64, Transaction)>>, Vec<bool>), QueryError> {
        let n = addresses.len();
        if bundle.sections.len() != n {
            return Err(QueryError::SectionCountMismatch {
                got: bundle.sections.len() as u64,
                expected: n as u64,
            });
        }
        let header = &self.headers[(seg.hi - 1) as usize];
        let root = header
            .commitments
            .bmt_root
            .ok_or(QueryError::MissingCommitment {
                height: seg.hi,
                what: "bmt root",
            })?;
        let coverages = bundle
            .proof
            .verify(seg.lo, seg.len(), &root, self.config.bloom(), position_sets)
            .map_err(|source| QueryError::Bmt {
                segment_hi: seg.hi,
                source,
            })?;
        let mut collected = vec![Vec::new(); n];
        let mut correctness_only = vec![false; n];
        for (j, (address, coverage)) in addresses.iter().zip(&coverages).enumerate() {
            // Per address: the supplied section must account for
            // exactly the in-range leaves the shared proof shows
            // matching this address's positions. (Failed leaves below
            // `lo` belong to a boundary segment's prefix and are
            // outside the query.)
            let section = &bundle.sections[j];
            let supplied: Vec<u64> = section.iter().map(|(h, _)| *h).collect();
            let owed: Vec<u64> = coverage
                .failed_leaves
                .iter()
                .copied()
                .filter(|&h| h >= lo)
                .collect();
            if supplied != owed {
                return Err(QueryError::FragmentSetMismatch);
            }
            for (height, fragment) in section {
                let txs = self.verify_fragment(*height, address, fragment)?;
                if matches!(fragment, BlockFragment::MerkleBranches(_)) {
                    correctness_only[j] = true;
                }
                collected[j].extend(txs.into_iter().map(|t| (*height, t)));
            }
        }
        Ok((collected, correctness_only))
    }

    /// Shared implementation; `lo = 1, hi = 0` encodes the empty chain.
    fn verify_over(
        &self,
        address: &Address,
        response: &QueryResponse,
        lo: u64,
        hi: u64,
    ) -> Result<VerifiedHistory, QueryError> {
        let positions = BloomFilter::bit_positions(self.config.bloom(), address.as_bytes());
        let mut collected: Vec<(u64, Transaction)> = Vec::new();
        let mut correctness_only = false;

        match (self.config.scheme().is_per_block(), response) {
            (true, QueryResponse::PerBlock(r)) => {
                let expected = hi.saturating_sub(lo.saturating_sub(1));
                if r.entries.len() as u64 != expected {
                    return Err(QueryError::WrongEntryCount {
                        got: r.entries.len() as u64,
                        expected,
                    });
                }
                for (i, entry) in r.entries.iter().enumerate() {
                    let height = lo + i as u64;
                    let header = &self.headers[(height - 1) as usize];
                    let committed =
                        header
                            .commitments
                            .bf_hash
                            .ok_or(QueryError::MissingCommitment {
                                height,
                                what: "bloom filter hash",
                            })?;
                    if entry.filter.params() != self.config.bloom() {
                        return Err(QueryError::FilterParamsMismatch { height });
                    }
                    if entry.filter.content_hash() != committed {
                        return Err(QueryError::FilterHashMismatch { height });
                    }
                    if entry.filter.check_positions(&positions).is_clean() {
                        if entry.fragment != BlockFragment::Empty {
                            return Err(QueryError::UnexpectedFragment { height });
                        }
                    } else {
                        let txs = self.verify_fragment(height, address, &entry.fragment)?;
                        if matches!(entry.fragment, BlockFragment::MerkleBranches(_)) {
                            correctness_only = true;
                        }
                        collected.extend(txs.into_iter().map(|t| (height, t)));
                    }
                }
            }
            (false, QueryResponse::Segmented(r)) => {
                let segs: Vec<Segment> = segments(hi, self.config.segment_len())
                    .into_iter()
                    .filter(|seg| seg.hi >= lo)
                    .collect();
                if r.segments.len() != segs.len() {
                    return Err(QueryError::SegmentMismatch);
                }
                let per_segment = map_segments(segs.len(), |i| {
                    self.verify_segment(address, &positions, &segs[i], &r.segments[i], lo)
                });
                for result in per_segment {
                    let (txs, flag) = result?;
                    collected.extend(txs);
                    correctness_only |= flag;
                }
            }
            _ => return Err(QueryError::WrongResponseKind),
        }

        collected.sort_by_key(|(h, _)| *h);
        let balance = balance_of(address, collected.iter().map(|(_, t)| t));
        Ok(VerifiedHistory {
            transactions: collected,
            balance,
            completeness: if correctness_only {
                Completeness::CorrectnessOnly
            } else {
                Completeness::Complete
            },
        })
    }

    /// Verifies one block-level fragment, returning the transactions it
    /// proves (empty when it proves absence).
    fn verify_fragment(
        &self,
        height: u64,
        address: &Address,
        fragment: &BlockFragment,
    ) -> Result<Vec<Transaction>, QueryError> {
        let header = &self.headers[(height - 1) as usize];
        let scheme = self.config.scheme();
        match fragment {
            BlockFragment::Empty => Err(QueryError::UnexpectedFragment { height }),

            BlockFragment::MerkleBranches(txs) => {
                // Strawman-only: correctness without a count proof.
                if scheme != Scheme::Strawman || txs.is_empty() {
                    return Err(QueryError::UnexpectedFragment { height });
                }
                self.verify_branches(height, address, header, txs)?;
                Ok(txs.iter().map(|t| t.transaction.clone()).collect())
            }

            BlockFragment::Existence(proof) => {
                if !scheme.has_smt() {
                    return Err(QueryError::UnexpectedFragment { height });
                }
                let commitment =
                    header
                        .commitments
                        .smt_commitment
                        .ok_or(QueryError::MissingCommitment {
                            height,
                            what: "smt",
                        })?;
                let count = proof
                    .smt
                    .verify(address.as_bytes(), &commitment)
                    .map_err(|source| QueryError::Smt { height, source })?
                    .ok_or(QueryError::UnexpectedFragment { height })?;
                // Challenge 3 resolved: exactly `count` distinct
                // transactions must be proven.
                if proof.transactions.len() as u64 != count {
                    return Err(QueryError::CountMismatch {
                        height,
                        committed: count,
                        proven: proof.transactions.len() as u64,
                    });
                }
                self.verify_branches(height, address, header, &proof.transactions)?;
                Ok(proof
                    .transactions
                    .iter()
                    .map(|t| t.transaction.clone())
                    .collect())
            }

            BlockFragment::AbsenceSmt(proof) => {
                if !scheme.has_smt() {
                    return Err(QueryError::UnexpectedFragment { height });
                }
                let commitment =
                    header
                        .commitments
                        .smt_commitment
                        .ok_or(QueryError::MissingCommitment {
                            height,
                            what: "smt",
                        })?;
                let value = proof
                    .verify(address.as_bytes(), &commitment)
                    .map_err(|source| QueryError::Smt { height, source })?;
                if value.is_some() {
                    // The proof itself shows the address *is* present:
                    // claiming absence with it hides transactions.
                    return Err(QueryError::UnexpectedFragment { height });
                }
                Ok(Vec::new())
            }

            BlockFragment::IntegralBlock(block) => {
                if scheme.has_smt() {
                    // LVQ schemes never fall back to integral blocks.
                    return Err(QueryError::UnexpectedFragment { height });
                }
                if block.header != *header {
                    return Err(QueryError::BlockHeaderMismatch { height });
                }
                if block.tx_tree().root() != header.merkle_root {
                    return Err(QueryError::BlockBodyMismatch { height });
                }
                Ok(block
                    .transactions
                    .iter()
                    .filter(|tx| tx.involves(address))
                    .cloned()
                    .collect())
            }
        }
    }

    fn verify_branches(
        &self,
        height: u64,
        address: &Address,
        header: &BlockHeader,
        txs: &[crate::fragment::TxWithBranch],
    ) -> Result<(), QueryError> {
        let mut seen_slots: BTreeSet<u64> = BTreeSet::new();
        for item in txs {
            if !item.transaction.involves(address) {
                return Err(QueryError::UninvolvedTransaction { height });
            }
            if !item
                .branch
                .verify(&item.transaction.txid(), &header.merkle_root)
            {
                return Err(QueryError::InvalidMerkleBranch { height });
            }
            // Distinct tree slots: the same transaction cannot be
            // counted twice to satisfy an SMT count.
            if !seen_slots.insert(item.branch.leaf_index()) {
                return Err(QueryError::DuplicateTransaction { height });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::BlockFragment;
    use crate::prover::Prover;
    use crate::result::{BlockEntry, PerBlockResponse};
    use crate::scheme::Scheme;
    use lvq_bloom::{BloomFilter, BloomParams};
    use lvq_chain::{ChainBuilder, Transaction};

    fn config(scheme: Scheme) -> SchemeConfig {
        SchemeConfig::new(scheme, BloomParams::new(128, 2).unwrap(), 4).unwrap()
    }

    fn chain_for(scheme: Scheme, blocks: u64) -> lvq_chain::Chain {
        let mut builder = ChainBuilder::new(config(scheme).chain_params()).unwrap();
        for h in 1..=blocks {
            builder
                .push_block(vec![Transaction::coinbase(
                    Address::new("1Miner"),
                    50,
                    h as u32,
                )])
                .unwrap();
        }
        builder.finish()
    }

    #[test]
    fn wrong_response_kind_rejected() {
        let chain = chain_for(Scheme::Lvq, 4);
        let prover = Prover::from_chain(&chain).unwrap();
        let (response, _) = prover.respond(&Address::new("1Miner")).unwrap();
        // A segmented response fed to a per-block client (mismatched
        // configuration) is rejected before any cryptographic work.
        let per_block_client = LightClient::new(config(Scheme::Strawman), chain.headers());
        assert_eq!(
            per_block_client
                .verify(&Address::new("1Miner"), &response)
                .unwrap_err(),
            QueryError::WrongResponseKind
        );
    }

    #[test]
    fn missing_commitment_detected() {
        // Headers built WITHOUT smt commitments cannot serve an LVQ
        // client: the segmented BMT check fails on the bmt_root lookup
        // for strawman headers.
        let strawman_chain = chain_for(Scheme::Strawman, 4);
        let lvq_client = LightClient::new(config(Scheme::Lvq), strawman_chain.headers());
        let lvq_chain = chain_for(Scheme::Lvq, 4);
        let (response, _) = Prover::from_chain(&lvq_chain)
            .unwrap()
            .respond(&Address::new("1Ghost"))
            .unwrap();
        assert!(matches!(
            lvq_client
                .verify(&Address::new("1Ghost"), &response)
                .unwrap_err(),
            QueryError::MissingCommitment {
                what: "bmt root",
                ..
            }
        ));
    }

    #[test]
    fn filter_params_mismatch_detected() {
        let chain = chain_for(Scheme::Strawman, 2);
        let client = LightClient::new(config(Scheme::Strawman), chain.headers());
        // Hand-craft a response whose filters have the wrong size.
        let bogus_params = BloomParams::new(64, 2).unwrap();
        let response = QueryResponse::PerBlock(PerBlockResponse {
            entries: (0..2)
                .map(|_| BlockEntry {
                    filter: BloomFilter::new(bogus_params),
                    fragment: BlockFragment::Empty,
                })
                .collect(),
        });
        assert!(matches!(
            client
                .verify(&Address::new("1Ghost"), &response)
                .unwrap_err(),
            QueryError::FilterParamsMismatch { height: 1 }
        ));
    }

    #[test]
    fn filter_hash_mismatch_detected() {
        let chain = chain_for(Scheme::Strawman, 2);
        let client = LightClient::new(config(Scheme::Strawman), chain.headers());
        // Right parameters, wrong (empty) contents: H(BF) cannot match
        // the committed hash of the real filter.
        let response = QueryResponse::PerBlock(PerBlockResponse {
            entries: (0..2)
                .map(|_| BlockEntry {
                    filter: BloomFilter::new(config(Scheme::Strawman).bloom()),
                    fragment: BlockFragment::Empty,
                })
                .collect(),
        });
        assert!(matches!(
            client
                .verify(&Address::new("1Ghost"), &response)
                .unwrap_err(),
            QueryError::FilterHashMismatch { height: 1 }
        ));
    }

    #[test]
    fn storage_bytes_counts_headers() {
        let chain = chain_for(Scheme::Lvq, 3);
        let client = LightClient::new(config(Scheme::Lvq), chain.headers());
        assert_eq!(client.tip_height(), 3);
        // 80 base + 3 presence + bmt(32) + smt(32).
        assert_eq!(client.storage_bytes(), 3 * 147);
    }

    #[test]
    fn header_chain_validation() {
        let chain = chain_for(Scheme::Lvq, 4);
        let client = LightClient::new(config(Scheme::Lvq), chain.headers());
        client.validate_header_chain().unwrap();

        // Tamper one header: the chain breaks at the next height.
        let mut headers = chain.headers();
        headers[1].nonce ^= 1;
        let broken = LightClient::new(config(Scheme::Lvq), headers);
        assert_eq!(
            broken.validate_header_chain().unwrap_err(),
            QueryError::BrokenHeaderChain { height: 3 }
        );

        // Splice in a header from nowhere: breaks at its own height.
        let mut headers = chain.headers();
        headers[2].prev_block = lvq_crypto::Hash256::hash(b"fork");
        let forked = LightClient::new(config(Scheme::Lvq), headers);
        assert_eq!(
            forked.validate_header_chain().unwrap_err(),
            QueryError::BrokenHeaderChain { height: 3 }
        );

        // An empty header set is a valid (empty) chain.
        LightClient::new(config(Scheme::Lvq), Vec::new())
            .validate_header_chain()
            .unwrap();
    }

    #[test]
    fn append_headers_follows_growth() {
        let long = chain_for(Scheme::Lvq, 6);
        let all = long.headers();
        let mut client = LightClient::new(config(Scheme::Lvq), all[..4].to_vec());
        client.append_headers(all[4..].iter().copied()).unwrap();
        assert_eq!(client.tip_height(), 6);
        client.validate_header_chain().unwrap();

        // A header that does not extend the tip is rejected and nothing
        // is appended.
        let mut stale = LightClient::new(config(Scheme::Lvq), all[..4].to_vec());
        assert_eq!(
            stale.append_headers([all[5]]).unwrap_err(),
            QueryError::BrokenHeaderChain { height: 5 }
        );
        assert_eq!(stale.tip_height(), 4);

        // Appending onto an empty client is an initial sync.
        let mut fresh = LightClient::new(config(Scheme::Lvq), Vec::new());
        fresh.append_headers(all.iter().copied()).unwrap();
        assert_eq!(fresh.tip_height(), 6);
    }

    #[test]
    fn empty_chain_verifies_empty_response() {
        for scheme in Scheme::ALL {
            let chain = chain_for(scheme, 0);
            let prover = Prover::new(&chain, config(scheme)).unwrap();
            let (response, _) = prover.respond(&Address::new("1Anyone")).unwrap();
            let client = LightClient::new(config(scheme), Vec::new());
            let history = client.verify(&Address::new("1Anyone"), &response).unwrap();
            assert!(history.transactions.is_empty());
            assert_eq!(history.balance.net(), 0);
        }
    }
}
