//! LVQ: lightweight verifiable queries for Bitcoin transaction history.
//!
//! This crate is the paper's contribution proper, layered on the
//! substrate crates:
//!
//! * [`Scheme`] — the four evaluated systems (paper §VII-B): the
//!   strawman baseline, LVQ without BMT, LVQ without SMT, and full LVQ;
//! * [`segment`] — the block-merging arithmetic: Algorithm 1 / Table I
//!   (how many previous blocks a block's BMT merges) and the §V-B
//!   decomposition of the chain into complete segments and dyadic
//!   sub-segments (Table II);
//! * [`Prover`] — the full node side: given an address, assemble the
//!   scheme's query response (BMT branch proofs per segment, SMT
//!   count/inexistence proofs, Merkle branches, integral blocks);
//! * [`LightClient`] — the light node side: verify a response against
//!   nothing but the stored headers, yielding the complete, correct
//!   transaction history and the paper's Eq. 1 balance;
//! * [`SizeBreakdown`] / [`ProverStats`] — the exact byte and endpoint
//!   accounting behind the paper's Figures 12–16.
//!
//! # Examples
//!
//! End-to-end query between an in-process full node and light client:
//!
//! ```
//! use lvq_chain::{Address, ChainBuilder, Transaction};
//! use lvq_core::{LightClient, Prover, Scheme, SchemeConfig};
//! use lvq_bloom::BloomParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(256, 2)?, 8)?;
//! let mut builder = ChainBuilder::new(config.chain_params())?;
//! let alice = Address::new("1Alice");
//! for h in 1..=8u32 {
//!     let mut txs = vec![Transaction::coinbase(Address::new("1Miner"), 50, h)];
//!     if h == 3 {
//!         txs.push(Transaction::coinbase(alice.clone(), 25, 1000 + h));
//!     }
//!     builder.push_block(txs)?;
//! }
//! let chain = builder.finish();
//!
//! let prover = Prover::new(&chain, config)?;
//! let (response, _stats) = prover.respond(&alice)?;
//!
//! let client = LightClient::new(config, chain.headers());
//! let history = client.verify(&alice, &response)?;
//! assert_eq!(history.transactions.len(), 1);
//! assert_eq!(history.balance.net(), 25);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
mod fragment;
mod prover;
mod result;
mod scheme;
pub mod segment;
mod stats;
mod verifier;

pub use batch::{
    BatchBlockEntry, BatchPerBlockResponse, BatchQueryResponse, BatchSegmentBundle,
    BatchSegmentedResponse,
};
pub use error::{ProveError, QueryError};
pub use fragment::{BlockFragment, ExistenceProof, TxWithBranch};
pub use prover::Prover;
pub use result::{
    BlockEntry, PerBlockResponse, QueryResponse, SegmentBundle, SegmentedResponse, SizeBreakdown,
};
pub use scheme::{Scheme, SchemeConfig};
pub use segment::{merge_count, segments, Segment};
pub use stats::{FragmentCounts, ProverStats};
pub use verifier::{Completeness, LightClient, VerifiedHistory};
