//! Block-level response fragments (paper §IV-A Eq. 4, §V-A).

use lvq_chain::{Block, Transaction};
use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_merkle::{MerkleBranch, SmtProof};

/// A transaction together with the Merkle branch proving it is in a
/// block (the paper's MBr fragment payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxWithBranch {
    /// The full transaction.
    pub transaction: Transaction,
    /// Its authentication path against the block's Merkle root.
    pub branch: MerkleBranch,
}

impl Encodable for TxWithBranch {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.transaction.encode_into(out);
        self.branch.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.transaction.encoded_len() + self.branch.encoded_len()
    }
}

impl Decodable for TxWithBranch {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxWithBranch {
            transaction: Transaction::decode_from(reader)?,
            branch: MerkleBranch::decode_from(reader)?,
        })
    }
}

/// LVQ's existence proof for one block (paper §V-A1, Fig. 10): an SMT
/// branch committing the appearance count plus exactly that many Merkle
/// branches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExistenceProof {
    /// SMT presence proof for `(address, count)`.
    pub smt: SmtProof,
    /// The `count` transactions with their Merkle branches.
    pub transactions: Vec<TxWithBranch>,
}

impl Encodable for ExistenceProof {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.smt.encode_into(out);
        self.transactions.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.smt.encoded_len() + self.transactions.encoded_len()
    }
}

impl Decodable for ExistenceProof {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ExistenceProof {
            smt: SmtProof::decode_from(reader)?,
            transactions: Vec::<TxWithBranch>::decode_from(reader)?,
        })
    }
}

/// The per-block piece of a query response.
///
/// Which variants a scheme uses (paper Eq. 4 and §V):
///
/// | check outcome       | strawman          | LVQ w/o BMT        | LVQ w/o SMT      | LVQ                |
/// |---------------------|-------------------|--------------------|------------------|--------------------|
/// | clean (inexistent)  | `Empty`           | `Empty`            | *(BMT endpoint)* | *(BMT endpoint)*   |
/// | failed, existent    | `MerkleBranches`  | `Existence`        | `IntegralBlock`  | `Existence`        |
/// | failed, FPM         | `IntegralBlock`   | `AbsenceSmt`       | `IntegralBlock`  | `AbsenceSmt`       |
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockFragment {
    /// Nothing to prove: the block's own filter check was clean
    /// (per-block schemes only; BMT schemes cover clean blocks inside
    /// the BMT proof).
    Empty,
    /// Strawman existence: Merkle branches without a count proof.
    /// Correctness is verifiable; completeness is not (Challenge 3).
    MerkleBranches(Vec<TxWithBranch>),
    /// LVQ existence: SMT count plus exactly-count Merkle branches.
    Existence(ExistenceProof),
    /// LVQ FPM resolution: an SMT inexistence proof.
    AbsenceSmt(SmtProof),
    /// Fallback FPM (and, without SMT, existence) resolution: the whole
    /// block.
    IntegralBlock(Box<Block>),
}

impl BlockFragment {
    /// Short label used in statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            BlockFragment::Empty => "empty",
            BlockFragment::MerkleBranches(_) => "merkle-branches",
            BlockFragment::Existence(_) => "existence",
            BlockFragment::AbsenceSmt(_) => "absence-smt",
            BlockFragment::IntegralBlock(_) => "integral-block",
        }
    }
}

const TAG_EMPTY: u8 = 0;
const TAG_MBR: u8 = 1;
const TAG_EXISTENCE: u8 = 2;
const TAG_ABSENCE_SMT: u8 = 3;
const TAG_IB: u8 = 4;

impl Encodable for BlockFragment {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            BlockFragment::Empty => out.push(TAG_EMPTY),
            BlockFragment::MerkleBranches(txs) => {
                out.push(TAG_MBR);
                txs.encode_into(out);
            }
            BlockFragment::Existence(proof) => {
                out.push(TAG_EXISTENCE);
                proof.encode_into(out);
            }
            BlockFragment::AbsenceSmt(proof) => {
                out.push(TAG_ABSENCE_SMT);
                proof.encode_into(out);
            }
            BlockFragment::IntegralBlock(block) => {
                out.push(TAG_IB);
                block.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            BlockFragment::Empty => 0,
            BlockFragment::MerkleBranches(txs) => txs.encoded_len(),
            BlockFragment::Existence(proof) => proof.encoded_len(),
            BlockFragment::AbsenceSmt(proof) => proof.encoded_len(),
            BlockFragment::IntegralBlock(block) => block.encoded_len(),
        }
    }
}

impl Decodable for BlockFragment {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match reader.read_u8()? {
            TAG_EMPTY => BlockFragment::Empty,
            TAG_MBR => BlockFragment::MerkleBranches(Vec::<TxWithBranch>::decode_from(reader)?),
            TAG_EXISTENCE => BlockFragment::Existence(ExistenceProof::decode_from(reader)?),
            TAG_ABSENCE_SMT => BlockFragment::AbsenceSmt(SmtProof::decode_from(reader)?),
            TAG_IB => BlockFragment::IntegralBlock(Box::new(Block::decode_from(reader)?)),
            other => {
                return Err(DecodeError::InvalidValue {
                    what: "block fragment tag",
                    found: u64::from(other),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_chain::Address;
    use lvq_codec::decode_exact;
    use lvq_merkle::SortedMerkleTree;

    fn sample_block() -> Block {
        Block::new_unchained(vec![
            Transaction::coinbase(Address::new("1Miner"), 50, 0),
            Transaction::coinbase(Address::new("1Other"), 25, 1),
        ])
    }

    fn sample_existence() -> ExistenceProof {
        let block = sample_block();
        let smt = SortedMerkleTree::new(vec![(b"1Miner".to_vec(), 1)]).unwrap();
        let tree = block.tx_tree();
        ExistenceProof {
            smt: smt.prove(b"1Miner"),
            transactions: vec![TxWithBranch {
                transaction: block.transactions[0].clone(),
                branch: tree.branch(0).unwrap(),
            }],
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        let fragments = vec![
            BlockFragment::Empty,
            BlockFragment::MerkleBranches(sample_existence().transactions),
            BlockFragment::Existence(sample_existence()),
            BlockFragment::AbsenceSmt(
                SortedMerkleTree::new(vec![(b"a".to_vec(), 1)])
                    .unwrap()
                    .prove(b"b"),
            ),
            BlockFragment::IntegralBlock(Box::new(sample_block())),
        ];
        for fragment in fragments {
            let bytes = fragment.encode();
            assert_eq!(
                bytes.len(),
                fragment.encoded_len(),
                "{}",
                fragment.kind_name()
            );
            assert_eq!(decode_exact::<BlockFragment>(&bytes).unwrap(), fragment);
        }
    }

    #[test]
    fn empty_is_one_byte() {
        // Paper Eq. 4's Ø fragment should cost almost nothing.
        assert_eq!(BlockFragment::Empty.encoded_len(), 1);
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(decode_exact::<BlockFragment>(&[7]).is_err());
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> = [
            BlockFragment::Empty.kind_name(),
            BlockFragment::MerkleBranches(Vec::new()).kind_name(),
            BlockFragment::Existence(sample_existence()).kind_name(),
            BlockFragment::AbsenceSmt(SortedMerkleTree::empty().prove(b"x")).kind_name(),
            BlockFragment::IntegralBlock(Box::new(sample_block())).kind_name(),
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 5);
    }
}
