//! Prover-side statistics (paper Figs. 14–16).

use lvq_merkle::{BmtBatchProofStats, BmtProofStats};

use crate::fragment::BlockFragment;

/// How many fragments of each kind a response carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FragmentCounts {
    /// Clean per-block entries (paper's Ø fragments).
    pub empty: u64,
    /// Strawman Merkle-branch fragments.
    pub merkle_branches: u64,
    /// LVQ existence proofs.
    pub existence: u64,
    /// LVQ SMT inexistence proofs (FPM resolutions).
    pub absence_smt: u64,
    /// Integral blocks.
    pub integral_blocks: u64,
}

impl FragmentCounts {
    /// Records one fragment.
    pub fn record(&mut self, fragment: &BlockFragment) {
        match fragment {
            BlockFragment::Empty => self.empty += 1,
            BlockFragment::MerkleBranches(_) => self.merkle_branches += 1,
            BlockFragment::Existence(_) => self.existence += 1,
            BlockFragment::AbsenceSmt(_) => self.absence_smt += 1,
            BlockFragment::IntegralBlock(_) => self.integral_blocks += 1,
        }
    }

    /// Total non-empty fragments.
    pub fn resolved_blocks(&self) -> u64 {
        self.merkle_branches + self.existence + self.absence_smt + self.integral_blocks
    }
}

/// Everything the prover observed while answering one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProverStats {
    /// Merged BMT proof statistics over all segments (zero for per-block
    /// schemes). `bmt.endpoint_count()` is the quantity of paper
    /// Figs. 15/16.
    pub bmt: BmtProofStats,
    /// Shared multi-address BMT proof statistics (zero outside batched
    /// queries).
    pub batch_bmt: BmtBatchProofStats,
    /// Fragment census.
    pub fragments: FragmentCounts,
    /// Blocks whose bodies the prover had to consult.
    pub blocks_resolved: u64,
    /// Blocks where the filter matched but the address was absent — the
    /// paper's FPM cases.
    pub fpm_blocks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_census() {
        let mut counts = FragmentCounts::default();
        counts.record(&BlockFragment::Empty);
        counts.record(&BlockFragment::Empty);
        counts.record(&BlockFragment::MerkleBranches(Vec::new()));
        assert_eq!(counts.empty, 2);
        assert_eq!(counts.merkle_branches, 1);
        assert_eq!(counts.resolved_blocks(), 1);
    }
}
