//! Base58 and Base58Check, the encodings behind Bitcoin addresses.

use std::error::Error;
use std::fmt;

use crate::sha256::sha256d;

/// The Bitcoin Base58 alphabet (no `0`, `O`, `I`, `l`).
const ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// Error returned when Base58(Check) decoding fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Base58Error {
    /// A character was outside the Base58 alphabet.
    InvalidCharacter {
        /// Byte offset of the offending character.
        index: usize,
    },
    /// A Base58Check payload was shorter than its 4-byte checksum.
    TooShort,
    /// The Base58Check checksum did not match.
    BadChecksum,
}

impl fmt::Display for Base58Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Base58Error::InvalidCharacter { index } => {
                write!(f, "invalid base58 character at index {index}")
            }
            Base58Error::TooShort => f.write_str("base58check payload too short"),
            Base58Error::BadChecksum => f.write_str("base58check checksum mismatch"),
        }
    }
}

impl Error for Base58Error {}

/// Encodes `data` as Base58.
///
/// # Examples
///
/// ```
/// assert_eq!(lvq_crypto::base58::encode(b"hello"), "Cn8eVZg");
/// ```
pub fn encode(data: &[u8]) -> String {
    // Count leading zero bytes; each encodes as a literal '1'.
    let zeros = data.iter().take_while(|&&b| b == 0).count();

    // Big-number base conversion, digit by digit.
    let mut digits: Vec<u8> = Vec::with_capacity(data.len() * 138 / 100 + 1);
    for &byte in &data[zeros..] {
        let mut carry = u32::from(byte);
        for digit in digits.iter_mut() {
            carry += u32::from(*digit) << 8;
            *digit = (carry % 58) as u8;
            carry /= 58;
        }
        while carry > 0 {
            digits.push((carry % 58) as u8);
            carry /= 58;
        }
    }

    let mut out = String::with_capacity(zeros + digits.len());
    out.extend(std::iter::repeat_n('1', zeros));
    out.extend(digits.iter().rev().map(|&d| ALPHABET[d as usize] as char));
    out
}

/// Decodes a Base58 string.
///
/// # Errors
///
/// Returns [`Base58Error::InvalidCharacter`] for out-of-alphabet input.
pub fn decode(s: &str) -> Result<Vec<u8>, Base58Error> {
    let mut index_of = [255u8; 128];
    for (i, &c) in ALPHABET.iter().enumerate() {
        index_of[c as usize] = i as u8;
    }

    let bytes = s.as_bytes();
    let ones = bytes.iter().take_while(|&&b| b == b'1').count();

    let mut out: Vec<u8> = Vec::with_capacity(s.len());
    for (i, &c) in bytes[ones..].iter().enumerate() {
        let digit = if (c as usize) < 128 {
            index_of[c as usize]
        } else {
            255
        };
        if digit == 255 {
            return Err(Base58Error::InvalidCharacter { index: ones + i });
        }
        let mut carry = u32::from(digit);
        for byte in out.iter_mut() {
            carry += u32::from(*byte) * 58;
            *byte = (carry & 0xFF) as u8;
            carry >>= 8;
        }
        while carry > 0 {
            out.push((carry & 0xFF) as u8);
            carry >>= 8;
        }
    }

    out.extend(std::iter::repeat_n(0, ones));
    out.reverse();
    Ok(out)
}

/// Encodes `payload` with a version byte and a 4-byte double-SHA-256
/// checksum, as Bitcoin addresses do.
pub fn check_encode(version: u8, payload: &[u8]) -> String {
    let mut data = Vec::with_capacity(payload.len() + 5);
    data.push(version);
    data.extend_from_slice(payload);
    let checksum = sha256d(&data);
    data.extend_from_slice(&checksum[..4]);
    encode(&data)
}

/// Decodes a Base58Check string, returning `(version, payload)`.
///
/// # Errors
///
/// Returns a [`Base58Error`] if the string is not valid Base58, is shorter
/// than version + checksum, or fails the checksum.
pub fn check_decode(s: &str) -> Result<(u8, Vec<u8>), Base58Error> {
    let data = decode(s)?;
    if data.len() < 5 {
        return Err(Base58Error::TooShort);
    }
    let (body, checksum) = data.split_at(data.len() - 4);
    let expected = sha256d(body);
    if checksum != &expected[..4] {
        return Err(Base58Error::BadChecksum);
    }
    Ok((body[0], body[1..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"hello"), "Cn8eVZg");
        assert_eq!(encode(&[0x00, 0x00, 0x01]), "112");
        assert_eq!(decode("Cn8eVZg").unwrap(), b"hello");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
        assert_eq!(decode("11").unwrap(), vec![0, 0]);
    }

    #[test]
    fn rejects_invalid_characters() {
        assert_eq!(
            decode("0abc"),
            Err(Base58Error::InvalidCharacter { index: 0 })
        );
        assert_eq!(
            decode("1Ol"),
            Err(Base58Error::InvalidCharacter { index: 1 })
        );
        assert!(matches!(
            decode("ab\u{e9}"),
            Err(Base58Error::InvalidCharacter { .. })
        ));
    }

    #[test]
    fn check_roundtrip_and_tamper() {
        let s = check_encode(0x00, &[0xAB; 20]);
        // A version-0x00 Base58Check string starts with '1', like mainnet
        // P2PKH addresses.
        assert!(s.starts_with('1'));
        let (version, payload) = check_decode(&s).unwrap();
        assert_eq!(version, 0x00);
        assert_eq!(payload, vec![0xAB; 20]);

        // Flip one character: checksum must fail (or the char is invalid).
        let mut tampered: Vec<char> = s.chars().collect();
        let last = tampered.len() - 1;
        tampered[last] = if tampered[last] == '2' { '3' } else { '2' };
        let tampered: String = tampered.into_iter().collect();
        assert!(check_decode(&tampered).is_err());
    }

    #[test]
    fn check_too_short() {
        assert_eq!(check_decode("1"), Err(Base58Error::TooShort));
    }

    proptest! {
        #[test]
        fn roundtrip(bytes: Vec<u8>) {
            prop_assert_eq!(decode(&encode(&bytes)).unwrap(), bytes);
        }

        #[test]
        fn check_roundtrip(version: u8, payload in proptest::collection::vec(any::<u8>(), 0..40)) {
            let s = check_encode(version, &payload);
            let (v, p) = check_decode(&s).unwrap();
            prop_assert_eq!(v, version);
            prop_assert_eq!(p, payload);
        }
    }
}
