//! MurmurHash3 x86_32, the hash family used by BIP 37 Bloom filters.

/// Computes the 32-bit MurmurHash3 of `data` with the given `seed`.
///
/// This is the exact function Bitcoin Core and Btcd use inside their
/// transaction Bloom filters; `lvq-bloom` derives its k bit positions from
/// it with the BIP 37 seed schedule `seed_i = i * 0xFBA4C795 + tweak`.
///
/// # Examples
///
/// ```
/// // Published MurmurHash3 x86_32 vector.
/// assert_eq!(lvq_crypto::murmur3_32(b"", 0), 0);
/// assert_eq!(lvq_crypto::murmur3_32(b"Hello, world!", 1234), 0xfaf6cdb3);
/// ```
pub fn murmur3_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e2d51;
    const C2: u32 = 0x1b873593;

    let mut h1 = seed;

    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k1 = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);

        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xe6546b64);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k1: u32 = 0;
        for (i, &b) in tail.iter().enumerate() {
            k1 |= u32::from(b) << (8 * i);
        }
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u32;
    // fmix32 finaliser.
    h1 ^= h1 >> 16;
    h1 = h1.wrapping_mul(0x85ebca6b);
    h1 ^= h1 >> 13;
    h1 = h1.wrapping_mul(0xc2b2ae35);
    h1 ^= h1 >> 16;
    h1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vectors from the reference smhasher implementation and the Bitcoin
    /// Core bloom filter tests.
    #[test]
    fn reference_vectors() {
        assert_eq!(murmur3_32(b"", 0), 0x0000_0000);
        assert_eq!(murmur3_32(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_32(b"", 0xffff_ffff), 0x81f1_6f39);
        assert_eq!(murmur3_32(b"\xff\xff\xff\xff", 0), 0x7629_3b50);
        assert_eq!(murmur3_32(b"\x21\x43\x65\x87", 0), 0xf55b_516b);
        assert_eq!(murmur3_32(b"\x21\x43\x65\x87", 0x5082_edee), 0x2362_f9de);
        assert_eq!(murmur3_32(b"\x21\x43\x65", 0), 0x7e4a_8634);
        assert_eq!(murmur3_32(b"\x21\x43", 0), 0xa0f7_b07a);
        assert_eq!(murmur3_32(b"\x21", 0), 0x7266_1cf4);
        assert_eq!(murmur3_32(b"\x00\x00\x00\x00", 0), 0x2362_f9de);
        assert_eq!(murmur3_32(b"aaaa", 0x9747b28c), 0x5a97_808a);
        assert_eq!(murmur3_32(b"Hello, world!", 1234), 0xfaf6_cdb3);
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(murmur3_32(b"abc", 0), murmur3_32(b"abc", 1));
    }

    #[test]
    fn all_tail_lengths_covered() {
        // Just exercise the 0..3 tail paths for panics/consistency.
        for len in 0..16 {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let a = murmur3_32(&data, 42);
            let b = murmur3_32(&data, 42);
            assert_eq!(a, b);
        }
    }
}
