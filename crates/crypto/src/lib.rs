//! Hash primitives for the LVQ reproduction.
//!
//! Everything is implemented from scratch (no external crypto crates are
//! available offline) against published test vectors:
//!
//! * [`Sha256`] — FIPS 180-4 SHA-256, plus Bitcoin's double-SHA-256.
//! * [`Hash256`] — a 32-byte digest newtype used for every commitment in
//!   the workspace (Merkle roots, BMT/SMT roots, header hashes).
//! * [`murmur3_32`] — MurmurHash3 x86_32, the hash family Bitcoin's BIP 37
//!   Bloom filters use; `lvq-bloom` derives its k bit positions from it.
//! * [`base58`] — Base58 / Base58Check, used for human-readable addresses.
//!
//! # Examples
//!
//! ```
//! use lvq_crypto::{sha256, Hash256};
//!
//! let digest = sha256(b"abc");
//! assert_eq!(
//!     Hash256::from(digest).to_string(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base58;
mod hash256;
pub mod hex;
mod murmur3;
mod sha256;

pub use hash256::{Hash256, ParseHashError};
pub use murmur3::murmur3_32;
pub use sha256::{sha256, sha256d, Sha256};
