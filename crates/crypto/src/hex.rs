//! Minimal hexadecimal encoding helpers.

use std::error::Error;
use std::fmt;

/// Error returned by [`decode`] for malformed hex input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HexError {
    /// The input length was odd.
    OddLength,
    /// A character was not a hex digit.
    InvalidDigit {
        /// Byte offset of the offending character.
        index: usize,
    },
}

impl fmt::Display for HexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HexError::OddLength => f.write_str("hex string has odd length"),
            HexError::InvalidDigit { index } => {
                write!(f, "invalid hex digit at index {index}")
            }
        }
    }
}

impl Error for HexError {}

/// Encodes `bytes` as lowercase hex.
///
/// # Examples
///
/// ```
/// assert_eq!(lvq_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble < 16"));
        out.push(char::from_digit(u32::from(b & 0xF), 16).expect("nibble < 16"));
    }
    out
}

/// Decodes a hex string (either case) into bytes.
///
/// # Errors
///
/// Returns [`HexError`] for odd-length input or non-hex characters.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), lvq_crypto::hex::HexError> {
/// assert_eq!(lvq_crypto::hex::decode("DEad")?, vec![0xde, 0xad]);
/// # Ok(())
/// # }
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, HexError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(HexError::OddLength);
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or(HexError::InvalidDigit { index: i * 2 })? as u8;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or(HexError::InvalidDigit { index: i * 2 + 1 })? as u8;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_known() {
        assert_eq!(encode(&[]), "");
        assert_eq!(encode(&[0x00, 0xff, 0x10]), "00ff10");
    }

    #[test]
    fn decode_mixed_case() {
        assert_eq!(decode("AbCd").unwrap(), vec![0xab, 0xcd]);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode("abc"), Err(HexError::OddLength));
        assert_eq!(decode("zz"), Err(HexError::InvalidDigit { index: 0 }));
        assert_eq!(decode("az"), Err(HexError::InvalidDigit { index: 1 }));
    }

    proptest! {
        #[test]
        fn roundtrip(bytes: Vec<u8>) {
            prop_assert_eq!(decode(&encode(&bytes)).unwrap(), bytes);
        }
    }
}
