//! The [`Hash256`] digest newtype.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use lvq_codec::{Decodable, DecodeError, Encodable, Reader};

use crate::hex;
use crate::sha256::{sha256, sha256d, Sha256};

/// A 32-byte digest.
///
/// Every commitment in the workspace — transaction ids, Merkle roots, SMT
/// and BMT roots, header hashes — is a `Hash256`. Displayed as lowercase
/// hex.
///
/// # Examples
///
/// ```
/// use lvq_crypto::Hash256;
///
/// let h = Hash256::hash(b"abc");
/// assert!(h.to_string().starts_with("ba7816bf"));
/// assert_eq!(h, h.to_string().parse().unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Hash256([u8; 32]);

impl Hash256 {
    /// The all-zero digest, used as the previous-block hash of a genesis
    /// block.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Length of a digest in bytes.
    pub const LEN: usize = 32;

    /// Single SHA-256 of `data`.
    pub fn hash(data: &[u8]) -> Hash256 {
        Hash256(sha256(data))
    }

    /// Bitcoin-style double SHA-256 of `data`.
    pub fn hash_double(data: &[u8]) -> Hash256 {
        Hash256(sha256d(data))
    }

    /// Hashes the concatenation of two digests: `SHA256(a || b)`.
    ///
    /// This is the Merkle-tree node combiner used across the workspace.
    pub fn combine(a: &Hash256, b: &Hash256) -> Hash256 {
        let mut h = Sha256::new();
        h.update(&a.0);
        h.update(&b.0);
        Hash256(h.finalize())
    }

    /// Hashes an arbitrary sequence of byte slices as one message.
    ///
    /// Used for domain constructions like the BMT node hash
    /// `H(h_left || h_right || bf)` (paper Eq. 2) where the parts have
    /// fixed or self-evident lengths.
    pub fn hash_parts(parts: &[&[u8]]) -> Hash256 {
        let mut h = Sha256::new();
        for part in parts {
            h.update(part);
        }
        Hash256(h.finalize())
    }

    /// Returns the digest bytes.
    pub const fn to_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Borrows the digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// True if this is the all-zero digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }
}

impl From<Hash256> for [u8; 32] {
    fn from(h: Hash256) -> Self {
        h.0
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&hex::encode(&self.0))
    }
}

impl fmt::LowerHex for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&hex::encode(&self.0))
    }
}

/// Error returned when parsing a [`Hash256`] from hex fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHashError;

impl fmt::Display for ParseHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("expected 64 hexadecimal characters")
    }
}

impl Error for ParseHashError {}

impl FromStr for Hash256 {
    type Err = ParseHashError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 64 {
            return Err(ParseHashError);
        }
        let bytes = hex::decode(s).map_err(|_| ParseHashError)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Ok(Hash256(out))
    }
}

impl Encodable for Hash256 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }

    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decodable for Hash256 {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Hash256(reader.read_array()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_codec::decode_exact;

    #[test]
    fn display_and_parse_roundtrip() {
        let h = Hash256::hash(b"roundtrip");
        let parsed: Hash256 = h.to_string().parse().unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("xyz".parse::<Hash256>().is_err());
        assert!("00".repeat(31).parse::<Hash256>().is_err());
        assert!(("0".repeat(63) + "g").parse::<Hash256>().is_err());
    }

    #[test]
    fn zero_is_zero() {
        assert!(Hash256::ZERO.is_zero());
        assert!(!Hash256::hash(b"").is_zero());
        assert_eq!(Hash256::default(), Hash256::ZERO);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = Hash256::hash(b"a");
        let b = Hash256::hash(b"b");
        assert_ne!(Hash256::combine(&a, &b), Hash256::combine(&b, &a));
    }

    #[test]
    fn hash_parts_equals_concatenation() {
        let whole = Hash256::hash(b"hello world");
        let parts = Hash256::hash_parts(&[b"hello", b" ", b"world"]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn codec_roundtrip() {
        let h = Hash256::hash(b"wire");
        assert_eq!(h.encoded_len(), 32);
        assert_eq!(decode_exact::<Hash256>(&h.encode()).unwrap(), h);
    }

    #[test]
    fn ordering_is_bytewise() {
        let a = Hash256::from([0u8; 32]);
        let mut big = [0u8; 32];
        big[0] = 1;
        assert!(a < Hash256::from(big));
    }
}
