//! CLI error type.

use std::error::Error;
use std::fmt;

/// Anything that can go wrong while running a command.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The command line itself is malformed; print usage.
    Usage(String),
    /// I/O failure (reading/writing chain files or stdout).
    Io(std::io::Error),
    /// Chain file problems.
    File(lvq_chain::file::ChainFileError),
    /// Chain construction/validation problems.
    Chain(lvq_chain::ChainError),
    /// Workload generation problems.
    Workload(lvq_workload::WorkloadError),
    /// Proof generation problems.
    Prove(lvq_core::ProveError),
    /// The verifier rejected the (locally generated) response — only
    /// possible if the chain file is inconsistent.
    Verify(lvq_core::QueryError),
    /// Node/transport problems while serving or querying over TCP.
    Node(lvq_node::NodeError),
    /// On-disk block store problems.
    Store(lvq_store::StoreError),
    /// The follow-the-tip ingest pipeline died.
    Ingest(lvq_node::IngestError),
    /// `lvq fsck` found faults — the store needed repair or failed
    /// verification. The per-file report already went to stdout; this
    /// just makes the process exit nonzero.
    Fsck {
        /// How many distinct faults the check found.
        faults: usize,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => f.write_str(msg),
            CliError::Io(e) => write!(f, "i/o: {e}"),
            CliError::File(e) => write!(f, "chain file: {e}"),
            CliError::Chain(e) => write!(f, "chain: {e}"),
            CliError::Workload(e) => write!(f, "workload: {e}"),
            CliError::Prove(e) => write!(f, "prover: {e}"),
            CliError::Verify(e) => write!(f, "verification: {e}"),
            CliError::Node(e) => write!(f, "node: {e}"),
            CliError::Store(e) => write!(f, "store: {e}"),
            CliError::Ingest(e) => write!(f, "ingest: {e}"),
            CliError::Fsck { faults } => write!(
                f,
                "fsck: {faults} fault{} found",
                if *faults == 1 { "" } else { "s" }
            ),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            CliError::File(e) => Some(e),
            CliError::Chain(e) => Some(e),
            CliError::Workload(e) => Some(e),
            CliError::Prove(e) => Some(e),
            CliError::Verify(e) => Some(e),
            CliError::Node(e) => Some(e),
            CliError::Store(e) => Some(e),
            CliError::Ingest(e) => Some(e),
            CliError::Usage(_) | CliError::Fsck { .. } => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<lvq_chain::file::ChainFileError> for CliError {
    fn from(e: lvq_chain::file::ChainFileError) -> Self {
        CliError::File(e)
    }
}

impl From<lvq_chain::ChainError> for CliError {
    fn from(e: lvq_chain::ChainError) -> Self {
        CliError::Chain(e)
    }
}

impl From<lvq_workload::WorkloadError> for CliError {
    fn from(e: lvq_workload::WorkloadError) -> Self {
        CliError::Workload(e)
    }
}

impl From<lvq_core::ProveError> for CliError {
    fn from(e: lvq_core::ProveError) -> Self {
        CliError::Prove(e)
    }
}

impl From<lvq_core::QueryError> for CliError {
    fn from(e: lvq_core::QueryError) -> Self {
        CliError::Verify(e)
    }
}

impl From<lvq_node::NodeError> for CliError {
    fn from(e: lvq_node::NodeError) -> Self {
        CliError::Node(e)
    }
}

impl From<lvq_store::StoreError> for CliError {
    fn from(e: lvq_store::StoreError) -> Self {
        CliError::Store(e)
    }
}

impl From<lvq_node::IngestError> for CliError {
    fn from(e: lvq_node::IngestError) -> Self {
        CliError::Ingest(e)
    }
}
