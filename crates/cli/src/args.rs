//! Command-line argument parsing (hand-rolled; no CLI dependency).

use lvq_core::Scheme;
use lvq_workload::ProbeSpec;

use crate::error::CliError;

fn parse_u64(flag: &str, value: &str) -> Result<u64, CliError> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag} expects a number, got '{value}'")))
}

fn parse_u32(flag: &str, value: &str) -> Result<u32, CliError> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag} expects a number, got '{value}'")))
}

/// Parses `ADDR:TXS:BLOCKS` probe descriptors.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed or infeasible descriptors.
pub fn parse_probe_spec(s: &str) -> Result<ProbeSpec, CliError> {
    let parts: Vec<&str> = s.split(':').collect();
    let [address, txs, blocks] = parts.as_slice() else {
        return Err(CliError::Usage(format!(
            "--probe expects ADDR:TXS:BLOCKS, got '{s}'"
        )));
    };
    let txs = parse_u64("--probe TXS", txs)?;
    let blocks = parse_u64("--probe BLOCKS", blocks)?;
    if address.is_empty() || txs < blocks || (txs == 0) != (blocks == 0) {
        return Err(CliError::Usage(format!("infeasible probe '{s}'")));
    }
    Ok(ProbeSpec::new(*address, txs, blocks))
}

fn parse_scheme(value: &str) -> Result<Scheme, CliError> {
    Ok(match value {
        "lvq" => Scheme::Lvq,
        "no-bmt" => Scheme::LvqWithoutBmt,
        "no-smt" => Scheme::LvqWithoutSmt,
        "strawman" => Scheme::Strawman,
        other => {
            return Err(CliError::Usage(format!(
                "unknown scheme '{other}' (lvq|no-bmt|no-smt|strawman)"
            )))
        }
    })
}

/// Options of `lvq generate`.
#[derive(Debug, Clone)]
pub struct GenerateOptions {
    /// Output path.
    pub out: String,
    /// Chain length.
    pub blocks: u64,
    /// Query scheme.
    pub scheme: Scheme,
    /// Bloom filter size in bytes.
    pub bf_bytes: u32,
    /// Bloom hash functions.
    pub hashes: u32,
    /// Segment length `M` (defaults to the chain length rounded up to a
    /// power of two).
    pub segment_len: Option<u64>,
    /// Workload seed.
    pub seed: u64,
    /// Mean background transactions per block.
    pub txs_per_block: u32,
    /// Probes to plant.
    pub probes: Vec<ProbeSpec>,
}

impl GenerateOptions {
    /// Parses the arguments after `generate`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown flags or bad values.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut opts = GenerateOptions {
            out: String::new(),
            blocks: 64,
            scheme: Scheme::Lvq,
            bf_bytes: 1_920,
            hashes: 2,
            segment_len: None,
            seed: 0x1_5EED,
            txs_per_block: 12,
            probes: Vec::new(),
        };
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--out" => opts.out = value("--out")?,
                "--blocks" => opts.blocks = parse_u64("--blocks", &value("--blocks")?)?,
                "--scheme" => opts.scheme = parse_scheme(&value("--scheme")?)?,
                "--bf" => opts.bf_bytes = parse_u32("--bf", &value("--bf")?)?,
                "--k" => opts.hashes = parse_u32("--k", &value("--k")?)?,
                "--segment" => {
                    opts.segment_len = Some(parse_u64("--segment", &value("--segment")?)?)
                }
                "--seed" => opts.seed = parse_u64("--seed", &value("--seed")?)?,
                "--txs" => opts.txs_per_block = parse_u32("--txs", &value("--txs")?)?,
                "--probe" => opts.probes.push(parse_probe_spec(&value("--probe")?)?),
                other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
            }
        }
        if opts.out.is_empty() {
            return Err(CliError::Usage("generate requires --out FILE".into()));
        }
        if opts.blocks == 0 {
            return Err(CliError::Usage("--blocks must be at least 1".into()));
        }
        Ok(opts)
    }

    /// The effective segment length: explicit, or the chain length
    /// rounded up to a power of two.
    pub fn effective_segment_len(&self) -> u64 {
        self.segment_len
            .unwrap_or_else(|| self.blocks.next_power_of_two())
    }
}

/// Where `lvq query` gets its proofs from.
#[derive(Debug, Clone)]
pub enum QuerySource {
    /// Prove locally against a persisted chain file.
    File(String),
    /// Query a remote [`lvq_node::NodeServer`] over TCP.
    Remote(RemoteEndpoint),
}

/// A remote full node plus the out-of-band trust anchor.
///
/// Over TCP the client has no chain file, so the scheme parameters —
/// which a real deployment would pin out of band, like Bitcoin's
/// consensus rules — come from flags and are enforced against the
/// synced headers' commitment policy.
#[derive(Debug, Clone)]
pub struct RemoteEndpoint {
    /// `HOST:PORT` of the serving node.
    pub addr: String,
    /// Expected query scheme.
    pub scheme: Scheme,
    /// Expected Bloom filter size in bytes.
    pub bf_bytes: u32,
    /// Expected Bloom hash functions.
    pub hashes: u32,
    /// Expected segment length `M`.
    pub segment_len: u64,
}

/// Options of `lvq query`.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Local chain file or remote node.
    pub source: QuerySource,
    /// Queried address.
    pub address: String,
    /// Optional height range.
    pub range: Option<(u64, u64)>,
    /// Print the size breakdown.
    pub breakdown: bool,
    /// Retries after the first attempt on transient failures (`Busy`,
    /// disconnects, timeouts). Remote queries only.
    pub retries: u32,
    /// Base backoff between retries in milliseconds (decorrelated
    /// jitter grows it, capped at 2 s). Remote queries only.
    pub backoff_ms: u64,
    /// When set, injects reproducible transport faults (5% composite
    /// rate) seeded with this value, and seeds the retry jitter — a
    /// self-healing demo and debugging aid. Remote queries only.
    pub chaos_seed: Option<u64>,
    /// Give up dialing (and re-dialing) after this many milliseconds
    /// instead of hanging for the OS connect default. Remote queries
    /// only.
    pub connect_timeout_ms: Option<u64>,
    /// Negotiate protocol v2 and propose this in-flight window; a v1
    /// server downgrades the connection to the blocking protocol.
    /// Remote queries only.
    pub pipeline: Option<u32>,
}

impl QueryOptions {
    /// Parses the arguments after `query`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown flags or bad values.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut positional = Vec::new();
        let mut range = None;
        let mut breakdown = false;
        let mut addr = None;
        let mut scheme = Scheme::Lvq;
        let mut bf_bytes = 1_920;
        let mut hashes = 2;
        let mut segment_len = None;
        let mut scheme_flag_seen = false;
        let mut retries = 4u32;
        let mut backoff_ms = 50u64;
        let mut chaos_seed = None;
        let mut retry_flag_seen = false;
        let mut connect_timeout_ms = None;
        let mut pipeline = None;
        let mut transport_flag_seen = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
            };
            match arg.as_str() {
                "--range" => {
                    let value = value("--range")?;
                    let Some((lo, hi)) = value.split_once(':') else {
                        return Err(CliError::Usage(format!(
                            "--range expects LO:HI, got '{value}'"
                        )));
                    };
                    range = Some((parse_u64("--range LO", lo)?, parse_u64("--range HI", hi)?));
                }
                "--breakdown" => breakdown = true,
                "--addr" => addr = Some(value("--addr")?),
                "--scheme" => {
                    scheme = parse_scheme(&value("--scheme")?)?;
                    scheme_flag_seen = true;
                }
                "--bf" => {
                    bf_bytes = parse_u32("--bf", &value("--bf")?)?;
                    scheme_flag_seen = true;
                }
                "--k" => {
                    hashes = parse_u32("--k", &value("--k")?)?;
                    scheme_flag_seen = true;
                }
                "--segment" => {
                    segment_len = Some(parse_u64("--segment", &value("--segment")?)?);
                    scheme_flag_seen = true;
                }
                "--retries" => {
                    retries = parse_u32("--retries", &value("--retries")?)?;
                    retry_flag_seen = true;
                }
                "--backoff-ms" => {
                    backoff_ms = parse_u64("--backoff-ms", &value("--backoff-ms")?)?;
                    retry_flag_seen = true;
                }
                "--chaos-seed" => {
                    chaos_seed = Some(parse_u64("--chaos-seed", &value("--chaos-seed")?)?);
                    retry_flag_seen = true;
                }
                "--connect-timeout-ms" => {
                    let ms = parse_u64("--connect-timeout-ms", &value("--connect-timeout-ms")?)?;
                    if ms == 0 {
                        return Err(CliError::Usage(
                            "--connect-timeout-ms must be at least 1".into(),
                        ));
                    }
                    connect_timeout_ms = Some(ms);
                    transport_flag_seen = true;
                }
                "--pipeline" => {
                    let depth = parse_u32("--pipeline", &value("--pipeline")?)?;
                    if depth == 0 {
                        return Err(CliError::Usage("--pipeline must be at least 1".into()));
                    }
                    pipeline = Some(depth);
                    transport_flag_seen = true;
                }
                other if !other.starts_with("--") => positional.push(other.to_string()),
                other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
            }
        }
        let (source, address) = match addr {
            Some(addr) => {
                let [address] = positional.as_slice() else {
                    return Err(CliError::Usage(
                        "query --addr takes exactly one address".into(),
                    ));
                };
                let Some(segment_len) = segment_len else {
                    return Err(CliError::Usage(
                        "query --addr requires --segment M (the scheme parameters \
                         are the client's out-of-band trust anchor)"
                            .into(),
                    ));
                };
                if breakdown {
                    return Err(CliError::Usage(
                        "--breakdown needs the raw response; it is only available \
                         with a local chain file"
                            .into(),
                    ));
                }
                let endpoint = RemoteEndpoint {
                    addr,
                    scheme,
                    bf_bytes,
                    hashes,
                    segment_len,
                };
                (QuerySource::Remote(endpoint), address.clone())
            }
            None => {
                if scheme_flag_seen {
                    return Err(CliError::Usage(
                        "--scheme/--bf/--k/--segment only apply with --addr \
                         (a chain file carries its own parameters)"
                            .into(),
                    ));
                }
                if retry_flag_seen {
                    return Err(CliError::Usage(
                        "--retries/--backoff-ms/--chaos-seed only apply with --addr \
                         (a local proof has no transport to fail)"
                            .into(),
                    ));
                }
                if transport_flag_seen {
                    return Err(CliError::Usage(
                        "--connect-timeout-ms/--pipeline only apply with --addr \
                         (a local proof has no connection to tune)"
                            .into(),
                    ));
                }
                let [file, address] = positional.as_slice() else {
                    return Err(CliError::Usage(
                        "query takes a chain file and an address".into(),
                    ));
                };
                (QuerySource::File(file.clone()), address.clone())
            }
        };
        if pipeline.is_some() && chaos_seed.is_some() {
            return Err(CliError::Usage(
                "--pipeline and --chaos-seed are mutually exclusive (the fault \
                 injector wraps the blocking transport stack)"
                    .into(),
            ));
        }
        Ok(QueryOptions {
            source,
            address,
            range,
            breakdown,
            retries,
            backoff_ms,
            chaos_seed,
            connect_timeout_ms,
            pipeline,
        })
    }
}

/// Where `lvq serve` gets its chain from.
#[derive(Debug, Clone)]
pub enum ServeSource {
    /// Deserialize a chain file into memory.
    File {
        /// Chain file path.
        path: String,
        /// Skip the full commitment replay (`--trust-file`): record
        /// checksums vouch for the bytes, derived state is rebuilt in
        /// one streaming pass.
        trusted: bool,
    },
    /// Serve straight from an on-disk block store directory.
    Store(String),
}

/// Options of `lvq serve`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Chain file or store directory.
    pub source: ServeSource,
    /// Listen address (`HOST:PORT`; port 0 picks a free port).
    pub addr: String,
    /// Stop after this many requests (for scripted runs and tests).
    pub max_requests: Option<u64>,
    /// Byte budget for the dyadic-span Bloom filter cache.
    pub filter_cache: Option<usize>,
    /// Byte budget for the per-block SMT cache.
    pub smt_cache: Option<usize>,
    /// Worker threads in the serving pool (0 = one per CPU).
    pub workers: usize,
    /// Accept-queue depth before connections are shed with `Busy`.
    pub queue: Option<usize>,
    /// Per-request deadline in milliseconds (0 = none).
    pub deadline_ms: Option<u64>,
    /// Largest per-connection pipelining window granted to protocol-v2
    /// clients (requests past it are shed with `Busy`).
    pub max_in_flight: Option<u32>,
    /// Byte budget for the decoded-block LRU cache (`--store` only).
    pub block_cache: Option<usize>,
    /// Chain file to follow while serving (`--store` only): blocks the
    /// store does not have yet are ingested live, growing the served
    /// tip while queries keep being answered.
    pub follow: Option<String>,
    /// Reorg budget for the live ingest (`--follow` only): 0 keeps the
    /// strict extend-only feed, >0 lets the ingester store competing
    /// branches forking at most this many blocks below the tip and
    /// switch to whichever is longest.
    pub max_reorg_depth: u64,
    /// Serve through the persistent address index (`--store` only):
    /// reopen becomes point reads off the index's anchored root, built
    /// automatically on first open.
    pub index: bool,
    /// Byte budget for the index node LRU cache (`--index` only).
    pub index_cache: Option<usize>,
}

impl ServeOptions {
    /// Parses the arguments after `serve`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown flags or bad values.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut positional = Vec::new();
        let mut addr = "127.0.0.1:0".to_string();
        let mut max_requests = None;
        let mut filter_cache = None;
        let mut smt_cache = None;
        let mut workers = 0;
        let mut queue = None;
        let mut deadline_ms = None;
        let mut max_in_flight = None;
        let mut store = None;
        let mut trusted = false;
        let mut block_cache = None;
        let mut follow = None;
        let mut max_reorg_depth = 0;
        let mut index = false;
        let mut index_cache = None;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
            };
            match arg.as_str() {
                "--addr" => addr = value("--addr")?,
                "--max-requests" => {
                    max_requests = Some(parse_u64("--max-requests", &value("--max-requests")?)?)
                }
                "--filter-cache" => {
                    filter_cache =
                        Some(parse_u64("--filter-cache", &value("--filter-cache")?)? as usize)
                }
                "--smt-cache" => {
                    smt_cache = Some(parse_u64("--smt-cache", &value("--smt-cache")?)? as usize)
                }
                "--workers" => workers = parse_u64("--workers", &value("--workers")?)? as usize,
                "--queue" => {
                    let depth = parse_u64("--queue", &value("--queue")?)? as usize;
                    if depth == 0 {
                        return Err(CliError::Usage("--queue must be at least 1".into()));
                    }
                    queue = Some(depth);
                }
                "--deadline-ms" => {
                    deadline_ms = Some(parse_u64("--deadline-ms", &value("--deadline-ms")?)?)
                }
                "--max-in-flight" => {
                    let depth = parse_u32("--max-in-flight", &value("--max-in-flight")?)?;
                    if depth == 0 {
                        return Err(CliError::Usage("--max-in-flight must be at least 1".into()));
                    }
                    max_in_flight = Some(depth);
                }
                "--store" => store = Some(value("--store")?),
                "--trust-file" => trusted = true,
                "--block-cache" => {
                    block_cache =
                        Some(parse_u64("--block-cache", &value("--block-cache")?)? as usize)
                }
                "--follow" => follow = Some(value("--follow")?),
                "--max-reorg-depth" => {
                    max_reorg_depth = parse_u64("--max-reorg-depth", &value("--max-reorg-depth")?)?
                }
                "--index" => index = true,
                "--index-cache" => {
                    index_cache =
                        Some(parse_u64("--index-cache", &value("--index-cache")?)? as usize)
                }
                other if !other.starts_with("--") => positional.push(other.to_string()),
                other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
            }
        }
        if index_cache.is_some() && !index {
            return Err(CliError::Usage(
                "--index-cache only applies with --index".into(),
            ));
        }
        if max_reorg_depth > 0 && follow.is_none() {
            return Err(CliError::Usage(
                "--max-reorg-depth only applies with --follow (reorgs arrive \
                 through the live feed)"
                    .into(),
            ));
        }
        let source = match (store, positional.as_slice()) {
            (Some(dir), []) => {
                if trusted {
                    return Err(CliError::Usage(
                        "--trust-file applies to chain files; a store is always \
                         opened via its checksums"
                            .into(),
                    ));
                }
                ServeSource::Store(dir)
            }
            (None, [file]) => {
                if block_cache.is_some() {
                    return Err(CliError::Usage(
                        "--block-cache only applies with --store (a chain file \
                         is fully resident)"
                            .into(),
                    ));
                }
                if follow.is_some() {
                    return Err(CliError::Usage(
                        "--follow only applies with --store (live ingest needs \
                         a durable store to append into)"
                            .into(),
                    ));
                }
                if index {
                    return Err(CliError::Usage(
                        "--index only applies with --store (the address index \
                         lives inside the store directory)"
                            .into(),
                    ));
                }
                ServeSource::File {
                    path: file.clone(),
                    trusted,
                }
            }
            _ => {
                return Err(CliError::Usage(
                    "serve takes exactly one chain file, or --store DIR".into(),
                ))
            }
        };
        Ok(ServeOptions {
            source,
            addr,
            max_requests,
            filter_cache,
            smt_cache,
            workers,
            queue,
            deadline_ms,
            max_in_flight,
            block_cache,
            follow,
            max_reorg_depth,
            index,
            index_cache,
        })
    }
}

/// Options of `lvq ingest`.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Input chain file.
    pub file: String,
    /// Destination store directory (must not already be a store).
    pub store: String,
    /// Load the chain file with checksum-only verification
    /// (`--trust-file`) instead of the full commitment replay.
    pub trusted: bool,
    /// Target segment size in bytes before rotation.
    pub segment_bytes: Option<u64>,
    /// Also build the persistent address index, so the first
    /// `serve --store --index` starts with point reads instead of a
    /// build pass.
    pub index: bool,
}

impl IngestOptions {
    /// Parses the arguments after `ingest`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown flags or bad values.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut positional = Vec::new();
        let mut store = None;
        let mut trusted = false;
        let mut segment_bytes = None;
        let mut index = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
            };
            match arg.as_str() {
                "--store" => store = Some(value("--store")?),
                "--trust-file" => trusted = true,
                "--segment-bytes" => {
                    let bytes = parse_u64("--segment-bytes", &value("--segment-bytes")?)?;
                    if bytes == 0 {
                        return Err(CliError::Usage("--segment-bytes must be at least 1".into()));
                    }
                    segment_bytes = Some(bytes);
                }
                "--index" => index = true,
                other if !other.starts_with("--") => positional.push(other.to_string()),
                other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
            }
        }
        let [file] = positional.as_slice() else {
            return Err(CliError::Usage(
                "ingest takes exactly one chain file".into(),
            ));
        };
        let Some(store) = store else {
            return Err(CliError::Usage("ingest requires --store DIR".into()));
        };
        Ok(IngestOptions {
            file: file.clone(),
            store,
            trusted,
            segment_bytes,
            index,
        })
    }
}

/// Options of `lvq fsck`.
#[derive(Debug, Clone)]
pub struct FsckOptions {
    /// Store directory to check.
    pub store: String,
    /// Also audit the persistent address index (`addr-index/`): full
    /// node-by-node verification, not just the anchored root record.
    pub index: bool,
}

impl FsckOptions {
    /// Parses the arguments after `fsck`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown flags or bad values.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut store = None;
        let mut index = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
            };
            match arg.as_str() {
                "--store" => store = Some(value("--store")?),
                "--index" => index = true,
                other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
            }
        }
        let Some(store) = store else {
            return Err(CliError::Usage("fsck requires --store DIR".into()));
        };
        Ok(FsckOptions { store, index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generate_defaults_and_flags() {
        let opts = GenerateOptions::parse(&strings(&[
            "--out", "c.lvq", "--blocks", "100", "--scheme", "no-smt", "--bf", "640", "--seed",
            "7", "--probe", "1Abc:5:3",
        ]))
        .unwrap();
        assert_eq!(opts.out, "c.lvq");
        assert_eq!(opts.blocks, 100);
        assert_eq!(opts.scheme, Scheme::LvqWithoutSmt);
        assert_eq!(opts.bf_bytes, 640);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.probes.len(), 1);
        // 100 blocks -> segment 128 by default.
        assert_eq!(opts.effective_segment_len(), 128);
    }

    #[test]
    fn generate_requires_out() {
        assert!(matches!(
            GenerateOptions::parse(&strings(&["--blocks", "4"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn probe_spec_parsing() {
        let p = parse_probe_spec("1Addr:10:5").unwrap();
        assert_eq!(p.address.as_str(), "1Addr");
        assert_eq!(p.tx_count, 10);
        assert_eq!(p.block_count, 5);
        for bad in ["1Addr", "1Addr:5", "1Addr:2:5", ":1:1", "1A:0:1", "1A:x:1"] {
            assert!(parse_probe_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn query_parsing() {
        let q = QueryOptions::parse(&strings(&[
            "c.lvq",
            "1Addr",
            "--range",
            "5:9",
            "--breakdown",
        ]))
        .unwrap();
        assert!(matches!(&q.source, QuerySource::File(f) if f == "c.lvq"));
        assert_eq!(q.address, "1Addr");
        assert_eq!(q.range, Some((5, 9)));
        assert!(q.breakdown);
        assert!(QueryOptions::parse(&strings(&["c.lvq"])).is_err());
        assert!(QueryOptions::parse(&strings(&["c.lvq", "1A", "--range", "5"])).is_err());
    }

    #[test]
    fn query_remote_parsing() {
        let q = QueryOptions::parse(&strings(&[
            "1Addr",
            "--addr",
            "127.0.0.1:4000",
            "--segment",
            "16",
            "--bf",
            "640",
        ]))
        .unwrap();
        let QuerySource::Remote(remote) = &q.source else {
            panic!("--addr selects the remote source");
        };
        assert_eq!(remote.addr, "127.0.0.1:4000");
        assert_eq!(remote.scheme, Scheme::Lvq);
        assert_eq!(remote.bf_bytes, 640);
        assert_eq!(remote.hashes, 2);
        assert_eq!(remote.segment_len, 16);
        assert_eq!(q.address, "1Addr");

        // --segment is the mandatory part of the trust anchor.
        assert!(QueryOptions::parse(&strings(&["1Addr", "--addr", "h:1"])).is_err());
        // --breakdown needs the raw response.
        assert!(QueryOptions::parse(&strings(&[
            "1Addr",
            "--addr",
            "h:1",
            "--segment",
            "8",
            "--breakdown"
        ]))
        .is_err());
        // Scheme flags without --addr are a mistake, not noise.
        assert!(QueryOptions::parse(&strings(&["c.lvq", "1Addr", "--segment", "8"])).is_err());
        // Remote mode takes one positional, not a file.
        assert!(QueryOptions::parse(&strings(&[
            "c.lvq",
            "1Addr",
            "--addr",
            "h:1",
            "--segment",
            "8"
        ]))
        .is_err());
    }

    #[test]
    fn query_retry_flags() {
        let q = QueryOptions::parse(&strings(&[
            "1Addr",
            "--addr",
            "127.0.0.1:4000",
            "--segment",
            "16",
            "--retries",
            "8",
            "--backoff-ms",
            "25",
            "--chaos-seed",
            "42",
        ]))
        .unwrap();
        assert_eq!(q.retries, 8);
        assert_eq!(q.backoff_ms, 25);
        assert_eq!(q.chaos_seed, Some(42));

        // Defaults: a handful of retries, modest backoff, no chaos.
        let q =
            QueryOptions::parse(&strings(&["1Addr", "--addr", "h:1", "--segment", "8"])).unwrap();
        assert_eq!(q.retries, 4);
        assert_eq!(q.backoff_ms, 50);
        assert_eq!(q.chaos_seed, None);

        // Retry flags without a transport are a mistake, not noise.
        assert!(QueryOptions::parse(&strings(&["c.lvq", "1Addr", "--retries", "3"])).is_err());
        assert!(QueryOptions::parse(&strings(&["c.lvq", "1Addr", "--chaos-seed", "1"])).is_err());
    }

    #[test]
    fn query_transport_flags() {
        let q = QueryOptions::parse(&strings(&[
            "1Addr",
            "--addr",
            "127.0.0.1:4000",
            "--segment",
            "16",
            "--connect-timeout-ms",
            "500",
            "--pipeline",
            "8",
        ]))
        .unwrap();
        assert_eq!(q.connect_timeout_ms, Some(500));
        assert_eq!(q.pipeline, Some(8));

        // Defaults: OS connect timeout, blocking v1 protocol.
        let q =
            QueryOptions::parse(&strings(&["1Addr", "--addr", "h:1", "--segment", "8"])).unwrap();
        assert_eq!(q.connect_timeout_ms, None);
        assert_eq!(q.pipeline, None);

        // Zero is a mistake for both.
        assert!(QueryOptions::parse(&strings(&[
            "1Addr",
            "--addr",
            "h:1",
            "--segment",
            "8",
            "--connect-timeout-ms",
            "0"
        ]))
        .is_err());
        assert!(QueryOptions::parse(&strings(&[
            "1Addr",
            "--addr",
            "h:1",
            "--segment",
            "8",
            "--pipeline",
            "0"
        ]))
        .is_err());
        // Transport flags without a transport are a mistake, not noise.
        assert!(
            QueryOptions::parse(&strings(&["c.lvq", "1Addr", "--connect-timeout-ms", "9"]))
                .is_err()
        );
        assert!(QueryOptions::parse(&strings(&["c.lvq", "1Addr", "--pipeline", "4"])).is_err());
        // Chaos wraps the blocking stack; pipelining bypasses it.
        assert!(QueryOptions::parse(&strings(&[
            "1Addr",
            "--addr",
            "h:1",
            "--segment",
            "8",
            "--pipeline",
            "4",
            "--chaos-seed",
            "1"
        ]))
        .is_err());
    }

    #[test]
    fn serve_parsing() {
        let s = ServeOptions::parse(&strings(&["c.lvq"])).unwrap();
        assert!(matches!(&s.source, ServeSource::File { path, trusted: false } if path == "c.lvq"));
        assert_eq!(s.addr, "127.0.0.1:0");
        assert_eq!(s.max_requests, None);
        assert_eq!(s.filter_cache, None);
        assert_eq!(s.workers, 0);
        assert_eq!(s.queue, None);
        assert_eq!(s.deadline_ms, None);
        assert_eq!(s.block_cache, None);

        let s = ServeOptions::parse(&strings(&[
            "c.lvq",
            "--addr",
            "0.0.0.0:4000",
            "--max-requests",
            "12",
            "--filter-cache",
            "1048576",
            "--smt-cache",
            "65536",
            "--workers",
            "4",
            "--queue",
            "32",
            "--deadline-ms",
            "250",
            "--max-in-flight",
            "16",
        ]))
        .unwrap();
        assert_eq!(s.addr, "0.0.0.0:4000");
        assert_eq!(s.max_requests, Some(12));
        assert_eq!(s.filter_cache, Some(1_048_576));
        assert_eq!(s.smt_cache, Some(65_536));
        assert_eq!(s.workers, 4);
        assert_eq!(s.queue, Some(32));
        assert_eq!(s.deadline_ms, Some(250));
        assert_eq!(s.max_in_flight, Some(16));

        assert!(ServeOptions::parse(&strings(&[])).is_err());
        assert!(ServeOptions::parse(&strings(&["a.lvq", "b.lvq"])).is_err());
        assert!(ServeOptions::parse(&strings(&["a.lvq", "--max-requests", "x"])).is_err());
        assert!(ServeOptions::parse(&strings(&["a.lvq", "--queue", "0"])).is_err());
        assert!(ServeOptions::parse(&strings(&["a.lvq", "--max-in-flight", "0"])).is_err());
    }

    #[test]
    fn serve_source_parsing() {
        let s = ServeOptions::parse(&strings(&["c.lvq", "--trust-file"])).unwrap();
        assert!(matches!(&s.source, ServeSource::File { trusted: true, .. }));

        let s =
            ServeOptions::parse(&strings(&["--store", "dir", "--block-cache", "4096"])).unwrap();
        assert!(matches!(&s.source, ServeSource::Store(dir) if dir == "dir"));
        assert_eq!(s.block_cache, Some(4096));

        let s = ServeOptions::parse(&strings(&["--store", "dir", "--follow", "tip.lvq"])).unwrap();
        assert!(matches!(&s.source, ServeSource::Store(dir) if dir == "dir"));
        assert_eq!(s.follow.as_deref(), Some("tip.lvq"));

        // A file and a store are mutually exclusive sources.
        assert!(ServeOptions::parse(&strings(&["c.lvq", "--store", "dir"])).is_err());
        // --follow needs a durable store to append into.
        assert!(ServeOptions::parse(&strings(&["c.lvq", "--follow", "tip.lvq"])).is_err());
        // --trust-file is meaningless for a store.
        assert!(ServeOptions::parse(&strings(&["--store", "dir", "--trust-file"])).is_err());
        // --block-cache is meaningless for a fully resident file.
        assert!(ServeOptions::parse(&strings(&["c.lvq", "--block-cache", "1"])).is_err());
    }

    #[test]
    fn serve_index_parsing() {
        let s = ServeOptions::parse(&strings(&["--store", "dir", "--index"])).unwrap();
        assert!(matches!(&s.source, ServeSource::Store(dir) if dir == "dir"));
        assert!(s.index);
        assert_eq!(s.index_cache, None);

        let s = ServeOptions::parse(&strings(&[
            "--store",
            "dir",
            "--index",
            "--index-cache",
            "1048576",
        ]))
        .unwrap();
        assert!(s.index);
        assert_eq!(s.index_cache, Some(1_048_576));

        // The index lives inside the store directory — never with a file.
        assert!(ServeOptions::parse(&strings(&["c.lvq", "--index"])).is_err());
        // A cache budget for an index that is not opened is a mistake.
        assert!(ServeOptions::parse(&strings(&["--store", "dir", "--index-cache", "1"])).is_err());
    }

    #[test]
    fn ingest_parsing() {
        let i = IngestOptions::parse(&strings(&["c.lvq", "--store", "dir"])).unwrap();
        assert_eq!(i.file, "c.lvq");
        assert_eq!(i.store, "dir");
        assert!(!i.trusted);
        assert_eq!(i.segment_bytes, None);

        let i = IngestOptions::parse(&strings(&[
            "c.lvq",
            "--store",
            "dir",
            "--trust-file",
            "--segment-bytes",
            "1048576",
        ]))
        .unwrap();
        assert!(i.trusted);
        assert_eq!(i.segment_bytes, Some(1_048_576));
        assert!(!i.index);

        let i = IngestOptions::parse(&strings(&["c.lvq", "--store", "dir", "--index"])).unwrap();
        assert!(i.index);

        assert!(IngestOptions::parse(&strings(&["c.lvq"])).is_err());
        assert!(IngestOptions::parse(&strings(&["--store", "dir"])).is_err());
        assert!(IngestOptions::parse(&strings(&["a", "b", "--store", "dir"])).is_err());
        assert!(
            IngestOptions::parse(&strings(&["a", "--store", "d", "--segment-bytes", "0"])).is_err()
        );
    }

    #[test]
    fn fsck_parsing() {
        let opts = FsckOptions::parse(&strings(&["--store", "dir"])).unwrap();
        assert_eq!(opts.store, "dir");
        assert!(!opts.index);

        let opts = FsckOptions::parse(&strings(&["--store", "dir", "--index"])).unwrap();
        assert!(opts.index);

        assert!(FsckOptions::parse(&strings(&[])).is_err());
        assert!(FsckOptions::parse(&strings(&["--index"])).is_err());
        assert!(FsckOptions::parse(&strings(&["--store", "dir", "extra"])).is_err());
    }

    #[test]
    fn scheme_names() {
        assert_eq!(parse_scheme("lvq").unwrap(), Scheme::Lvq);
        assert_eq!(parse_scheme("no-bmt").unwrap(), Scheme::LvqWithoutBmt);
        assert_eq!(parse_scheme("strawman").unwrap(), Scheme::Strawman);
        assert!(parse_scheme("bogus").is_err());
    }
}
