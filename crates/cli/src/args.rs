//! Command-line argument parsing (hand-rolled; no CLI dependency).

use lvq_core::Scheme;
use lvq_workload::ProbeSpec;

use crate::error::CliError;

fn parse_u64(flag: &str, value: &str) -> Result<u64, CliError> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag} expects a number, got '{value}'")))
}

fn parse_u32(flag: &str, value: &str) -> Result<u32, CliError> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag} expects a number, got '{value}'")))
}

/// Parses `ADDR:TXS:BLOCKS` probe descriptors.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed or infeasible descriptors.
pub fn parse_probe_spec(s: &str) -> Result<ProbeSpec, CliError> {
    let parts: Vec<&str> = s.split(':').collect();
    let [address, txs, blocks] = parts.as_slice() else {
        return Err(CliError::Usage(format!(
            "--probe expects ADDR:TXS:BLOCKS, got '{s}'"
        )));
    };
    let txs = parse_u64("--probe TXS", txs)?;
    let blocks = parse_u64("--probe BLOCKS", blocks)?;
    if address.is_empty() || txs < blocks || (txs == 0) != (blocks == 0) {
        return Err(CliError::Usage(format!("infeasible probe '{s}'")));
    }
    Ok(ProbeSpec::new(*address, txs, blocks))
}

fn parse_scheme(value: &str) -> Result<Scheme, CliError> {
    Ok(match value {
        "lvq" => Scheme::Lvq,
        "no-bmt" => Scheme::LvqWithoutBmt,
        "no-smt" => Scheme::LvqWithoutSmt,
        "strawman" => Scheme::Strawman,
        other => {
            return Err(CliError::Usage(format!(
                "unknown scheme '{other}' (lvq|no-bmt|no-smt|strawman)"
            )))
        }
    })
}

/// Options of `lvq generate`.
#[derive(Debug, Clone)]
pub struct GenerateOptions {
    /// Output path.
    pub out: String,
    /// Chain length.
    pub blocks: u64,
    /// Query scheme.
    pub scheme: Scheme,
    /// Bloom filter size in bytes.
    pub bf_bytes: u32,
    /// Bloom hash functions.
    pub hashes: u32,
    /// Segment length `M` (defaults to the chain length rounded up to a
    /// power of two).
    pub segment_len: Option<u64>,
    /// Workload seed.
    pub seed: u64,
    /// Mean background transactions per block.
    pub txs_per_block: u32,
    /// Probes to plant.
    pub probes: Vec<ProbeSpec>,
}

impl GenerateOptions {
    /// Parses the arguments after `generate`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown flags or bad values.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut opts = GenerateOptions {
            out: String::new(),
            blocks: 64,
            scheme: Scheme::Lvq,
            bf_bytes: 1_920,
            hashes: 2,
            segment_len: None,
            seed: 0x1_5EED,
            txs_per_block: 12,
            probes: Vec::new(),
        };
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--out" => opts.out = value("--out")?,
                "--blocks" => opts.blocks = parse_u64("--blocks", &value("--blocks")?)?,
                "--scheme" => opts.scheme = parse_scheme(&value("--scheme")?)?,
                "--bf" => opts.bf_bytes = parse_u32("--bf", &value("--bf")?)?,
                "--k" => opts.hashes = parse_u32("--k", &value("--k")?)?,
                "--segment" => {
                    opts.segment_len = Some(parse_u64("--segment", &value("--segment")?)?)
                }
                "--seed" => opts.seed = parse_u64("--seed", &value("--seed")?)?,
                "--txs" => opts.txs_per_block = parse_u32("--txs", &value("--txs")?)?,
                "--probe" => opts.probes.push(parse_probe_spec(&value("--probe")?)?),
                other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
            }
        }
        if opts.out.is_empty() {
            return Err(CliError::Usage("generate requires --out FILE".into()));
        }
        if opts.blocks == 0 {
            return Err(CliError::Usage("--blocks must be at least 1".into()));
        }
        Ok(opts)
    }

    /// The effective segment length: explicit, or the chain length
    /// rounded up to a power of two.
    pub fn effective_segment_len(&self) -> u64 {
        self.segment_len
            .unwrap_or_else(|| self.blocks.next_power_of_two())
    }
}

/// Options of `lvq query`.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Chain file path.
    pub file: String,
    /// Queried address.
    pub address: String,
    /// Optional height range.
    pub range: Option<(u64, u64)>,
    /// Print the size breakdown.
    pub breakdown: bool,
}

impl QueryOptions {
    /// Parses the arguments after `query`.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown flags or bad values.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut positional = Vec::new();
        let mut range = None;
        let mut breakdown = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--range" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| CliError::Usage("--range needs LO:HI".into()))?;
                    let Some((lo, hi)) = value.split_once(':') else {
                        return Err(CliError::Usage(format!(
                            "--range expects LO:HI, got '{value}'"
                        )));
                    };
                    range = Some((parse_u64("--range LO", lo)?, parse_u64("--range HI", hi)?));
                }
                "--breakdown" => breakdown = true,
                other if !other.starts_with("--") => positional.push(other.to_string()),
                other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
            }
        }
        let [file, address] = positional.as_slice() else {
            return Err(CliError::Usage(
                "query takes a chain file and an address".into(),
            ));
        };
        Ok(QueryOptions {
            file: file.clone(),
            address: address.clone(),
            range,
            breakdown,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generate_defaults_and_flags() {
        let opts = GenerateOptions::parse(&strings(&[
            "--out", "c.lvq", "--blocks", "100", "--scheme", "no-smt", "--bf", "640", "--seed",
            "7", "--probe", "1Abc:5:3",
        ]))
        .unwrap();
        assert_eq!(opts.out, "c.lvq");
        assert_eq!(opts.blocks, 100);
        assert_eq!(opts.scheme, Scheme::LvqWithoutSmt);
        assert_eq!(opts.bf_bytes, 640);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.probes.len(), 1);
        // 100 blocks -> segment 128 by default.
        assert_eq!(opts.effective_segment_len(), 128);
    }

    #[test]
    fn generate_requires_out() {
        assert!(matches!(
            GenerateOptions::parse(&strings(&["--blocks", "4"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn probe_spec_parsing() {
        let p = parse_probe_spec("1Addr:10:5").unwrap();
        assert_eq!(p.address.as_str(), "1Addr");
        assert_eq!(p.tx_count, 10);
        assert_eq!(p.block_count, 5);
        for bad in ["1Addr", "1Addr:5", "1Addr:2:5", ":1:1", "1A:0:1", "1A:x:1"] {
            assert!(parse_probe_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn query_parsing() {
        let q = QueryOptions::parse(&strings(&[
            "c.lvq",
            "1Addr",
            "--range",
            "5:9",
            "--breakdown",
        ]))
        .unwrap();
        assert_eq!(q.file, "c.lvq");
        assert_eq!(q.address, "1Addr");
        assert_eq!(q.range, Some((5, 9)));
        assert!(q.breakdown);
        assert!(QueryOptions::parse(&strings(&["c.lvq"])).is_err());
        assert!(QueryOptions::parse(&strings(&["c.lvq", "1A", "--range", "5"])).is_err());
    }

    #[test]
    fn scheme_names() {
        assert_eq!(parse_scheme("lvq").unwrap(), Scheme::Lvq);
        assert_eq!(parse_scheme("no-bmt").unwrap(), Scheme::LvqWithoutBmt);
        assert_eq!(parse_scheme("strawman").unwrap(), Scheme::Strawman);
        assert!(parse_scheme("bogus").is_err());
    }
}
