//! The command implementations.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use lvq_bloom::BloomParams;
use lvq_chain::{
    file as chain_file, Address, BlockSource, CacheConfig, CacheStats, Chain, TableSource,
};
use lvq_core::{Completeness, LightClient, Prover, SchemeConfig, VerifiedHistory};
use lvq_node::{
    FaultPlan, FaultyTransport, FullNode, IngestConfig, LightNode, LiveNode, MemoryFeed,
    Negotiated, NodeServer, PipelinedTcpTransport, QueryRun, QuerySpec, ReconnectingTcpTransport,
    Retrier, RetryPolicy, ServerConfig, SupervisorConfig, TcpOptions, TipIngester, Transport,
};
use lvq_store::StoreConfig;
use lvq_workload::{TrafficModel, WorkloadBuilder};

use crate::args::{
    FsckOptions, GenerateOptions, IngestOptions, QueryOptions, QuerySource, RemoteEndpoint,
    ServeOptions, ServeSource,
};
use crate::error::CliError;

fn human_bytes(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.2} MB", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2} KB", n as f64 / 1e3)
    } else {
        format!("{n} B")
    }
}

/// `lvq generate`: build a workload chain and persist it.
pub fn generate(opts: &GenerateOptions, out: &mut impl Write) -> Result<(), CliError> {
    let bloom = BloomParams::new(opts.bf_bytes, opts.hashes)
        .map_err(|e| CliError::Usage(format!("bad bloom parameters: {e}")))?;
    let config = SchemeConfig::new(opts.scheme, bloom, opts.effective_segment_len())?;
    let workload = WorkloadBuilder::new(config.chain_params())
        .blocks(opts.blocks)
        .traffic(TrafficModel::tiny().with_txs_per_block(opts.txs_per_block))
        .seed(opts.seed)
        .probes(opts.probes.iter().cloned())
        .build()?;
    chain_file::save_to_path(&workload.chain, &opts.out)?;
    writeln!(
        out,
        "wrote {} blocks ({} scheme, {} filters, M = {}) to {}",
        opts.blocks,
        opts.scheme,
        human_bytes(u64::from(opts.bf_bytes)),
        opts.effective_segment_len(),
        opts.out
    )?;
    for probe in &workload.probes {
        writeln!(
            out,
            "planted {}: {} txs across {} blocks",
            probe.address,
            probe.tx_count,
            probe.block_heights.len()
        )?;
    }
    Ok(())
}

fn load_with_config(path: &str) -> Result<(Chain, SchemeConfig), CliError> {
    let chain = chain_file::load_from_path(path)?;
    let config = SchemeConfig::from_chain_params(chain.params())
        .ok_or_else(|| CliError::Usage("chain file commitments match no known scheme".into()))?;
    Ok((chain, config))
}

/// `lvq info`: print a chain summary.
pub fn info(path: &str, out: &mut impl Write) -> Result<(), CliError> {
    let (chain, config) = load_with_config(path)?;
    let body_bytes: u64 = (1..=chain.tip_height())
        .map(|h| chain.block(h).expect("in range").integral_size() as u64)
        .sum();
    let header_bytes: u64 = chain.headers().iter().map(|h| h.storage_len() as u64).sum();
    writeln!(out, "chain      : {path}")?;
    writeln!(out, "scheme     : {}", config.scheme())?;
    writeln!(
        out,
        "bloom      : {} bytes, k = {}",
        config.bloom().size_bytes(),
        config.bloom().hashes()
    )?;
    writeln!(out, "segment M  : {}", config.segment_len())?;
    writeln!(out, "blocks     : {}", chain.tip_height())?;
    writeln!(
        out,
        "full node  : {} (bodies) — what a full node stores",
        human_bytes(body_bytes)
    )?;
    writeln!(
        out,
        "light node : {} (headers only)",
        human_bytes(header_bytes)
    )?;
    if chain.tip_height() > 0 {
        writeln!(
            out,
            "tip hash   : {}",
            chain
                .header(chain.tip_height())
                .expect("tip exists")
                .block_hash()
        )?;
    }
    Ok(())
}

/// `lvq validate`: full integrity check.
pub fn validate(path: &str, out: &mut impl Write) -> Result<(), CliError> {
    let (chain, _) = load_with_config(path)?;
    chain.validate()?;
    writeln!(
        out,
        "ok: {} blocks, every commitment recomputed and matched",
        chain.tip_height()
    )?;
    Ok(())
}

/// Prints the part of a query report that local and remote queries
/// share: the verified history and its completeness level.
fn print_history(
    out: &mut impl Write,
    address: &Address,
    range: Option<(u64, u64)>,
    history: &VerifiedHistory,
) -> Result<(), CliError> {
    let completeness = match history.completeness {
        Completeness::Complete => "complete (no omissions possible)",
        Completeness::CorrectnessOnly => "correctness only (strawman cannot prove completeness)",
    };
    writeln!(out, "address      : {address}")?;
    if let Some((lo, hi)) = range {
        writeln!(out, "range        : blocks {lo}..={hi}")?;
    }
    writeln!(out, "transactions : {}", history.transactions.len())?;
    for (height, tx) in &history.transactions {
        writeln!(out, "  block {height:>6}  txid {}", tx.txid())?;
    }
    writeln!(
        out,
        "balance      : {} satoshi (received {}, spent {})",
        history.balance.net(),
        history.balance.received,
        history.balance.spent
    )?;
    writeln!(out, "verification : {completeness}")?;
    Ok(())
}

/// `lvq query`: verifiable history query, locally proved from a chain
/// file or fetched from a remote node over TCP.
pub fn query(opts: &QueryOptions, out: &mut impl Write) -> Result<(), CliError> {
    match &opts.source {
        QuerySource::File(path) => query_local(path, opts, out),
        QuerySource::Remote(remote) => query_remote(remote, opts, out),
    }
}

fn query_local(path: &str, opts: &QueryOptions, out: &mut impl Write) -> Result<(), CliError> {
    let (chain, config) = load_with_config(path)?;
    let address = Address::new(opts.address.as_str());

    let prover = Prover::new(&chain, config)?;
    let (response, stats) = match opts.range {
        None => prover.respond(&address)?,
        Some((lo, hi)) => prover.respond_range(&address, lo, hi)?,
    };

    let client = LightClient::new(config, chain.headers());
    let history = match opts.range {
        None => client.verify(&address, &response)?,
        Some((lo, hi)) => client.verify_range(&address, lo, hi, &response)?,
    };

    print_history(out, &address, opts.range, &history)?;
    writeln!(
        out,
        "proof size   : {} ({} endpoint filters, {} blocks resolved)",
        human_bytes(response.total_bytes()),
        stats.bmt.endpoint_count(),
        stats.blocks_resolved
    )?;
    if opts.breakdown {
        let b = response.size_breakdown();
        writeln!(out, "breakdown    :")?;
        writeln!(out, "  bloom filters   {}", human_bytes(b.bloom_filters))?;
        writeln!(out, "  bmt overhead    {}", human_bytes(b.bmt_overhead))?;
        writeln!(out, "  smt proofs      {}", human_bytes(b.smt_proofs))?;
        writeln!(out, "  merkle branches {}", human_bytes(b.merkle_branches))?;
        writeln!(out, "  transactions    {}", human_bytes(b.transactions))?;
        writeln!(out, "  integral blocks {}", human_bytes(b.integral_blocks))?;
        writeln!(out, "  framing         {}", human_bytes(b.framing))?;
    }
    Ok(())
}

/// Composite fault rate `--chaos-seed` injects: noticeable (the retry
/// machinery visibly works) without threatening the retry budget.
const CHAOS_RATE: f64 = 0.05;

/// The resilient remote session: header sync, the query, and the final
/// tip check, each retried under `retrier`'s policy. `Busy` sheds,
/// disconnects, and timeouts are ridden out with backoff; verification
/// failures abort immediately.
fn run_remote_session<T: Transport>(
    transport: &mut T,
    config: SchemeConfig,
    spec: &QuerySpec,
    retrier: &mut Retrier,
) -> Result<(LightNode, QueryRun, u64), CliError> {
    let mut light = retrier.run(|_| LightNode::sync_from(transport, config))?;
    let run = light.run_with_retry(spec, transport, retrier)?;
    // Incremental tip check: fetch (cheaply) any headers the chain grew
    // while we were querying, so the session ends at the peer's tip.
    let new_headers = retrier.run(|_| light.sync_new(transport))?.new_headers();
    Ok((light, run, new_headers))
}

fn query_remote(
    remote: &RemoteEndpoint,
    opts: &QueryOptions,
    out: &mut impl Write,
) -> Result<(), CliError> {
    let bloom = BloomParams::new(remote.bf_bytes, remote.hashes)
        .map_err(|e| CliError::Usage(format!("bad bloom parameters: {e}")))?;
    let config = SchemeConfig::new(remote.scheme, bloom, remote.segment_len)?;
    let address = Address::new(opts.address.as_str());
    let mut spec = QuerySpec::address(address.clone());
    if let Some((lo, hi)) = opts.range {
        spec = spec.range(lo, hi);
    }

    let base = Duration::from_millis(opts.backoff_ms);
    let policy = RetryPolicy::new(opts.retries + 1).backoff(base, Duration::from_secs(2));
    let mut retrier = Retrier::new(policy, opts.chaos_seed.unwrap_or(0xC1A0));
    let tcp_options =
        TcpOptions::new().with_connect_timeout(opts.connect_timeout_ms.map(Duration::from_millis));

    // The transport stack, bottom up: a self-healing TCP connection,
    // optionally (under --chaos-seed) mistreated by a seeded fault
    // injector so the healing is observable — or, under --pipeline, a
    // negotiated protocol-v2 connection (downgrading to blocking v1 if
    // the server predates the Hello handshake).
    let (light, run, new_headers, reconnects, faults, protocol) =
        match (opts.pipeline, opts.chaos_seed) {
            (Some(window), _) => {
                match PipelinedTcpTransport::negotiate(remote.addr.as_str(), tcp_options, window)? {
                    Negotiated::V2(mut transport) => {
                        let granted = transport.granted();
                        let (light, run, new_headers) =
                            run_remote_session(&mut transport, config, &spec, &mut retrier)?;
                        let label = format!("v2 (window {granted})");
                        (light, run, new_headers, 0, None, Some(label))
                    }
                    Negotiated::V1(mut transport) => {
                        let (light, run, new_headers) =
                            run_remote_session(&mut transport, config, &spec, &mut retrier)?;
                        (
                            light,
                            run,
                            new_headers,
                            0,
                            None,
                            Some("v1 (downgraded)".into()),
                        )
                    }
                }
            }
            (None, Some(seed)) => {
                let reconnecting =
                    ReconnectingTcpTransport::connect_with(remote.addr.as_str(), tcp_options)?;
                let mut chaotic =
                    FaultyTransport::new(reconnecting, FaultPlan::composite(CHAOS_RATE), seed);
                let (light, run, new_headers) =
                    run_remote_session(&mut chaotic, config, &spec, &mut retrier)?;
                let injected = chaotic.stats().injected();
                (
                    light,
                    run,
                    new_headers,
                    chaotic.inner().reconnects(),
                    Some(injected),
                    None,
                )
            }
            (None, None) => {
                let mut transport =
                    ReconnectingTcpTransport::connect_with(remote.addr.as_str(), tcp_options)?;
                let (light, run, new_headers) =
                    run_remote_session(&mut transport, config, &spec, &mut retrier)?;
                (light, run, new_headers, transport.reconnects(), None, None)
            }
        };
    let synced = light.client().tip_height() - new_headers;

    writeln!(out, "peer         : {}", remote.addr)?;
    if let Some(protocol) = &protocol {
        writeln!(out, "protocol     : {protocol}")?;
    }
    writeln!(
        out,
        "synced       : {synced} headers ({} scheme)",
        remote.scheme
    )?;
    print_history(out, &address, opts.range, &run.histories[0])?;
    writeln!(
        out,
        "tip check    : {} new headers (tip {})",
        new_headers,
        light.client().tip_height()
    )?;
    writeln!(
        out,
        "traffic      : {} sent, {} received ({} round trips incl. sync)",
        human_bytes(light.cumulative_traffic().request_bytes),
        human_bytes(light.cumulative_traffic().response_bytes),
        light.exchanges()
    )?;
    let stats = retrier.stats();
    writeln!(
        out,
        "resilience   : {} attempts, {} retries, {} reconnects",
        stats.attempts, stats.retries, reconnects
    )?;
    if let Some(injected) = faults {
        writeln!(
            out,
            "chaos        : {injected} faults injected ({}% composite, seed {})",
            CHAOS_RATE * 100.0,
            opts.chaos_seed.unwrap_or_default()
        )?;
    }
    Ok(())
}

/// Loads a chain file, optionally via the trusted (checksum-only,
/// commitments not replayed) fast path.
fn load_chain_file(path: &str, trusted: bool) -> Result<Chain, CliError> {
    Ok(if trusted {
        chain_file::load_from_path_trusted(path)?
    } else {
        chain_file::load_from_path(path)?
    })
}

/// `lvq ingest`: copy a chain file into an on-disk block store.
pub fn ingest(opts: &IngestOptions, out: &mut impl Write) -> Result<(), CliError> {
    let chain = load_chain_file(&opts.file, opts.trusted)?;
    let mut config = StoreConfig::default();
    if let Some(bytes) = opts.segment_bytes {
        config.segment_target_bytes = bytes;
    }
    let store = lvq_store::ingest_chain(&chain, &opts.store, config)?;
    writeln!(
        out,
        "ingested {} blocks from {} into {} ({} segments)",
        store.len(),
        opts.file,
        opts.store,
        store.segment_count()
    )?;
    if opts.index {
        drop(store);
        let (indexed, _) = lvq_store::open_chain_indexed(&opts.store, config)?;
        writeln!(
            out,
            "indexed      : address index built to height {} ({} on disk)",
            indexed.tip_height(),
            human_bytes(indexed.tables().data_bytes())
        )?;
    }
    Ok(())
}

/// `lvq serve`: answer queries over TCP until interrupted (or until
/// `--max-requests` have been handled), from a loaded chain file or
/// straight off an on-disk block store — optionally following a chain
/// file's tip live (`--store DIR --follow FILE`).
pub fn serve(opts: &ServeOptions, out: &mut impl Write) -> Result<(), CliError> {
    match &opts.source {
        ServeSource::File { path, trusted } => {
            serve_chain(load_chain_file(path, *trusted)?, opts, out)
        }
        ServeSource::Store(dir) => {
            let mut config = StoreConfig::default();
            if let Some(bytes) = opts.block_cache {
                config.cache_bytes = bytes;
            }
            if opts.index {
                let (chain, report) = lvq_store::open_chain_indexed(dir, config)?;
                print_recovery(&report, out)?;
                match &opts.follow {
                    Some(follow) => serve_following(chain, follow, opts, out),
                    None => serve_chain(chain, opts, out),
                }
            } else {
                let (chain, report) = lvq_store::open_chain(dir, config)?;
                print_recovery(&report, out)?;
                match &opts.follow {
                    Some(follow) => serve_following(chain, follow, opts, out),
                    None => serve_chain(chain, opts, out),
                }
            }
        }
    }
}

/// One line per non-clean store open, naming every repair performed.
fn print_recovery(
    report: &lvq_store::RecoveryReport,
    out: &mut impl Write,
) -> Result<(), CliError> {
    if report.is_clean() {
        return Ok(());
    }
    let addr_index = match report.addr_index {
        lvq_store::AddrIndexRecovery::NotOpened | lvq_store::AddrIndexRecovery::Intact => {
            String::new()
        }
        lvq_store::AddrIndexRecovery::CaughtUp { from, to } => {
            format!(", address index caught up {from} -> {to}")
        }
        lvq_store::AddrIndexRecovery::Rebuilt { reason } => {
            format!(", address index rebuilt ({reason})")
        }
    };
    writeln!(
        out,
        "recovered    : {} re-indexed records, {} torn tail bytes truncated{}{}{}",
        report.recovered_records,
        report.truncated_tail_bytes,
        if report.rebuilt_index {
            ", index rebuilt"
        } else {
            ""
        },
        if report.repaired_segment_header {
            ", segment header repaired"
        } else {
            ""
        },
        addr_index
    )?;
    Ok(())
}

/// Applies `--filter-cache`/`--smt-cache`/`--index-cache` and resolves
/// the scheme.
fn prepare_chain<S: BlockSource, T: TableSource>(
    chain: &mut Chain<S, T>,
    opts: &ServeOptions,
) -> Result<SchemeConfig, CliError> {
    let config = SchemeConfig::from_chain_params(chain.params())
        .ok_or_else(|| CliError::Usage("chain commitments match no known scheme".into()))?;
    if opts.filter_cache.is_some() || opts.smt_cache.is_some() || opts.index_cache.is_some() {
        let default = CacheConfig::default();
        chain.set_cache_config(
            CacheConfig::new(
                opts.filter_cache.unwrap_or(default.filter_cache_bytes),
                opts.smt_cache.unwrap_or(default.smt_cache_bytes),
            )
            .with_index_node_cache_bytes(
                opts.index_cache.unwrap_or(default.index_node_cache_bytes),
            ),
        );
    }
    Ok(config)
}

fn server_config_from(opts: &ServeOptions) -> ServerConfig {
    let mut server_config = ServerConfig::default()
        .with_workers(opts.workers)
        .with_request_deadline(
            opts.deadline_ms
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis),
        );
    if let Some(queue) = opts.queue {
        server_config = server_config.with_accept_queue(queue);
    }
    if let Some(depth) = opts.max_in_flight {
        server_config = server_config.with_max_in_flight(depth);
    }
    server_config
}

/// Sleeps until `--max-requests` is reached (forever without it).
fn wait_for_max_requests<P: lvq_node::ServeNode>(server: &NodeServer<P>, opts: &ServeOptions) {
    loop {
        std::thread::sleep(Duration::from_millis(10));
        if let Some(max) = opts.max_requests {
            if server.stats().requests >= max {
                return;
            }
        }
    }
}

/// `lvq serve --store DIR --follow FILE`: serve from the store while a
/// [`TipIngester`] appends the follow file's missing blocks into it,
/// growing the served tip live.
fn serve_following<T: TableSource + 'static>(
    mut chain: Chain<lvq_store::DiskBlockSource, T>,
    follow: &str,
    opts: &ServeOptions,
    out: &mut impl Write,
) -> Result<(), CliError> {
    let config = prepare_chain(&mut chain, opts)?;
    // The follow file is a feed, not a trust anchor: checksum-only
    // loading suffices because the ingester re-validates header
    // linkage and the chain recomputes every commitment as it extends.
    let follow_chain = chain_file::load_from_path_trusted(follow)?;
    if follow_chain.params() != chain.params() {
        return Err(CliError::Usage(format!(
            "--follow {follow} carries different scheme parameters than the store"
        )));
    }
    let target = follow_chain.tip_height();
    let mut blocks = Vec::with_capacity(target as usize);
    for h in 1..=target {
        blocks.push((*follow_chain.block(h)?).clone());
    }
    drop(follow_chain);

    let store = Arc::clone(chain.source().store());
    let resume = chain.tip_height();
    let live = Arc::new(LiveNode::new(FullNode::new(chain)?));
    let server_config = server_config_from(opts);
    let server = NodeServer::bind(Arc::clone(&live), opts.addr.as_str(), server_config)?;
    let feed = MemoryFeed::new(blocks);
    feed.publisher().publish_all();
    // Supervised: a panicking ingest attempt is restarted with backoff
    // (each attempt gets a fresh clone of the feed and resumes from the
    // store's persisted height) instead of killing the pipeline.
    let ingest = TipIngester::spawn_supervised(
        Arc::clone(&live),
        store,
        move || feed.clone(),
        IngestConfig::default().with_max_reorg_depth(opts.max_reorg_depth),
        SupervisorConfig::default(),
    );
    server.attach_ingest(ingest.monitor());
    server.watch_health(ingest.health().clone());
    writeln!(
        out,
        "serving {} blocks ({} scheme) with {} workers on {}, following {} to height {}",
        resume,
        config.scheme(),
        server_config.effective_workers(),
        server.local_addr(),
        follow,
        target
    )?;
    out.flush()?;

    wait_for_max_requests(&server, opts);
    let stats = server.shutdown();
    let ingest_restarts = ingest.restarts();
    let ingest_stats = ingest.stop();
    writeln!(
        out,
        "ingested     : {} blocks in {} batches ({} retries, {} restarts), resumed at {}, tip {}",
        ingest_stats.blocks_appended,
        ingest_stats.batches,
        ingest_stats.retries,
        ingest_restarts,
        ingest_stats.resume_height,
        ingest_stats.tip_height
    )?;
    if opts.max_reorg_depth > 0 {
        writeln!(
            out,
            "forks        : {} reorgs (deepest {}), {} fork blocks journaled, {} dropped",
            ingest_stats.reorgs,
            ingest_stats.deepest_reorg,
            ingest_stats.fork_blocks,
            ingest_stats.dropped_blocks
        )?;
    }
    let caches = live.with_node(|node| node.chain().cache_stats());
    print_serve_report(&stats, &caches, out)
}

fn serve_chain<S: BlockSource + 'static, T: TableSource + 'static>(
    mut chain: Chain<S, T>,
    opts: &ServeOptions,
    out: &mut impl Write,
) -> Result<(), CliError> {
    let config = prepare_chain(&mut chain, opts)?;
    let blocks = chain.tip_height();
    let full = Arc::new(FullNode::new(chain)?);
    let server_config = server_config_from(opts);
    let server = NodeServer::bind(Arc::clone(&full), opts.addr.as_str(), server_config)?;
    writeln!(
        out,
        "serving {} blocks ({} scheme) with {} workers on {}",
        blocks,
        config.scheme(),
        server_config.effective_workers(),
        server.local_addr()
    )?;
    out.flush()?;

    wait_for_max_requests(&server, opts);
    let stats = server.shutdown();
    let caches = full.chain().cache_stats();
    print_serve_report(&stats, &caches, out)
}

fn print_serve_report(
    stats: &lvq_node::ServerStats,
    caches: &lvq_chain::ChainCacheStats,
    out: &mut impl Write,
) -> Result<(), CliError> {
    writeln!(
        out,
        "served {} requests over {} connections ({} in, {} out, {} errors)",
        stats.requests,
        stats.connections,
        human_bytes(stats.request_bytes),
        human_bytes(stats.response_bytes),
        stats.errors
    )?;
    writeln!(out, "best tip     : {}", stats.tip_hash)?;
    writeln!(
        out,
        "pool         : {} workers, queue high-water {}, {} shed busy, {} deadline misses",
        stats.workers, stats.queue_highwater, stats.busy, stats.deadline_misses
    )?;
    writeln!(
        out,
        "health       : {} ({} panicked requests contained, {} worker restarts)",
        stats.health, stats.panicked_requests, stats.worker_restarts
    )?;
    writeln!(
        out,
        "kinds        : {} headers, {} incremental, {} queries, {} batches, {} invalid",
        stats.by_kind.get_headers,
        stats.by_kind.get_headers_from,
        stats.by_kind.queries,
        stats.by_kind.batch_queries,
        stats.by_kind.invalid
    )?;
    writeln!(
        out,
        "latency      : p50 {}us p95 {}us p99 {}us max {}us (mean {}us over {})",
        stats.latency.p50_us,
        stats.latency.p95_us,
        stats.latency.p99_us,
        stats.latency.max_us,
        stats.latency.mean_us,
        stats.latency.count
    )?;
    let cache_cell = |s: &CacheStats| {
        format!(
            "{}h/{}m {} held",
            s.hits,
            s.misses,
            human_bytes(s.used_bytes)
        )
    };
    writeln!(
        out,
        "caches       : filters {}, smts {}, blocks {}, index {}",
        cache_cell(&caches.filters),
        cache_cell(&caches.smts),
        cache_cell(&caches.blocks),
        cache_cell(&caches.index_nodes)
    )?;
    Ok(())
}

/// `lvq fsck`: offline integrity check of a block store directory.
///
/// Opens the store (performing and *reporting* the documented open-time
/// repairs), re-verifies every stored block against its checksum,
/// scans the fork sidecar log, and — with `--index` — runs the full
/// node-by-node audit of the persistent address index. Prints a
/// per-file report and exits nonzero if any fault was found, so a
/// second run on the same store exits zero: the repairs stuck.
pub fn fsck(opts: &FsckOptions, out: &mut impl Write) -> Result<(), CliError> {
    let dir = std::path::Path::new(&opts.store);
    let mut faults: Vec<String> = Vec::new();

    // Stale `*.tmp` files are debris from an interrupted tmp+rename
    // write. Opening the store removes them, so note them first.
    let mut tmp_dirs = vec![dir.to_path_buf()];
    if dir.join("addr-index").is_dir() {
        tmp_dirs.push(dir.join("addr-index"));
    }
    for tmp_dir in tmp_dirs {
        let mut entries: Vec<_> = std::fs::read_dir(&tmp_dir)?
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        entries.sort();
        for name in entries {
            faults.push(format!(
                "stale temp file {} (interrupted atomic write; removed at open)",
                tmp_dir.join(name).display()
            ));
        }
    }

    let config = StoreConfig::default();
    let (store, report, index_info) = if opts.index {
        // The full-paranoia open: every index node hash, key order,
        // and balance is checked before the index is trusted.
        let (chain, report) = lvq_store::open_chain_indexed_verified(dir, config)?;
        let info = (chain.tables().tip(), chain.tables().root_hash());
        (Arc::clone(chain.source().store()), report, Some(info))
    } else {
        let (store, report) = lvq_store::BlockStore::open(dir, config)?;
        (Arc::new(store), report, None)
    };

    if report.truncated_tail_bytes > 0 {
        faults.push(format!(
            "torn tail: {} byte(s) truncated from the last segment",
            report.truncated_tail_bytes
        ));
    }
    if report.recovered_records > 0 {
        faults.push(format!(
            "{} record(s) recovered by segment scan",
            report.recovered_records
        ));
    }
    if report.rebuilt_index {
        faults.push("height index (index.idx) rebuilt from the segments".into());
    }
    if report.repaired_segment_header {
        faults.push("segment header repaired".into());
    }
    if report.truncated_fork_log_bytes > 0 {
        faults.push(format!(
            "forks.log: {} torn byte(s) truncated",
            report.truncated_fork_log_bytes
        ));
    }
    match report.addr_index {
        lvq_store::AddrIndexRecovery::NotOpened | lvq_store::AddrIndexRecovery::Intact => {}
        lvq_store::AddrIndexRecovery::CaughtUp { from, to } => {
            faults.push(format!(
                "address index was behind the store: caught up {from} -> {to}"
            ));
        }
        lvq_store::AddrIndexRecovery::Rebuilt { reason } => {
            faults.push(format!("address index rebuilt ({reason})"));
        }
    }

    // Every block re-read and checked against its stored checksum.
    let verified = match store.verify_all() {
        Ok(n) => Some(n),
        Err(e) => {
            faults.push(format!("block verification failed: {e}"));
            None
        }
    };
    let fork_blocks = match store.fork_log() {
        Ok(entries) => Some(entries.len()),
        Err(e) => {
            faults.push(format!("fork log unreadable: {e}"));
            None
        }
    };

    // The per-file report, in name order.
    writeln!(out, "fsck {}", dir.display())?;
    let mut names: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    for name in names {
        let path = dir.join(&name);
        let meta = std::fs::metadata(&path)?;
        let note = if meta.is_dir() {
            match (name.as_str(), &index_info) {
                ("addr-index", Some((tip, root))) => {
                    format!("persistent address index, root {root} anchored at height {tip}")
                }
                ("addr-index", None) => "persistent address index (not audited; --index)".into(),
                _ => "unexpected directory".into(),
            }
        } else {
            match name.as_str() {
                "store.meta" => "store metadata".into(),
                "index.idx" => "height index".into(),
                "forks.log" => match fork_blocks {
                    Some(n) => format!("fork journal, {n} block(s)"),
                    None => "fork journal (unreadable)".into(),
                },
                n if n.starts_with("segment-") && n.ends_with(".blk") => "block segment".into(),
                n if n.ends_with(".tmp") => "stale temp file".into(),
                _ => "unexpected file".into(),
            }
        };
        let size = if meta.is_dir() {
            "dir".to_string()
        } else {
            human_bytes(meta.len())
        };
        writeln!(out, "  {name:<20} {size:>10}  {note}")?;
    }
    match verified {
        Some(n) => writeln!(out, "blocks       : {n} verified against stored checksums")?,
        None => writeln!(out, "blocks       : verification FAILED")?,
    }

    if faults.is_empty() {
        writeln!(out, "clean        : no faults found")?;
        Ok(())
    } else {
        for fault in &faults {
            writeln!(out, "fault        : {fault}")?;
        }
        Err(CliError::Fsck {
            faults: faults.len(),
        })
    }
}

/// `lvq balance`: just the verified balance.
pub fn balance(path: &str, address: &str, out: &mut impl Write) -> Result<(), CliError> {
    let (chain, config) = load_with_config(path)?;
    let address = Address::new(address);
    let prover = Prover::new(&chain, config)?;
    let (response, _) = prover.respond(&address)?;
    let client = LightClient::new(config, chain.headers());
    let history = client.verify(&address, &response)?;
    writeln!(out, "{}", history.balance.net())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_path(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("lvq-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn end_to_end_generate_info_query_balance() {
        let path = temp_path("e2e.lvq");
        let mut out = Vec::new();
        run(
            &strings(&[
                "generate",
                "--out",
                &path,
                "--blocks",
                "16",
                "--txs",
                "4",
                "--segment",
                "8",
                "--bf",
                "256",
                "--probe",
                "1CliProbe:4:3",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("wrote 16 blocks"));
        assert!(text.contains("planted 1CliProbe: 4 txs across 3 blocks"));

        let mut out = Vec::new();
        run(&strings(&["info", &path]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("blocks     : 16"));
        assert!(text.contains("scheme     : LVQ"));

        let mut out = Vec::new();
        run(&strings(&["validate", &path]), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().starts_with("ok: 16 blocks"));

        let mut out = Vec::new();
        run(
            &strings(&["query", &path, "1CliProbe", "--breakdown"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transactions : 4"));
        assert!(text.contains("complete (no omissions possible)"));
        assert!(text.contains("bloom filters"));

        let mut out = Vec::new();
        run(&strings(&["balance", &path, "1CliProbe"]), &mut out).unwrap();
        let balance: i128 = String::from_utf8(out).unwrap().trim().parse().unwrap();
        assert!(balance >= 0);

        // Range query returns the in-range slice.
        let mut out = Vec::new();
        run(
            &strings(&["query", &path, "1CliProbe", "--range", "1:16"]),
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("transactions : 4"));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absent_address_is_complete_and_zero() {
        let path = temp_path("absent.lvq");
        run(
            &strings(&[
                "generate", "--out", &path, "--blocks", "8", "--txs", "3", "--bf", "256",
            ]),
            &mut Vec::new(),
        )
        .unwrap();
        let mut out = Vec::new();
        run(&strings(&["query", &path, "1Nobody"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transactions : 0"));
        assert!(text.contains("balance      : 0"));
        std::fs::remove_file(&path).ok();
    }

    /// A `Write` that can be handed to a server thread and read from
    /// the test thread (to learn the bound port).
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn serve_and_query_over_tcp() {
        let path = temp_path("serve.lvq");
        run(
            &strings(&[
                "generate",
                "--out",
                &path,
                "--blocks",
                "16",
                "--txs",
                "4",
                "--segment",
                "8",
                "--bf",
                "256",
                "--probe",
                "1TcpProbe:4:3",
            ]),
            &mut Vec::new(),
        )
        .unwrap();

        // Each remote query run is one connection doing a header sync,
        // one query, and one incremental tip check: two runs = 6
        // requests.
        let server_out = SharedBuf::default();
        let server_thread = {
            let mut out = server_out.clone();
            let path = path.clone();
            std::thread::spawn(move || {
                run(
                    &strings(&[
                        "serve",
                        &path,
                        "--addr",
                        "127.0.0.1:0",
                        "--max-requests",
                        "6",
                        "--filter-cache",
                        "1048576",
                        "--workers",
                        "2",
                        "--queue",
                        "8",
                        "--deadline-ms",
                        "60000",
                    ]),
                    &mut out,
                )
                .unwrap();
            })
        };

        // The OS picked the port; learn it from the banner line.
        let addr = loop {
            if let Some(line) = server_out.text().lines().find(|l| l.starts_with("serving")) {
                break line.rsplit(' ').next().unwrap().to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let mut out = Vec::new();
        run(
            &strings(&[
                "query",
                "1TcpProbe",
                "--addr",
                &addr,
                "--segment",
                "8",
                "--bf",
                "256",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("synced       : 16 headers"), "{text}");
        assert!(text.contains("transactions : 4"), "{text}");
        assert!(text.contains("complete (no omissions possible)"), "{text}");
        assert!(
            text.contains("tip check    : 0 new headers (tip 16)"),
            "{text}"
        );
        assert!(text.contains("traffic      :"), "{text}");

        let mut out = Vec::new();
        run(
            &strings(&[
                "query",
                "1TcpProbe",
                "--addr",
                &addr,
                "--segment",
                "8",
                "--bf",
                "256",
                "--range",
                "1:8",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("range        : blocks 1..=8"), "{text}");

        server_thread.join().unwrap();
        let text = server_out.text();
        assert!(
            text.contains("served 6 requests over 2 connections"),
            "{text}"
        );
        assert!(text.contains("with 2 workers"), "{text}");
        assert!(
            text.contains("pool         : 2 workers, queue high-water"),
            "{text}"
        );
        assert!(
            text.contains(
                "kinds        : 2 headers, 2 incremental, 2 queries, 0 batches, 0 invalid"
            ),
            "{text}"
        );
        assert!(text.contains("latency      : p50 "), "{text}");
        assert!(text.contains("caches       : filters "), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ingest_then_serve_from_store() {
        let path = temp_path("ingest.lvq");
        let dir = temp_path("ingest-store");
        std::fs::remove_dir_all(&dir).ok();
        run(
            &strings(&[
                "generate",
                "--out",
                &path,
                "--blocks",
                "16",
                "--txs",
                "4",
                "--segment",
                "8",
                "--bf",
                "256",
                "--probe",
                "1StoreProbe:4:3",
            ]),
            &mut Vec::new(),
        )
        .unwrap();

        let mut out = Vec::new();
        run(
            &strings(&[
                "ingest",
                &path,
                "--store",
                &dir,
                "--trust-file",
                "--segment-bytes",
                "4096",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("ingested 16 blocks"), "{text}");

        // Ingesting into the same directory again must refuse.
        assert!(matches!(
            run(
                &strings(&["ingest", &path, "--store", &dir]),
                &mut Vec::new()
            ),
            Err(CliError::Store(_))
        ));

        // One remote query run = header sync + query + tip check.
        let server_out = SharedBuf::default();
        let server_thread = {
            let mut out = server_out.clone();
            let dir = dir.clone();
            std::thread::spawn(move || {
                run(
                    &strings(&[
                        "serve",
                        "--store",
                        &dir,
                        "--addr",
                        "127.0.0.1:0",
                        "--max-requests",
                        "3",
                        "--workers",
                        "2",
                    ]),
                    &mut out,
                )
                .unwrap();
            })
        };
        let addr = loop {
            if let Some(line) = server_out.text().lines().find(|l| l.starts_with("serving")) {
                break line.rsplit(' ').next().unwrap().to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let mut out = Vec::new();
        run(
            &strings(&[
                "query",
                "1StoreProbe",
                "--addr",
                &addr,
                "--segment",
                "8",
                "--bf",
                "256",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("synced       : 16 headers"), "{text}");
        assert!(text.contains("transactions : 4"), "{text}");
        assert!(text.contains("complete (no omissions possible)"), "{text}");

        server_thread.join().unwrap();
        let text = server_out.text();
        assert!(text.contains("served 3 requests"), "{text}");
        assert!(text.contains("caches       : filters "), "{text}");
        // A disk-backed server actually exercises the block cache.
        assert!(!text.contains("blocks 0h/0m"), "{text}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_reports_faults_then_comes_back_clean() {
        let path = temp_path("fsck.lvq");
        let dir = temp_path("fsck-store");
        std::fs::remove_dir_all(&dir).ok();
        run(
            &strings(&[
                "generate",
                "--out",
                &path,
                "--blocks",
                "12",
                "--txs",
                "2",
                "--segment",
                "8",
                "--bf",
                "256",
            ]),
            &mut Vec::new(),
        )
        .unwrap();
        run(
            &strings(&["ingest", &path, "--store", &dir, "--trust-file", "--index"]),
            &mut Vec::new(),
        )
        .unwrap();

        // A healthy store fscks clean, with and without the index audit.
        let mut out = Vec::new();
        run(&strings(&["fsck", "--store", &dir]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("blocks       : 12 verified"), "{text}");
        assert!(text.contains("clean        : no faults found"), "{text}");
        assert!(text.contains("store.meta"), "{text}");

        let mut out = Vec::new();
        run(&strings(&["fsck", "--store", &dir, "--index"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("clean        : no faults found"), "{text}");
        assert!(
            text.contains("persistent address index, root"),
            "the index audit should report the anchored root: {text}"
        );

        // Simulate a crash: a torn record tail on the last segment and
        // a stale temp file from an interrupted atomic write.
        let last_segment = {
            let mut segments: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(Result::ok)
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with("segment-") && n.ends_with(".blk"))
                .collect();
            segments.sort();
            std::path::Path::new(&dir).join(segments.last().unwrap())
        };
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&last_segment)
            .unwrap();
        file.write_all(&[0xFF; 7]).unwrap();
        drop(file);
        std::fs::write(std::path::Path::new(&dir).join("store.meta.tmp"), b"junk").unwrap();

        let mut out = Vec::new();
        let err = run(&strings(&["fsck", "--store", &dir]), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Fsck { faults: 2 }), "{err:?}");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("fault        : stale temp file"), "{text}");
        assert!(
            text.contains("fault        : torn tail: 7 byte(s) truncated"),
            "{text}"
        );
        assert!(text.contains("blocks       : 12 verified"), "{text}");

        // The open-time repairs stuck: the next run exits zero.
        let mut out = Vec::new();
        run(&strings(&["fsck", "--store", &dir]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("clean        : no faults found"), "{text}");

        // Usage errors still behave.
        assert!(matches!(
            run(&strings(&["fsck"]), &mut Vec::new()),
            Err(CliError::Usage(_))
        ));

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_with_index_then_serve_indexed() {
        let path = temp_path("idx.lvq");
        let dir = temp_path("idx-store");
        std::fs::remove_dir_all(&dir).ok();
        run(
            &strings(&[
                "generate",
                "--out",
                &path,
                "--blocks",
                "16",
                "--txs",
                "4",
                "--segment",
                "8",
                "--bf",
                "256",
                "--probe",
                "1IdxProbe:4:3",
            ]),
            &mut Vec::new(),
        )
        .unwrap();

        let mut out = Vec::new();
        run(
            &strings(&["ingest", &path, "--store", &dir, "--trust-file", "--index"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("ingested 16 blocks"), "{text}");
        assert!(
            text.contains("indexed      : address index built to height 16"),
            "{text}"
        );

        let server_out = SharedBuf::default();
        let server_thread = {
            let mut out = server_out.clone();
            let dir = dir.clone();
            std::thread::spawn(move || {
                run(
                    &strings(&[
                        "serve",
                        "--store",
                        &dir,
                        "--index",
                        "--index-cache",
                        "1048576",
                        "--addr",
                        "127.0.0.1:0",
                        "--max-requests",
                        "3",
                        "--workers",
                        "2",
                    ]),
                    &mut out,
                )
                .unwrap();
            })
        };
        let addr = loop {
            if let Some(line) = server_out.text().lines().find(|l| l.starts_with("serving")) {
                break line.rsplit(' ').next().unwrap().to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let mut out = Vec::new();
        run(
            &strings(&[
                "query",
                "1IdxProbe",
                "--addr",
                &addr,
                "--segment",
                "8",
                "--bf",
                "256",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("synced       : 16 headers"), "{text}");
        assert!(text.contains("transactions : 4"), "{text}");
        assert!(text.contains("complete (no omissions possible)"), "{text}");

        server_thread.join().unwrap();
        let text = server_out.text();
        // The index was built by ingest, so the serve reopen is clean —
        // no recovery line — and index reads flow through the node cache.
        assert!(!text.contains("recovered    :"), "{text}");
        assert!(text.contains("served 3 requests"), "{text}");
        assert!(text.contains(", index "), "{text}");
        assert!(!text.contains("index 0h/0m"), "{text}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_store_following_a_chain_file_grows_the_tip() {
        let path = temp_path("follow.lvq");
        let dir = temp_path("follow-store");
        std::fs::remove_dir_all(&dir).ok();
        run(
            &strings(&[
                "generate",
                "--out",
                &path,
                "--blocks",
                "16",
                "--txs",
                "4",
                "--segment",
                "8",
                "--bf",
                "256",
                "--probe",
                "1FollowProbe:4:3",
            ]),
            &mut Vec::new(),
        )
        .unwrap();

        // Persist only the first 6 blocks: the store lags the file by
        // 10, which the follow ingester must close while serving.
        let truth = chain_file::load_from_path_trusted(&path).unwrap();
        {
            let store = lvq_store::BlockStore::create(&dir, truth.params(), StoreConfig::default())
                .unwrap();
            for h in 1..=6 {
                store.append(&truth.block(h).unwrap()).unwrap();
            }
        }

        let server_out = SharedBuf::default();
        let server_thread = {
            let mut out = server_out.clone();
            let dir = dir.clone();
            let path = path.clone();
            std::thread::spawn(move || {
                run(
                    &strings(&[
                        "serve",
                        "--store",
                        &dir,
                        "--follow",
                        &path,
                        "--addr",
                        "127.0.0.1:0",
                        "--max-requests",
                        "3",
                        "--workers",
                        "2",
                    ]),
                    &mut out,
                )
                .unwrap();
            })
        };
        let banner = loop {
            if let Some(line) = server_out.text().lines().find(|l| l.starts_with("serving")) {
                break line.to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        assert!(banner.contains("serving 6 blocks"), "{banner}");
        assert!(banner.contains("to height 16"), "{banner}");
        let addr = banner
            .split(" on ")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .to_string();

        // Give the ingester a moment to close the 10-block gap, then
        // query: the client must see the grown tip, not the frozen one.
        std::thread::sleep(std::time::Duration::from_millis(500));
        let mut out = Vec::new();
        run(
            &strings(&[
                "query",
                "1FollowProbe",
                "--addr",
                &addr,
                "--segment",
                "8",
                "--bf",
                "256",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("synced       : 16 headers"), "{text}");
        assert!(text.contains("transactions : 4"), "{text}");

        server_thread.join().unwrap();
        let text = server_out.text();
        assert!(text.contains("ingested     : 10 blocks in"), "{text}");
        assert!(text.contains("resumed at 6, tip 16"), "{text}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_trusted_file_answers_queries() {
        let path = temp_path("trusted.lvq");
        run(
            &strings(&[
                "generate",
                "--out",
                &path,
                "--blocks",
                "8",
                "--txs",
                "3",
                "--segment",
                "8",
                "--bf",
                "256",
                "--probe",
                "1TrustProbe:3:2",
            ]),
            &mut Vec::new(),
        )
        .unwrap();

        let server_out = SharedBuf::default();
        let server_thread = {
            let mut out = server_out.clone();
            let path = path.clone();
            std::thread::spawn(move || {
                run(
                    &strings(&[
                        "serve",
                        &path,
                        "--trust-file",
                        "--addr",
                        "127.0.0.1:0",
                        "--max-requests",
                        "3",
                    ]),
                    &mut out,
                )
                .unwrap();
            })
        };
        let addr = loop {
            if let Some(line) = server_out.text().lines().find(|l| l.starts_with("serving")) {
                break line.rsplit(' ').next().unwrap().to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let mut out = Vec::new();
        run(
            &strings(&[
                "query",
                "1TrustProbe",
                "--addr",
                &addr,
                "--segment",
                "8",
                "--bf",
                "256",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transactions : 3"), "{text}");
        assert!(text.contains("complete (no omissions possible)"), "{text}");

        server_thread.join().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn usage_errors() {
        let mut out = Vec::new();
        assert!(matches!(
            run(&strings(&[]), &mut out),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&strings(&["frobnicate"]), &mut out),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&strings(&["info"]), &mut out),
            Err(CliError::Usage(_))
        ));
        // Missing file is an I/O error, not a panic.
        assert!(matches!(
            run(&strings(&["info", "/nonexistent/nope.lvq"]), &mut out),
            Err(CliError::File(_))
        ));
    }

    #[test]
    fn help_prints_usage() {
        let mut out = Vec::new();
        run(&strings(&["help"]), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("lvq generate"));
    }
}
