//! The command implementations.

use std::io::Write;

use lvq_bloom::BloomParams;
use lvq_chain::{file as chain_file, Address, Chain};
use lvq_core::{Completeness, LightClient, Prover, SchemeConfig};
use lvq_workload::{TrafficModel, WorkloadBuilder};

use crate::args::{GenerateOptions, QueryOptions};
use crate::error::CliError;

fn human_bytes(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.2} MB", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2} KB", n as f64 / 1e3)
    } else {
        format!("{n} B")
    }
}

/// `lvq generate`: build a workload chain and persist it.
pub fn generate(opts: &GenerateOptions, out: &mut impl Write) -> Result<(), CliError> {
    let bloom = BloomParams::new(opts.bf_bytes, opts.hashes)
        .map_err(|e| CliError::Usage(format!("bad bloom parameters: {e}")))?;
    let config = SchemeConfig::new(opts.scheme, bloom, opts.effective_segment_len())?;
    let workload = WorkloadBuilder::new(config.chain_params())
        .blocks(opts.blocks)
        .traffic(TrafficModel::tiny().with_txs_per_block(opts.txs_per_block))
        .seed(opts.seed)
        .probes(opts.probes.iter().cloned())
        .build()?;
    chain_file::save_to_path(&workload.chain, &opts.out)?;
    writeln!(
        out,
        "wrote {} blocks ({} scheme, {} filters, M = {}) to {}",
        opts.blocks,
        opts.scheme,
        human_bytes(u64::from(opts.bf_bytes)),
        opts.effective_segment_len(),
        opts.out
    )?;
    for probe in &workload.probes {
        writeln!(
            out,
            "planted {}: {} txs across {} blocks",
            probe.address,
            probe.tx_count,
            probe.block_heights.len()
        )?;
    }
    Ok(())
}

fn load_with_config(path: &str) -> Result<(Chain, SchemeConfig), CliError> {
    let chain = chain_file::load_from_path(path)?;
    let config = SchemeConfig::from_chain_params(chain.params())
        .ok_or_else(|| CliError::Usage("chain file commitments match no known scheme".into()))?;
    Ok((chain, config))
}

/// `lvq info`: print a chain summary.
pub fn info(path: &str, out: &mut impl Write) -> Result<(), CliError> {
    let (chain, config) = load_with_config(path)?;
    let body_bytes: u64 = (1..=chain.tip_height())
        .map(|h| chain.block(h).expect("in range").integral_size() as u64)
        .sum();
    let header_bytes: u64 = chain.headers().iter().map(|h| h.storage_len() as u64).sum();
    writeln!(out, "chain      : {path}")?;
    writeln!(out, "scheme     : {}", config.scheme())?;
    writeln!(
        out,
        "bloom      : {} bytes, k = {}",
        config.bloom().size_bytes(),
        config.bloom().hashes()
    )?;
    writeln!(out, "segment M  : {}", config.segment_len())?;
    writeln!(out, "blocks     : {}", chain.tip_height())?;
    writeln!(
        out,
        "full node  : {} (bodies) — what a full node stores",
        human_bytes(body_bytes)
    )?;
    writeln!(
        out,
        "light node : {} (headers only)",
        human_bytes(header_bytes)
    )?;
    if chain.tip_height() > 0 {
        writeln!(
            out,
            "tip hash   : {}",
            chain
                .header(chain.tip_height())
                .expect("tip exists")
                .block_hash()
        )?;
    }
    Ok(())
}

/// `lvq validate`: full integrity check.
pub fn validate(path: &str, out: &mut impl Write) -> Result<(), CliError> {
    let (chain, _) = load_with_config(path)?;
    chain.validate()?;
    writeln!(
        out,
        "ok: {} blocks, every commitment recomputed and matched",
        chain.tip_height()
    )?;
    Ok(())
}

/// `lvq query`: verifiable history query against the persisted chain.
pub fn query(opts: &QueryOptions, out: &mut impl Write) -> Result<(), CliError> {
    let (chain, config) = load_with_config(&opts.file)?;
    let address = Address::new(opts.address.as_str());

    let prover = Prover::new(&chain, config)?;
    let (response, stats) = match opts.range {
        None => prover.respond(&address)?,
        Some((lo, hi)) => prover.respond_range(&address, lo, hi)?,
    };

    let client = LightClient::new(config, chain.headers());
    let history = match opts.range {
        None => client.verify(&address, &response)?,
        Some((lo, hi)) => client.verify_range(&address, lo, hi, &response)?,
    };

    let completeness = match history.completeness {
        Completeness::Complete => "complete (no omissions possible)",
        Completeness::CorrectnessOnly => "correctness only (strawman cannot prove completeness)",
    };
    writeln!(out, "address      : {address}")?;
    if let Some((lo, hi)) = opts.range {
        writeln!(out, "range        : blocks {lo}..={hi}")?;
    }
    writeln!(out, "transactions : {}", history.transactions.len())?;
    for (height, tx) in &history.transactions {
        writeln!(out, "  block {height:>6}  txid {}", tx.txid())?;
    }
    writeln!(
        out,
        "balance      : {} satoshi (received {}, spent {})",
        history.balance.net(),
        history.balance.received,
        history.balance.spent
    )?;
    writeln!(out, "verification : {completeness}")?;
    writeln!(
        out,
        "proof size   : {} ({} endpoint filters, {} blocks resolved)",
        human_bytes(response.total_bytes()),
        stats.bmt.endpoint_count(),
        stats.blocks_resolved
    )?;
    if opts.breakdown {
        let b = response.size_breakdown();
        writeln!(out, "breakdown    :")?;
        writeln!(out, "  bloom filters   {}", human_bytes(b.bloom_filters))?;
        writeln!(out, "  bmt overhead    {}", human_bytes(b.bmt_overhead))?;
        writeln!(out, "  smt proofs      {}", human_bytes(b.smt_proofs))?;
        writeln!(out, "  merkle branches {}", human_bytes(b.merkle_branches))?;
        writeln!(out, "  transactions    {}", human_bytes(b.transactions))?;
        writeln!(out, "  integral blocks {}", human_bytes(b.integral_blocks))?;
        writeln!(out, "  framing         {}", human_bytes(b.framing))?;
    }
    Ok(())
}

/// `lvq balance`: just the verified balance.
pub fn balance(path: &str, address: &str, out: &mut impl Write) -> Result<(), CliError> {
    let (chain, config) = load_with_config(path)?;
    let address = Address::new(address);
    let prover = Prover::new(&chain, config)?;
    let (response, _) = prover.respond(&address)?;
    let client = LightClient::new(config, chain.headers());
    let history = client.verify(&address, &response)?;
    writeln!(out, "{}", history.balance.net())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_path(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("lvq-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn end_to_end_generate_info_query_balance() {
        let path = temp_path("e2e.lvq");
        let mut out = Vec::new();
        run(
            &strings(&[
                "generate",
                "--out",
                &path,
                "--blocks",
                "16",
                "--txs",
                "4",
                "--segment",
                "8",
                "--bf",
                "256",
                "--probe",
                "1CliProbe:4:3",
            ]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("wrote 16 blocks"));
        assert!(text.contains("planted 1CliProbe: 4 txs across 3 blocks"));

        let mut out = Vec::new();
        run(&strings(&["info", &path]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("blocks     : 16"));
        assert!(text.contains("scheme     : LVQ"));

        let mut out = Vec::new();
        run(&strings(&["validate", &path]), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().starts_with("ok: 16 blocks"));

        let mut out = Vec::new();
        run(
            &strings(&["query", &path, "1CliProbe", "--breakdown"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transactions : 4"));
        assert!(text.contains("complete (no omissions possible)"));
        assert!(text.contains("bloom filters"));

        let mut out = Vec::new();
        run(&strings(&["balance", &path, "1CliProbe"]), &mut out).unwrap();
        let balance: i128 = String::from_utf8(out).unwrap().trim().parse().unwrap();
        assert!(balance >= 0);

        // Range query returns the in-range slice.
        let mut out = Vec::new();
        run(
            &strings(&["query", &path, "1CliProbe", "--range", "1:16"]),
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("transactions : 4"));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absent_address_is_complete_and_zero() {
        let path = temp_path("absent.lvq");
        run(
            &strings(&[
                "generate", "--out", &path, "--blocks", "8", "--txs", "3", "--bf", "256",
            ]),
            &mut Vec::new(),
        )
        .unwrap();
        let mut out = Vec::new();
        run(&strings(&["query", &path, "1Nobody"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transactions : 0"));
        assert!(text.contains("balance      : 0"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn usage_errors() {
        let mut out = Vec::new();
        assert!(matches!(
            run(&strings(&[]), &mut out),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&strings(&["frobnicate"]), &mut out),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&strings(&["info"]), &mut out),
            Err(CliError::Usage(_))
        ));
        // Missing file is an I/O error, not a panic.
        assert!(matches!(
            run(&strings(&["info", "/nonexistent/nope.lvq"]), &mut out),
            Err(CliError::File(_))
        ));
    }

    #[test]
    fn help_prints_usage() {
        let mut out = Vec::new();
        run(&strings(&["help"]), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("lvq generate"));
    }
}
