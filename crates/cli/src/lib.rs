//! Implementation of the `lvq` command-line tool.
//!
//! Split from the binary so the command logic is unit-testable: every
//! command takes parsed arguments and writes to any `io::Write`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod error;

pub use args::{
    parse_probe_spec, FsckOptions, GenerateOptions, IngestOptions, QueryOptions, QuerySource,
    RemoteEndpoint, ServeOptions, ServeSource,
};
pub use error::CliError;

use std::io::Write;

/// The tool's usage text.
pub const USAGE: &str = "\
usage:
  lvq generate --out FILE [--blocks N] [--scheme lvq|no-bmt|no-smt|strawman]
               [--bf BYTES] [--k N] [--segment M] [--seed S] [--txs N]
               [--probe ADDR:TXS:BLOCKS]...
  lvq info FILE
  lvq validate FILE
  lvq query FILE ADDRESS [--range LO:HI] [--breakdown]
  lvq query ADDRESS --addr HOST:PORT --segment M [--scheme NAME] [--bf BYTES]
            [--k N] [--range LO:HI]
  lvq serve (FILE [--trust-file] | --store DIR [--block-cache BYTES]
            [--index [--index-cache BYTES]] [--follow FILE [--max-reorg-depth N]])
            [--addr HOST:PORT] [--max-requests N] [--workers N]
            [--queue N] [--deadline-ms MS]
            [--filter-cache BYTES] [--smt-cache BYTES]
  lvq ingest FILE --store DIR [--trust-file] [--segment-bytes N] [--index]
  lvq fsck --store DIR [--index]
  lvq balance FILE ADDRESS";

/// Dispatches a full command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed invocations and other
/// [`CliError`] variants for runtime failures.
pub fn run(args: &[String], out: &mut impl Write) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    match command.as_str() {
        "generate" => commands::generate(&args::GenerateOptions::parse(rest)?, out),
        "info" => match rest {
            [file] => commands::info(file, out),
            _ => Err(CliError::Usage("info takes exactly one file".into())),
        },
        "validate" => match rest {
            [file] => commands::validate(file, out),
            _ => Err(CliError::Usage("validate takes exactly one file".into())),
        },
        "query" => commands::query(&args::QueryOptions::parse(rest)?, out),
        "serve" => commands::serve(&args::ServeOptions::parse(rest)?, out),
        "ingest" => commands::ingest(&args::IngestOptions::parse(rest)?, out),
        "fsck" => commands::fsck(&args::FsckOptions::parse(rest)?, out),
        "balance" => match rest {
            [file, address] => commands::balance(file, address, out),
            _ => Err(CliError::Usage(
                "balance takes a file and an address".into(),
            )),
        },
        "--help" | "-h" | "help" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}
