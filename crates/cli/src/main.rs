//! `lvq` — command-line front end for the LVQ reproduction.
//!
//! ```text
//! lvq generate --out chain.lvq [--blocks N] [--scheme lvq|no-bmt|no-smt|strawman]
//!              [--bf BYTES] [--k N] [--segment M] [--seed S] [--txs N]
//!              [--probe ADDR:TXS:BLOCKS]...
//! lvq info <chain.lvq>
//! lvq validate <chain.lvq>
//! lvq query <chain.lvq> <address> [--range LO:HI] [--breakdown]
//! lvq balance <chain.lvq> <address>
//! ```
//!
//! `query` runs the full protocol in-process: the prover builds the
//! scheme's response, a header-only light client verifies it, and the
//! tool reports the history plus the exact wire cost.

use std::process::ExitCode;

use lvq_cli::{run, CliError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            eprintln!("{}", lvq_cli::USAGE);
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
