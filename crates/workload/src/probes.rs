//! The paper's Table III probe addresses.

use lvq_chain::Address;

/// A probe address with its planted footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSpec {
    /// The address (Table III uses real mainnet address strings).
    pub address: Address,
    /// Number of transactions involving the address (`#Tx`).
    pub tx_count: u64,
    /// Number of distinct blocks containing them (`#Block`).
    pub block_count: u64,
}

impl ProbeSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `tx_count < block_count` (each counted block must hold
    /// at least one transaction) or if exactly one of the counts is
    /// zero.
    pub fn new(address: impl Into<Address>, tx_count: u64, block_count: u64) -> Self {
        assert!(
            tx_count >= block_count,
            "each block needs at least one transaction"
        );
        assert!(
            (tx_count == 0) == (block_count == 0),
            "zero transactions iff zero blocks"
        );
        ProbeSpec {
            address: address.into(),
            tx_count,
            block_count,
        }
    }
}

/// Paper Table III: the six probe addresses with their exact `(#Tx,
/// #Block)` footprints. `Addr1` never appears; `Addr6` is in 929
/// transactions across 410 blocks.
///
/// # Examples
///
/// ```
/// let table = lvq_workload::probes::table3();
/// assert_eq!(table.len(), 6);
/// assert_eq!(table[0].tx_count, 0);
/// assert_eq!(table[5].tx_count, 929);
/// assert_eq!(table[5].block_count, 410);
/// ```
pub fn table3() -> Vec<ProbeSpec> {
    vec![
        ProbeSpec::new("1GuLyHTpL6U121Ewe5h31jP4HPC8s4mLTs", 0, 0),
        ProbeSpec::new("1GuLyHTpL6U121Ewe5h31jP4HPC8s4mLTj", 1, 1),
        ProbeSpec::new("1JtcMyyQWeTkrkuG22tfHhwXKKgoP9SaDv", 10, 5),
        ProbeSpec::new("1FFraSfgk5sw1jMs9FJR9mYAHZ6oMw26E5", 60, 44),
        ProbeSpec::new("1N6TUnk9YXD9wbkL37RwKk2wXKsaR776oh", 324, 289),
        ProbeSpec::new("1YzZXshuMVZ4Qh6WHvmqxos3vk4jQimdV", 929, 410),
    ]
}

/// Table III scaled down to a chain of `blocks` blocks, preserving the
/// tx-to-block ratios as far as possible. Used by tests and fast
/// experiment variants that cannot afford 4,096 blocks.
pub fn table3_scaled(blocks: u64) -> Vec<ProbeSpec> {
    table3()
        .into_iter()
        .map(|spec| {
            let block_count = spec
                .block_count
                .min(blocks.saturating_mul(spec.block_count) / 4096);
            let block_count = if spec.block_count > 0 {
                block_count.max(1).min(blocks)
            } else {
                0
            };
            let tx_count = if block_count == 0 {
                0
            } else {
                (spec.tx_count * block_count / spec.block_count).max(block_count)
            };
            ProbeSpec {
                address: spec.address,
                tx_count,
                block_count,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let t = table3();
        let expected = [
            (0u64, 0u64),
            (1, 1),
            (10, 5),
            (60, 44),
            (324, 289),
            (929, 410),
        ];
        for (spec, (txs, blocks)) in t.iter().zip(expected) {
            assert_eq!(spec.tx_count, txs);
            assert_eq!(spec.block_count, blocks);
        }
        // The paper's address strings are preserved verbatim.
        assert_eq!(t[0].address.as_str(), "1GuLyHTpL6U121Ewe5h31jP4HPC8s4mLTs");
    }

    #[test]
    fn scaled_specs_are_feasible() {
        for blocks in [16u64, 64, 256, 4096] {
            for spec in table3_scaled(blocks) {
                assert!(spec.block_count <= blocks);
                assert!(spec.tx_count >= spec.block_count);
                assert_eq!(spec.tx_count == 0, spec.block_count == 0);
            }
        }
        // Full scale reproduces the original table.
        assert_eq!(table3_scaled(4096), table3());
    }

    #[test]
    #[should_panic(expected = "at least one transaction")]
    fn infeasible_spec_panics() {
        ProbeSpec::new("1X", 1, 2);
    }
}
