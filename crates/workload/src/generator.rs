//! The deterministic chain generator.
//!
//! Generated ledgers are **UTXO-consistent**: every non-coinbase input
//! spends an output that a previous transaction (possibly earlier in
//! the same block, as Bitcoin allows) actually created, with matching
//! address and value, and no transaction inflates value. The chain's
//! own [`lvq_chain::UtxoSet`] replay validates every workload this
//! module produces — see the tests.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

use lvq_chain::{
    Address, Block, Chain, ChainBuilder, ChainError, ChainParams, Transaction, TxInput, TxOutPoint,
    TxOutput,
};

use crate::probes::ProbeSpec;
use crate::traffic::TrafficModel;

const BASE58_ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// Outputs per coinbase: early Bitcoin-era pools paid out with wide
/// coinbases; here the fan-out also bootstraps on-chain liquidity.
const COINBASE_FAN_OUT: u64 = 8;
/// Block subsidy in satoshi (25 BTC, the late-2012 halving era).
const BLOCK_SUBSIDY: u64 = 25_0000_0000;

/// Errors from workload generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A probe needs more distinct blocks than the chain has.
    TooFewBlocks {
        /// Blocks the probe requires.
        needed: u64,
        /// Blocks the chain will have.
        available: u64,
    },
    /// Chain construction failed.
    Chain(ChainError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::TooFewBlocks { needed, available } => write!(
                f,
                "probe needs {needed} blocks but the chain only has {available}"
            ),
            WorkloadError::Chain(e) => write!(f, "chain build failed: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChainError> for WorkloadError {
    fn from(e: ChainError) -> Self {
        WorkloadError::Chain(e)
    }
}

/// Where a probe actually landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedProbe {
    /// The probe address.
    pub address: Address,
    /// Total planted transactions.
    pub tx_count: u64,
    /// Heights of the blocks containing them, ascending.
    pub block_heights: Vec<u64>,
}

/// A generated chain with its planted probes.
#[derive(Debug)]
pub struct Workload {
    /// The chain, fully committed for its configured scheme.
    pub chain: Chain,
    /// One entry per requested probe, in request order.
    pub probes: Vec<PlantedProbe>,
}

/// A competing branch requested from [`WorkloadBuilder::build_forked`].
///
/// The branch forks `depth` blocks below the canonical tip (its first
/// block chains onto canonical height `blocks − depth`) and carries
/// `length` blocks of its own. Branch content is UTXO-consistent with
/// the shared prefix, and every branch block plants one transaction on
/// the `marker` address so reorg winners are observable in histories.
#[derive(Debug, Clone)]
pub struct BranchSpec {
    /// Blocks below the canonical tip where the branch forks off.
    pub depth: u64,
    /// Blocks on the branch above the fork point.
    pub length: u64,
    /// Address planted once per branch block.
    pub marker: Address,
    /// Extra seed material; distinct seeds ⇒ distinct branches even
    /// off the same fork height.
    pub seed: u64,
}

impl BranchSpec {
    /// A branch `depth` below the tip, `length` blocks long, marked
    /// with `marker`.
    pub fn new(depth: u64, length: u64, marker: impl Into<Address>) -> Self {
        BranchSpec {
            depth,
            length,
            marker: marker.into(),
            seed: 0xF0_85EED,
        }
    }

    /// Overrides the branch seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One generated branch: committed blocks chaining onto the canonical
/// chain at `fork_height`.
#[derive(Debug)]
pub struct ForkBranch {
    /// Canonical height the branch's first block builds on.
    pub fork_height: u64,
    /// The branch blocks, heights `fork_height + 1 ..`, fully
    /// committed for the chain's scheme.
    pub blocks: Vec<Block>,
    /// Where the branch's marker transactions landed (one per block).
    pub marker: PlantedProbe,
}

/// A canonical workload plus competing branches for reorg experiments.
///
/// Each branch shares the canonical chain byte for byte up to its fork
/// height and then diverges; feeding `workload` first and then a
/// branch's blocks to a fork-aware node produces a reorg of exactly
/// `depth` blocks (plus however far canonical had grown past the fork).
#[derive(Debug)]
pub struct ForkedWorkload {
    /// The canonical chain and its probes.
    pub workload: Workload,
    /// One entry per requested [`BranchSpec`], in request order.
    pub branches: Vec<ForkBranch>,
}

/// Builder for [`Workload`]s.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    params: ChainParams,
    blocks: u64,
    traffic: TrafficModel,
    seed: u64,
    probes: Vec<ProbeSpec>,
}

impl WorkloadBuilder {
    /// Starts a builder for a chain committed with `params`.
    pub fn new(params: ChainParams) -> Self {
        WorkloadBuilder {
            params,
            blocks: 4096,
            traffic: TrafficModel::default(),
            seed: 0x1_5EED,
            probes: Vec::new(),
        }
    }

    /// Sets the chain length (default 4,096, the paper's range).
    pub fn blocks(mut self, blocks: u64) -> Self {
        self.blocks = blocks;
        self
    }

    /// Sets the background-traffic model.
    pub fn traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// Sets the RNG seed (same seed ⇒ bit-identical chain).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds one probe.
    ///
    /// # Panics
    ///
    /// Panics on infeasible counts (see [`ProbeSpec::new`]).
    pub fn probe(mut self, address: impl Into<Address>, tx_count: u64, block_count: u64) -> Self {
        self.probes
            .push(ProbeSpec::new(address, tx_count, block_count));
        self
    }

    /// Adds many probes (e.g. [`crate::probes::table3`]).
    pub fn probes(mut self, specs: impl IntoIterator<Item = ProbeSpec>) -> Self {
        self.probes.extend(specs);
        self
    }

    /// Generates the workload.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::TooFewBlocks`] if a probe needs more
    /// blocks than the chain has, or a wrapped [`ChainError`].
    pub fn build(self) -> Result<Workload, WorkloadError> {
        Ok(self.build_forked(&[])?.workload)
    }

    /// Generates the workload plus competing branches for reorg
    /// experiments (see [`ForkedWorkload`]).
    ///
    /// Each branch is built from a snapshot of the generator's state at
    /// its fork height, so branch transactions spend only outputs that
    /// exist on the shared prefix — the reorged chain stays
    /// UTXO-consistent. A branch's own RNG stream is derived from the
    /// builder seed and [`BranchSpec::seed`], so its blocks differ from
    /// the canonical ones above the fork while remaining deterministic.
    ///
    /// # Errors
    ///
    /// As [`WorkloadBuilder::build`], plus
    /// [`WorkloadError::TooFewBlocks`] when a branch's `depth` exceeds
    /// the chain length.
    pub fn build_forked(self, branches: &[BranchSpec]) -> Result<ForkedWorkload, WorkloadError> {
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Plan probe placements: distinct blocks, ≥1 transaction each,
        // extras spread uniformly.
        let mut per_block: HashMap<u64, Vec<(usize, u64)>> = HashMap::new();
        let mut planted: Vec<PlantedProbe> = Vec::with_capacity(self.probes.len());
        for (probe_idx, spec) in self.probes.iter().enumerate() {
            if spec.block_count > self.blocks {
                return Err(WorkloadError::TooFewBlocks {
                    needed: spec.block_count,
                    available: self.blocks,
                });
            }
            let mut heights: Vec<u64> = if spec.block_count == 0 {
                Vec::new()
            } else {
                sample(&mut rng, self.blocks as usize, spec.block_count as usize)
                    .into_iter()
                    .map(|i| i as u64 + 1)
                    .collect()
            };
            heights.sort_unstable();
            let mut counts = vec![1u64; heights.len()];
            for _ in 0..spec.tx_count.saturating_sub(spec.block_count) {
                let slot = rng.gen_range(0..counts.len());
                counts[slot] += 1;
            }
            for (height, count) in heights.iter().zip(&counts) {
                per_block
                    .entry(*height)
                    .or_default()
                    .push((probe_idx, *count));
            }
            planted.push(PlantedProbe {
                address: spec.address.clone(),
                tx_count: spec.tx_count,
                block_heights: heights,
            });
        }

        let mut pool = AddressPool::new(self.traffic);
        let mut liquidity = Liquidity::default();
        let mut probe_utxos: Vec<Vec<Utxo>> = vec![Vec::new(); self.probes.len()];
        let mut builder = ChainBuilder::new(self.params)?;

        // Branch builders replay the canonical prefix below their fork
        // heights (identical transactions ⇒ byte-identical blocks),
        // then continue from a snapshot of the generator state there.
        let mut grafts: Vec<BranchGraft> = Vec::with_capacity(branches.len());
        for spec in branches {
            if spec.depth > self.blocks {
                return Err(WorkloadError::TooFewBlocks {
                    needed: spec.depth,
                    available: self.blocks,
                });
            }
            let fork_height = self.blocks - spec.depth;
            let mut graft = BranchGraft {
                spec: spec.clone(),
                fork_height,
                builder: ChainBuilder::new(self.params)?,
                snapshot: None,
            };
            if fork_height == 0 {
                graft.snapshot = Some((pool.clone(), liquidity.clone()));
            }
            grafts.push(graft);
        }

        for height in 1..=self.blocks {
            let mut txs = Vec::new();

            // Coinbase with a liquidity-bootstrapping fan-out.
            let coinbase = make_coinbase(&mut rng, &mut pool, height);
            liquidity.add_outputs(&coinbase);
            txs.push(coinbase);

            // Planted probe transactions first, so probes always find
            // liquidity even in early blocks.
            if let Some(plants) = per_block.get(&height) {
                for &(probe_idx, count) in plants {
                    for _ in 0..count {
                        let tx = probe_tx(
                            &mut rng,
                            &mut pool,
                            &mut liquidity,
                            &self.probes[probe_idx].address,
                            &mut probe_utxos[probe_idx],
                        );
                        txs.push(tx);
                    }
                }
            }

            // Background traffic, bounded by available liquidity.
            let mean = self.traffic.txs_per_block.max(1);
            let wanted = rng.gen_range(mean / 2..=mean + mean / 2);
            for _ in 0..wanted {
                match background_tx(&mut rng, &mut pool, &mut liquidity, self.traffic) {
                    Some(tx) => txs.push(tx),
                    None => break, // young chain: liquidity exhausted
                }
            }

            for graft in grafts.iter_mut() {
                if height <= graft.fork_height {
                    graft.builder.push_block(txs.clone())?;
                }
                if height == graft.fork_height {
                    graft.snapshot = Some((pool.clone(), liquidity.clone()));
                }
            }
            builder.push_block(txs)?;
        }

        let mut forks = Vec::with_capacity(grafts.len());
        for (index, graft) in grafts.into_iter().enumerate() {
            forks.push(grow_branch(graft, self.seed, index, self.traffic)?);
        }

        Ok(ForkedWorkload {
            workload: Workload {
                chain: builder.finish(),
                probes: planted,
            },
            branches: forks,
        })
    }
}

/// A branch under construction during the canonical pass.
struct BranchGraft {
    spec: BranchSpec,
    fork_height: u64,
    builder: ChainBuilder,
    /// Generator state as of the fork height, captured mid-pass.
    snapshot: Option<(AddressPool, Liquidity)>,
}

/// Extends a branch builder past its fork height: one coinbase and one
/// marker plant per block, plus background traffic, all drawn from a
/// branch-specific RNG stream so the blocks diverge from canonical.
fn grow_branch(
    graft: BranchGraft,
    base_seed: u64,
    index: usize,
    traffic: TrafficModel,
) -> Result<ForkBranch, WorkloadError> {
    let BranchGraft {
        spec,
        fork_height,
        mut builder,
        snapshot,
    } = graft;
    let (mut pool, mut liquidity) = snapshot.expect("canonical pass reached every fork height");
    let stream = base_seed ^ spec.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1);
    let mut rng = StdRng::seed_from_u64(stream);
    let mut marker_utxos: Vec<Utxo> = Vec::new();
    let mut heights = Vec::with_capacity(spec.length as usize);

    for offset in 0..spec.length {
        let height = fork_height + 1 + offset;
        let mut txs = Vec::new();

        let coinbase = make_coinbase(&mut rng, &mut pool, height);
        liquidity.add_outputs(&coinbase);
        txs.push(coinbase);

        // The marker plant also guarantees the branch block differs
        // from its canonical counterpart at the same height.
        txs.push(probe_tx(
            &mut rng,
            &mut pool,
            &mut liquidity,
            &spec.marker,
            &mut marker_utxos,
        ));

        let mean = traffic.txs_per_block.max(1);
        let wanted = rng.gen_range(mean / 2..=mean + mean / 2);
        for _ in 0..wanted {
            match background_tx(&mut rng, &mut pool, &mut liquidity, traffic) {
                Some(tx) => txs.push(tx),
                None => break,
            }
        }

        builder.push_block(txs)?;
        heights.push(height);
    }

    let chain = builder.finish();
    let blocks = (fork_height + 1..=chain.tip_height())
        .map(|h| (*chain.block(h).expect("branch block just built")).clone())
        .collect();
    Ok(ForkBranch {
        fork_height,
        blocks,
        marker: PlantedProbe {
            address: spec.marker.clone(),
            tx_count: spec.length,
            block_heights: heights,
        },
    })
}

/// One spendable output held by the generator.
#[derive(Debug, Clone)]
struct Utxo {
    outpoint: TxOutPoint,
    address: Address,
    value: u64,
}

/// The generator's view of spendable background outputs.
#[derive(Debug, Default, Clone)]
struct Liquidity {
    utxos: Vec<Utxo>,
}

impl Liquidity {
    /// Registers every output of `tx` as spendable.
    fn add_outputs(&mut self, tx: &Transaction) {
        let txid = tx.txid();
        for (vout, output) in tx.outputs.iter().enumerate() {
            self.utxos.push(Utxo {
                outpoint: TxOutPoint {
                    txid,
                    vout: vout as u32,
                },
                address: output.address.clone(),
                value: output.value,
            });
        }
    }

    /// Removes and returns a uniformly random spendable output.
    fn take(&mut self, rng: &mut StdRng) -> Option<Utxo> {
        if self.utxos.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.utxos.len());
        Some(self.utxos.swap_remove(idx))
    }
}

/// The reusable background address pool.
#[derive(Debug, Clone)]
struct AddressPool {
    traffic: TrafficModel,
    addresses: Vec<Address>,
}

impl AddressPool {
    fn new(traffic: TrafficModel) -> Self {
        AddressPool {
            traffic,
            addresses: Vec::new(),
        }
    }

    /// Picks an address: mints a fresh one with `new_address_prob`, else
    /// reuses a pool address with age-skewed probability.
    fn pick(&mut self, rng: &mut StdRng) -> Address {
        if self.addresses.is_empty() || rng.gen_bool(self.traffic.new_address_prob) {
            let addr = mint_address(rng);
            self.addresses.push(addr.clone());
            addr
        } else {
            let u: f64 = rng.gen();
            let idx = ((self.addresses.len() as f64) * u.powf(self.traffic.reuse_skew)) as usize;
            self.addresses[idx.min(self.addresses.len() - 1)].clone()
        }
    }
}

/// Mints a mainnet-looking address: `1` plus 32 Base58 characters.
fn mint_address(rng: &mut StdRng) -> Address {
    let mut s = String::with_capacity(33);
    s.push('1');
    for _ in 0..32 {
        s.push(BASE58_ALPHABET[rng.gen_range(0..58)] as char);
    }
    Address::new(s)
}

/// A coinbase whose subsidy fans out to several pool addresses.
fn make_coinbase(rng: &mut StdRng, pool: &mut AddressPool, height: u64) -> Transaction {
    let share = BLOCK_SUBSIDY / COINBASE_FAN_OUT;
    let mut outputs: Vec<TxOutput> = (0..COINBASE_FAN_OUT)
        .map(|_| TxOutput {
            address: pool.pick(rng),
            value: share,
        })
        .collect();
    outputs[0].value += BLOCK_SUBSIDY - share * COINBASE_FAN_OUT;
    Transaction {
        version: 1,
        inputs: vec![TxInput {
            prev_out: TxOutPoint::COINBASE,
            address: outputs[0].address.clone(),
            value: 0,
        }],
        outputs,
        lock_time: height as u32, // BIP 34-style uniqueness
    }
}

/// A background transaction spending real liquidity; `None` when the
/// young chain has no spendable outputs left this block.
fn background_tx(
    rng: &mut StdRng,
    pool: &mut AddressPool,
    liquidity: &mut Liquidity,
    traffic: TrafficModel,
) -> Option<Transaction> {
    let want_inputs = rng.gen_range(1..=traffic.max_inputs.max(1)) as usize;
    let mut inputs = Vec::with_capacity(want_inputs);
    for _ in 0..want_inputs {
        match liquidity.take(rng) {
            Some(utxo) => inputs.push(utxo),
            None => break,
        }
    }
    if inputs.is_empty() {
        return None;
    }
    let total: u64 = inputs.iter().map(|u| u.value).sum();

    let n_out = rng.gen_range(1..=traffic.max_outputs.max(1)) as u64;
    let n_out = n_out.min(total).max(1);
    let share = total / n_out;
    let mut outputs: Vec<TxOutput> = (0..n_out)
        .map(|_| TxOutput {
            address: pool.pick(rng),
            value: share,
        })
        .collect();
    outputs[0].value += total - share * n_out;

    let tx = Transaction {
        version: 1,
        inputs: inputs
            .into_iter()
            .map(|u| TxInput {
                prev_out: u.outpoint,
                address: u.address,
                value: u.value,
            })
            .collect(),
        outputs,
        lock_time: 0,
    };
    liquidity.add_outputs(&tx);
    Some(tx)
}

/// A transaction involving the probe exactly once: as receiver (funded
/// from background liquidity) or, when the probe holds coins, sometimes
/// as sender — so probe histories exercise both sides of paper Eq. 1.
fn probe_tx(
    rng: &mut StdRng,
    pool: &mut AddressPool,
    liquidity: &mut Liquidity,
    probe: &Address,
    probe_utxos: &mut Vec<Utxo>,
) -> Transaction {
    // Fall back to a self-transfer when background liquidity is dry
    // (only conceivable for heavy plants in the very first block).
    let send = !probe_utxos.is_empty() && (rng.gen_bool(0.4) || liquidity.utxos.is_empty());
    if send {
        let idx = rng.gen_range(0..probe_utxos.len());
        let coin = probe_utxos.swap_remove(idx);
        let tx = Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: coin.outpoint,
                address: probe.clone(),
                value: coin.value,
            }],
            outputs: vec![TxOutput {
                address: pool.pick(rng),
                value: coin.value,
            }],
            lock_time: 0,
        };
        liquidity.add_outputs(&tx);
        tx
    } else {
        // Fund the probe from background liquidity. The coinbase
        // fan-out guarantees at least one output exists by the time
        // probe transactions are assembled.
        let funding = liquidity
            .take(rng)
            .expect("coinbase fan-out precedes probe transactions");
        let tx = Transaction {
            version: 1,
            inputs: vec![TxInput {
                prev_out: funding.outpoint,
                address: funding.address,
                value: funding.value,
            }],
            outputs: vec![TxOutput {
                address: probe.clone(),
                value: funding.value,
            }],
            lock_time: 0,
        };
        probe_utxos.push(Utxo {
            outpoint: TxOutPoint {
                txid: tx.txid(),
                vout: 0,
            },
            address: probe.clone(),
            value: funding.value,
        });
        tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes;
    use lvq_bloom::BloomParams;
    use lvq_chain::CommitmentPolicy;

    fn small_params() -> ChainParams {
        ChainParams::new(
            BloomParams::new(256, 2).unwrap(),
            8,
            CommitmentPolicy::lvq(),
        )
        .unwrap()
    }

    fn small_workload(seed: u64) -> Workload {
        WorkloadBuilder::new(small_params())
            .blocks(24)
            .traffic(TrafficModel::tiny())
            .seed(seed)
            .probes(probes::table3_scaled(24))
            .build()
            .unwrap()
    }

    #[test]
    fn planted_counts_match_ground_truth() {
        let w = small_workload(1);
        for (probe, spec) in w.probes.iter().zip(probes::table3_scaled(24)) {
            let history = w.chain.history_of(&probe.address);
            assert_eq!(history.len() as u64, spec.tx_count, "{}", probe.address);
            let mut heights: Vec<u64> = history.iter().map(|(h, _)| *h).collect();
            heights.dedup();
            assert_eq!(heights, probe.block_heights, "{}", probe.address);
            assert_eq!(heights.len() as u64, spec.block_count);
        }
    }

    #[test]
    fn generated_chain_validates() {
        let w = small_workload(2);
        w.chain.validate().unwrap();
    }

    #[test]
    fn generated_chain_is_utxo_consistent() {
        // Every input spends a real unspent output; the monetary base
        // is exactly blocks × subsidy.
        let w = small_workload(6);
        let utxo = w.chain.validate_utxo().unwrap();
        assert_eq!(utxo.total_value(), 24 * BLOCK_SUBSIDY);
        assert!(!utxo.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small_workload(42);
        let b = small_workload(42);
        assert_eq!(a.chain.tip_height(), b.chain.tip_height());
        for h in 1..=a.chain.tip_height() {
            assert_eq!(
                a.chain.header(h).unwrap().block_hash(),
                b.chain.header(h).unwrap().block_hash(),
                "height {h}"
            );
        }
        let c = small_workload(43);
        assert_ne!(
            a.chain.header(1).unwrap().block_hash(),
            c.chain.header(1).unwrap().block_hash()
        );
    }

    #[test]
    fn probe_balances_are_non_negative() {
        let w = small_workload(3);
        for probe in &w.probes {
            let history = w.chain.history_of(&probe.address);
            let txs: Vec<_> = history.iter().map(|(_, t)| t.clone()).collect();
            let balance = lvq_chain::balance_of(&probe.address, txs.iter());
            assert!(balance.net() >= 0, "{}", probe.address);
        }
    }

    #[test]
    fn too_few_blocks_rejected() {
        let err = WorkloadBuilder::new(small_params())
            .blocks(4)
            .probe("1Needy", 10, 8)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            WorkloadError::TooFewBlocks {
                needed: 8,
                available: 4
            }
        );
    }

    #[test]
    fn zero_probe_never_appears() {
        let w = small_workload(4);
        assert!(w.probes[0].block_heights.is_empty());
        assert!(w.chain.history_of(&w.probes[0].address).is_empty());
    }

    fn small_forked(seed: u64, specs: &[BranchSpec]) -> ForkedWorkload {
        WorkloadBuilder::new(small_params())
            .blocks(16)
            .traffic(TrafficModel::tiny())
            .seed(seed)
            .probe("1Probe", 6, 4)
            .build_forked(specs)
            .unwrap()
    }

    #[test]
    fn branches_share_the_prefix_and_diverge_above_the_fork() {
        let specs = [
            BranchSpec::new(2, 4, "1ReorgA"),
            BranchSpec::new(5, 7, "1ReorgB"),
        ];
        let forked = small_forked(9, &specs);
        let canon = &forked.workload.chain;
        assert_eq!(canon.tip_height(), 16);

        for (branch, spec) in forked.branches.iter().zip(&specs) {
            assert_eq!(branch.fork_height, 16 - spec.depth);
            assert_eq!(branch.blocks.len(), spec.length as usize);
            // Chains onto the canonical header at the fork height…
            assert_eq!(
                branch.blocks[0].header.prev_block,
                canon.header(branch.fork_height).unwrap().block_hash()
            );
            // …and immediately diverges from the canonical block there.
            assert_ne!(
                branch.blocks[0].header.block_hash(),
                canon.header(branch.fork_height + 1).unwrap().block_hash()
            );
            // Internal linkage and the marker plant, one per block.
            for (i, block) in branch.blocks.iter().enumerate() {
                if i > 0 {
                    assert_eq!(
                        block.header.prev_block,
                        branch.blocks[i - 1].header.block_hash()
                    );
                }
                let plants = block
                    .transactions
                    .iter()
                    .filter(|tx| tx.involves(&spec.marker))
                    .count();
                assert_eq!(plants, 1, "marker plants in branch block {i}");
            }
            assert_eq!(branch.marker.tx_count, spec.length);
        }
    }

    #[test]
    fn reorged_chain_is_utxo_consistent() {
        // Rebuild the post-reorg chain from raw transactions: the
        // shared prefix plus the branch's blocks. It must commit to
        // byte-identical headers and replay as a valid UTXO ledger.
        let specs = [BranchSpec::new(3, 5, "1ReorgC")];
        let forked = small_forked(11, &specs);
        let canon = &forked.workload.chain;
        let branch = &forked.branches[0];

        let mut builder = ChainBuilder::new(small_params()).unwrap();
        for h in 1..=branch.fork_height {
            builder
                .push_block(canon.block(h).unwrap().transactions.clone())
                .unwrap();
        }
        for block in &branch.blocks {
            builder.push_block(block.transactions.clone()).unwrap();
        }
        let reorged = builder.finish();
        assert_eq!(reorged.tip_height(), branch.fork_height + 5);
        for (i, block) in branch.blocks.iter().enumerate() {
            let h = branch.fork_height + 1 + i as u64;
            assert_eq!(
                reorged.header(h).unwrap().block_hash(),
                block.header.block_hash(),
                "height {h}"
            );
        }
        reorged.validate().unwrap();
        reorged.validate_utxo().unwrap();
        // The marker's history on the reorged chain is its plants.
        assert_eq!(
            reorged.history_of(&branch.marker.address).len() as u64,
            branch.marker.tx_count
        );
    }

    #[test]
    fn forked_build_is_deterministic_and_seed_sensitive() {
        let specs = [BranchSpec::new(2, 3, "1ReorgD")];
        let a = small_forked(21, &specs);
        let b = small_forked(21, &specs);
        assert_eq!(
            a.branches[0].blocks[2].header.block_hash(),
            b.branches[0].blocks[2].header.block_hash()
        );
        let respun = [BranchSpec::new(2, 3, "1ReorgD").seed(77)];
        let c = small_forked(21, &respun);
        assert_eq!(a.branches[0].fork_height, c.branches[0].fork_height);
        assert_ne!(
            a.branches[0].blocks[0].header.block_hash(),
            c.branches[0].blocks[0].header.block_hash(),
            "branch seed must respin branch content"
        );
    }

    #[test]
    fn branch_deeper_than_the_chain_is_rejected() {
        let err = WorkloadBuilder::new(small_params())
            .blocks(4)
            .traffic(TrafficModel::tiny())
            .build_forked(&[BranchSpec::new(9, 2, "1Deep")])
            .unwrap_err();
        assert_eq!(
            err,
            WorkloadError::TooFewBlocks {
                needed: 9,
                available: 4
            }
        );
    }

    /// Pins the density calibration of DESIGN.md §6: the mainnet-2012
    /// model must produce roughly 500 unique addresses per block, since
    /// every Bloom fill ratio in the evaluation rests on that.
    #[test]
    fn mainnet_model_address_density() {
        let w = WorkloadBuilder::new(small_params())
            .blocks(8)
            .traffic(TrafficModel::mainnet_2012())
            .seed(5)
            .build()
            .unwrap();
        let total: usize = (1..=8).map(|h| w.chain.addr_counts(h).unwrap().len()).sum();
        let avg = total / 8;
        assert!(
            (300..=900).contains(&avg),
            "unique addresses per block drifted to {avg}; recalibrate \
             TrafficModel::mainnet_2012 or the Scale filter sizes"
        );
    }
}
