//! Deterministic synthetic workloads for the LVQ evaluation.
//!
//! The paper evaluates on Bitcoin mainnet blocks 204,800–208,895 (4,096
//! blocks, late 2012) and probes six addresses whose transaction/block
//! footprints span four orders of magnitude (Table III). That exact data
//! is not redistributable, so this crate generates a chain with the same
//! statistical shape (see DESIGN.md's substitution table):
//!
//! * era-realistic transaction counts and a heavy-tailed address-reuse
//!   distribution ([`TrafficModel`]), calibrated so Bloom-filter fill
//!   ratios behave like the paper's;
//! * the six Table III probe addresses ([`probes::table3`]) *planted*
//!   with exactly the paper's `(#tx, #block)` counts;
//! * full determinism: the same seed reproduces the same chain
//!   bit-for-bit, so experiments are replayable;
//! * competing branches for reorg experiments
//!   ([`WorkloadBuilder::build_forked`]): UTXO-consistent forks off
//!   any depth below the canonical tip, each planting a marker address
//!   so reorg winners are observable in verified histories.
//!
//! # Examples
//!
//! ```
//! use lvq_chain::ChainParams;
//! use lvq_workload::{TrafficModel, WorkloadBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = WorkloadBuilder::new(ChainParams::default())
//!     .blocks(16)
//!     .traffic(TrafficModel::tiny())
//!     .seed(7)
//!     .probe("1Probe", 3, 2) // 3 transactions across 2 blocks
//!     .build()?;
//! assert_eq!(workload.chain.tip_height(), 16);
//! let probe = &workload.probes[0];
//! assert_eq!(probe.tx_count, 3);
//! assert_eq!(probe.block_heights.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
pub mod probes;
mod traffic;

pub use generator::{
    BranchSpec, ForkBranch, ForkedWorkload, PlantedProbe, Workload, WorkloadBuilder, WorkloadError,
};
pub use probes::ProbeSpec;
pub use traffic::TrafficModel;
