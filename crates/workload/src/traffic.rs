//! The background-traffic model.

/// Statistical shape of the background (non-probe) transaction stream.
///
/// Defaults approximate late-2012 Bitcoin mainnet — the era of the
/// paper's block range — and are calibrated (DESIGN.md §6) so that a
/// 10 KB per-block filter shows occasional false positives over 4,096
/// blocks while a 30 KB merged filter saturates a few levels up the BMT,
/// reproducing the paper's endpoint behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficModel {
    /// Mean transactions per block (excluding the coinbase). Actual
    /// counts jitter uniformly within ±50 %.
    pub txs_per_block: u32,
    /// Probability that an input/output slot mints a fresh address
    /// rather than reusing one from the pool.
    pub new_address_prob: f64,
    /// Skew of pool reuse: an existing address is picked at index
    /// `⌊pool_len · u^skew⌋` for uniform `u` — larger skew concentrates
    /// traffic on old, busy addresses (exchanges, mining pools).
    pub reuse_skew: f64,
    /// Maximum inputs per background transaction (at least 1).
    pub max_inputs: u32,
    /// Maximum outputs per background transaction (at least 1).
    pub max_outputs: u32,
}

impl TrafficModel {
    /// Late-2012 mainnet-like defaults: ~220 transactions per block,
    /// ≈500 unique addresses per block.
    pub fn mainnet_2012() -> Self {
        TrafficModel {
            txs_per_block: 220,
            new_address_prob: 0.35,
            reuse_skew: 3.0,
            max_inputs: 2,
            max_outputs: 3,
        }
    }

    /// A small model for unit tests: ~12 transactions per block.
    pub fn tiny() -> Self {
        TrafficModel {
            txs_per_block: 12,
            new_address_prob: 0.4,
            reuse_skew: 2.0,
            max_inputs: 2,
            max_outputs: 2,
        }
    }

    /// Returns a copy with a different mean transaction count.
    pub fn with_txs_per_block(mut self, txs: u32) -> Self {
        self.txs_per_block = txs;
        self
    }
}

impl Default for TrafficModel {
    fn default() -> Self {
        TrafficModel::mainnet_2012()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let m = TrafficModel::default();
        assert!(m.txs_per_block > 0);
        assert!((0.0..=1.0).contains(&m.new_address_prob));
        assert!(m.reuse_skew >= 1.0);
        assert!(m.max_inputs >= 1 && m.max_outputs >= 1);
    }

    #[test]
    fn with_txs_per_block_overrides() {
        assert_eq!(
            TrafficModel::tiny().with_txs_per_block(99).txs_per_block,
            99
        );
    }
}
