//! Shared BMT proofs for multi-address batches.
//!
//! A batched query asks about several addresses at once. Instead of one
//! descent (and one pruned subtree on the wire) per address, the prover
//! performs a single descent serving *all* the addresses' bit-position
//! sets: a node is an endpoint only when it is clean for **every**
//! queried set, and is expanded as soon as **any** set matches it.
//!
//! Soundness forces that asymmetry. "Clean" means at least one checked
//! bit is unset, and the unset bit that clears the *union* of several
//! position sets may belong to a different address — so a node clean for
//! the union may still match an individual address. Expanding on any
//! match (and checking every set at every endpoint) keeps each
//! per-address verdict exactly as strong as a dedicated single-address
//! proof.
//!
//! The shared tree is smaller than the sum of the per-address trees
//! whenever the descents overlap — which they always do near the root,
//! where filters are densest.

use lvq_bloom::{BloomFilter, BloomParams};
use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::Hash256;

use super::{internal_hash, is_power_of_two, leaf_hash, BmtCoverage, BmtError, BmtSource};

/// Maximum tree depth accepted when decoding untrusted proofs (matches
/// [`super::BmtProofNode`]).
const MAX_DEPTH: u32 = 40;

/// One node of a shared multi-address BMT proof.
///
/// Unlike [`super::BmtProofNode`], leaves carry no clean/failed
/// distinction: whether a leaf is clean or matched is *per address*, and
/// the verifier derives it from the (hash-bound) leaf filter for each
/// queried position set independently.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BmtBatchNode {
    /// A leaf endpoint. Each address classifies it from the filter:
    /// clean (its positions are not all set) or matched (needs a
    /// block-level fragment for that address).
    Leaf {
        /// The leaf's filter.
        filter: BloomFilter,
    },
    /// An internal endpoint that is clean for **every** queried position
    /// set. Child hashes must be supplied, as in the single-address
    /// proof.
    CleanNode {
        /// The node's filter (OR of everything below it).
        filter: BloomFilter,
        /// Hash of the left child.
        left_hash: Hash256,
        /// Hash of the right child.
        right_hash: Hash256,
    },
    /// An expanded internal node (at least one set matched it); the
    /// verifier recomputes its filter and hash from the children.
    Branch {
        /// Left child subtree.
        left: Box<BmtBatchNode>,
        /// Right child subtree.
        right: Box<BmtBatchNode>,
    },
}

/// A shared multi-address proof over one BMT (one segment in LVQ).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BmtBatchProof {
    root: BmtBatchNode,
}

/// Size and shape statistics of a shared batch proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BmtBatchProofStats {
    /// Leaf endpoints (clean or matched is per-address).
    pub leaf_endpoints: u64,
    /// Internal endpoints clean for every queried set.
    pub clean_nodes: u64,
    /// Expanded internal nodes.
    pub branch_nodes: u64,
    /// Bytes of Bloom filter material in the encoding.
    pub filter_bytes: u64,
    /// Bytes of child hashes in the encoding.
    pub hash_bytes: u64,
}

impl BmtBatchProofStats {
    /// Total endpoint nodes (the analogue of
    /// [`super::BmtProofStats::endpoint_count`]).
    pub fn endpoint_count(&self) -> u64 {
        self.leaf_endpoints + self.clean_nodes
    }

    /// Accumulates another proof's statistics (for multi-segment
    /// batches).
    pub fn merge(&mut self, other: &BmtBatchProofStats) {
        self.leaf_endpoints += other.leaf_endpoints;
        self.clean_nodes += other.clean_nodes;
        self.branch_nodes += other.branch_nodes;
        self.filter_bytes += other.filter_bytes;
        self.hash_bytes += other.hash_bytes;
    }
}

impl BmtBatchProof {
    /// Wraps a hand-built proof tree (tests and adversarial
    /// simulations).
    pub fn from_root(root: BmtBatchNode) -> Self {
        BmtBatchProof { root }
    }

    /// The proof's root node.
    pub fn root(&self) -> &BmtBatchNode {
        &self.root
    }

    /// Verifies the shared proof against a committed BMT for every
    /// queried position set at once.
    ///
    /// Arguments mirror [`super::BmtProof::verify`], with `position_sets`
    /// holding one bit-position set per queried address. On success,
    /// returns one [`BmtCoverage`] per set, in order — each exactly as
    /// strong as a dedicated single-address proof would have
    /// established.
    ///
    /// # Errors
    ///
    /// Returns a [`BmtError`] if the proof shape or parameters are
    /// wrong, the recomputed root differs, or a `CleanNode` is not clean
    /// for every set.
    pub fn verify(
        &self,
        first_leaf: u64,
        leaf_count: u64,
        expected_root: &Hash256,
        params: BloomParams,
        position_sets: &[Vec<u64>],
    ) -> Result<Vec<BmtCoverage>, BmtError> {
        if !is_power_of_two(leaf_count) {
            return Err(BmtError::LeafCountNotPowerOfTwo { count: leaf_count });
        }
        let mut coverages = vec![BmtCoverage::default(); position_sets.len()];
        let (hash, _filter) = Self::verify_node(
            &self.root,
            first_leaf,
            first_leaf + leaf_count - 1,
            params,
            position_sets,
            &mut coverages,
        )?;
        if hash != *expected_root {
            return Err(BmtError::RootMismatch);
        }
        Ok(coverages)
    }

    fn verify_node(
        node: &BmtBatchNode,
        lo: u64,
        hi: u64,
        params: BloomParams,
        position_sets: &[Vec<u64>],
        coverages: &mut [BmtCoverage],
    ) -> Result<(Hash256, BloomFilter), BmtError> {
        match node {
            BmtBatchNode::Leaf { filter } => {
                if lo != hi {
                    return Err(BmtError::MalformedProof {
                        reason: "batch leaf above leaf level",
                    });
                }
                Self::check_filter(filter, params)?;
                for (positions, coverage) in position_sets.iter().zip(coverages.iter_mut()) {
                    if filter.check_positions(positions).is_clean() {
                        coverage.clean_ranges.push((lo, hi));
                    } else {
                        coverage.failed_leaves.push(lo);
                    }
                }
                Ok((leaf_hash(filter), filter.clone()))
            }
            BmtBatchNode::CleanNode {
                filter,
                left_hash,
                right_hash,
            } => {
                if lo == hi {
                    return Err(BmtError::MalformedProof {
                        reason: "internal clean node at leaf level",
                    });
                }
                Self::check_filter(filter, params)?;
                for (positions, coverage) in position_sets.iter().zip(coverages.iter_mut()) {
                    // Every set must be individually clean; union
                    // cleanliness is NOT enough (see module docs).
                    if !filter.check_positions(positions).is_clean() {
                        return Err(BmtError::NotClean);
                    }
                    coverage.clean_ranges.push((lo, hi));
                }
                Ok((internal_hash(left_hash, right_hash, filter), filter.clone()))
            }
            BmtBatchNode::Branch { left, right } => {
                if lo == hi {
                    return Err(BmtError::MalformedProof {
                        reason: "branch node at leaf level",
                    });
                }
                let mid = lo + (hi - lo) / 2;
                let (lh, lf) = Self::verify_node(left, lo, mid, params, position_sets, coverages)?;
                let (rh, rf) =
                    Self::verify_node(right, mid + 1, hi, params, position_sets, coverages)?;
                let filter = BloomFilter::union(&lf, &rf).map_err(|_| BmtError::ParamsMismatch)?;
                Ok((internal_hash(&lh, &rh, &filter), filter))
            }
        }
    }

    fn check_filter(filter: &BloomFilter, params: BloomParams) -> Result<(), BmtError> {
        if filter.params() != params {
            return Err(BmtError::ParamsMismatch);
        }
        Ok(())
    }

    /// Computes the proof's size and shape statistics.
    pub fn stats(&self) -> BmtBatchProofStats {
        fn walk(node: &BmtBatchNode, stats: &mut BmtBatchProofStats) {
            match node {
                BmtBatchNode::Leaf { filter } => {
                    stats.leaf_endpoints += 1;
                    stats.filter_bytes += filter.encoded_len() as u64;
                }
                BmtBatchNode::CleanNode { filter, .. } => {
                    stats.clean_nodes += 1;
                    stats.filter_bytes += filter.encoded_len() as u64;
                    stats.hash_bytes += 64;
                }
                BmtBatchNode::Branch { left, right } => {
                    stats.branch_nodes += 1;
                    walk(left, stats);
                    walk(right, stats);
                }
            }
        }
        let mut stats = BmtBatchProofStats::default();
        walk(&self.root, &mut stats);
        stats
    }
}

/// Generates the shared multi-address proof for `position_sets` over
/// `source` in a single descent.
///
/// The descent expands a node as soon as any set matches it and stops at
/// nodes clean for every set; leaves reached by the expansion become
/// [`BmtBatchNode::Leaf`] endpoints whose per-address classification the
/// verifier re-derives.
///
/// # Errors
///
/// Returns [`BmtError::LeafCountNotPowerOfTwo`] if the source span is
/// not dyadic, and [`BmtError::EmptyTree`] if `position_sets` is empty
/// (an empty batch has no meaningful proof).
pub fn prove_multi<S: BmtSource + ?Sized>(
    source: &S,
    position_sets: &[Vec<u64>],
) -> Result<BmtBatchProof, BmtError> {
    if position_sets.is_empty() {
        return Err(BmtError::EmptyTree);
    }
    let (lo, hi) = source.span();
    let count = hi - lo + 1;
    if !is_power_of_two(count) {
        return Err(BmtError::LeafCountNotPowerOfTwo { count });
    }

    fn descend<S: BmtSource + ?Sized>(
        source: &S,
        lo: u64,
        hi: u64,
        position_sets: &[Vec<u64>],
    ) -> BmtBatchNode {
        let filter = source.filter(lo, hi);
        let any_matched = position_sets
            .iter()
            .any(|positions| !filter.check_positions(positions).is_clean());
        match (any_matched, lo == hi) {
            (_, true) => BmtBatchNode::Leaf { filter },
            (false, false) => {
                let mid = lo + (hi - lo) / 2;
                BmtBatchNode::CleanNode {
                    filter,
                    left_hash: source.node_hash(lo, mid),
                    right_hash: source.node_hash(mid + 1, hi),
                }
            }
            (true, false) => {
                let mid = lo + (hi - lo) / 2;
                BmtBatchNode::Branch {
                    left: Box::new(descend(source, lo, mid, position_sets)),
                    right: Box::new(descend(source, mid + 1, hi, position_sets)),
                }
            }
        }
    }

    Ok(BmtBatchProof {
        root: descend(source, lo, hi, position_sets),
    })
}

const TAG_LEAF: u8 = 0;
const TAG_CLEAN_NODE: u8 = 1;
const TAG_BRANCH: u8 = 2;

impl Encodable for BmtBatchNode {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            BmtBatchNode::Leaf { filter } => {
                out.push(TAG_LEAF);
                filter.encode_into(out);
            }
            BmtBatchNode::CleanNode {
                filter,
                left_hash,
                right_hash,
            } => {
                out.push(TAG_CLEAN_NODE);
                filter.encode_into(out);
                left_hash.encode_into(out);
                right_hash.encode_into(out);
            }
            BmtBatchNode::Branch { left, right } => {
                out.push(TAG_BRANCH);
                left.encode_into(out);
                right.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            BmtBatchNode::Leaf { filter } => filter.encoded_len(),
            BmtBatchNode::CleanNode { filter, .. } => filter.encoded_len() + 64,
            BmtBatchNode::Branch { left, right } => left.encoded_len() + right.encoded_len(),
        }
    }
}

impl BmtBatchNode {
    fn decode_bounded(reader: &mut Reader<'_>, depth: u32) -> Result<Self, DecodeError> {
        if depth > MAX_DEPTH {
            return Err(DecodeError::InvalidValue {
                what: "bmt batch proof depth",
                found: u64::from(depth),
            });
        }
        Ok(match reader.read_u8()? {
            TAG_LEAF => BmtBatchNode::Leaf {
                filter: BloomFilter::decode_from(reader)?,
            },
            TAG_CLEAN_NODE => BmtBatchNode::CleanNode {
                filter: BloomFilter::decode_from(reader)?,
                left_hash: Hash256::decode_from(reader)?,
                right_hash: Hash256::decode_from(reader)?,
            },
            TAG_BRANCH => BmtBatchNode::Branch {
                left: Box::new(Self::decode_bounded(reader, depth + 1)?),
                right: Box::new(Self::decode_bounded(reader, depth + 1)?),
            },
            other => {
                return Err(DecodeError::InvalidValue {
                    what: "bmt batch proof node tag",
                    found: u64::from(other),
                })
            }
        })
    }
}

impl Decodable for BmtBatchNode {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Self::decode_bounded(reader, 0)
    }
}

impl Encodable for BmtBatchProof {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.root.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.root.encoded_len()
    }
}

impl Decodable for BmtBatchProof {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BmtBatchProof {
            root: BmtBatchNode::decode_from(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::{prove, Bmt};
    use super::*;
    use lvq_codec::decode_exact;

    fn params() -> BloomParams {
        BloomParams::new(64, 2).unwrap()
    }

    /// Eight leaves, each holding one distinct item plus a shared one.
    fn tree() -> Bmt {
        let leaves = (0..8u8)
            .map(|i| {
                let mut f = BloomFilter::new(params());
                f.insert(&[b'x', i]);
                if i % 3 == 0 {
                    f.insert(b"shared");
                }
                f
            })
            .collect();
        Bmt::build(1, leaves).unwrap()
    }

    fn sets(items: &[&[u8]]) -> Vec<Vec<u64>> {
        items
            .iter()
            .map(|item| BloomFilter::bit_positions(params(), item))
            .collect()
    }

    #[test]
    fn batch_matches_individual_proofs() {
        let tree = tree();
        let probes: [&[u8]; 3] = [b"x\x00", b"shared", b"absent-item"];
        let position_sets = sets(&probes);
        let batch = prove_multi(&tree, &position_sets).unwrap();
        let coverages = batch
            .verify(1, 8, &tree.root_hash(), params(), &position_sets)
            .unwrap();
        assert_eq!(coverages.len(), 3);
        for (positions, coverage) in position_sets.iter().zip(&coverages) {
            let single = prove(&tree, positions).unwrap();
            let single_cov = single
                .verify(1, 8, &tree.root_hash(), params(), positions)
                .unwrap();
            // Identical failed-leaf sets, and both tile the span.
            assert_eq!(coverage.failed_leaves, single_cov.failed_leaves);
            assert!(coverage.covers(1, 8));
        }
    }

    #[test]
    fn batch_smaller_than_sum_of_singles() {
        let tree = tree();
        let probes: [&[u8]; 4] = [b"x\x01", b"x\x02", b"x\x05", b"none"];
        let position_sets = sets(&probes);
        let batch = prove_multi(&tree, &position_sets).unwrap();
        let singles: usize = position_sets
            .iter()
            .map(|p| prove(&tree, p).unwrap().encoded_len())
            .sum();
        assert!(
            batch.encoded_len() < singles,
            "shared descent must beat {} separate proofs ({} vs {})",
            probes.len(),
            batch.encoded_len(),
            singles
        );
    }

    #[test]
    fn empty_batch_rejected() {
        let tree = tree();
        assert_eq!(prove_multi(&tree, &[]).unwrap_err(), BmtError::EmptyTree);
    }

    #[test]
    fn union_clean_node_not_accepted_for_matching_address() {
        // Forge a proof that collapses a subtree containing an address's
        // item into a CleanNode. The filter (bound by the root hash)
        // still matches that address, so verification must fail rather
        // than silently hide the match.
        let tree = tree();
        let position_sets = sets(&[b"x\x00"]);
        fn forge(node: &BmtBatchNode, tree: &Bmt, lo: u64, hi: u64) -> BmtBatchNode {
            match node {
                BmtBatchNode::Branch { .. } if lo != hi => {
                    let mid = lo + (hi - lo) / 2;
                    BmtBatchNode::CleanNode {
                        filter: tree.filter(lo, hi),
                        left_hash: tree.node_hash(lo, mid),
                        right_hash: tree.node_hash(mid + 1, hi),
                    }
                }
                other => other.clone(),
            }
        }
        let honest = prove_multi(&tree, &position_sets).unwrap();
        let forged = BmtBatchProof::from_root(forge(honest.root(), &tree, 1, 8));
        assert_eq!(
            forged
                .verify(1, 8, &tree.root_hash(), params(), &position_sets)
                .unwrap_err(),
            BmtError::NotClean
        );
    }

    #[test]
    fn wrong_root_and_params_rejected() {
        let tree = tree();
        let position_sets = sets(&[b"probe"]);
        let proof = prove_multi(&tree, &position_sets).unwrap();
        assert_eq!(
            proof
                .verify(1, 8, &Hash256::hash(b"bogus"), params(), &position_sets)
                .unwrap_err(),
            BmtError::RootMismatch
        );
        let other = BloomParams::new(65, 2).unwrap();
        assert_eq!(
            proof
                .verify(1, 8, &tree.root_hash(), other, &position_sets)
                .unwrap_err(),
            BmtError::ParamsMismatch
        );
    }

    #[test]
    fn codec_roundtrip_and_depth_bomb() {
        let tree = tree();
        let position_sets = sets(&[b"x\x03", b"shared"]);
        let proof = prove_multi(&tree, &position_sets).unwrap();
        let bytes = proof.encode();
        assert_eq!(bytes.len(), proof.encoded_len());
        assert_eq!(decode_exact::<BmtBatchProof>(&bytes).unwrap(), proof);

        assert!(decode_exact::<BmtBatchProof>(&[9u8]).is_err());
        let bomb = vec![TAG_BRANCH; 64];
        assert!(decode_exact::<BmtBatchProof>(&bomb).is_err());
    }

    #[test]
    fn stats_account_for_encoding() {
        let tree = tree();
        let position_sets = sets(&[b"shared", b"gone"]);
        let proof = prove_multi(&tree, &position_sets).unwrap();
        let stats = proof.stats();
        assert!(stats.endpoint_count() >= 1);
        // Every byte is either a filter, a hash, or a one-byte tag.
        let tags = stats.leaf_endpoints + stats.clean_nodes + stats.branch_nodes;
        assert_eq!(
            proof.encoded_len() as u64,
            stats.filter_bytes + stats.hash_bytes + tags
        );
    }
}
