//! The [`BmtSource`] abstraction the prover descends over.

use lvq_bloom::{BloomFilter, BloomParams};
use lvq_crypto::Hash256;

/// Read access to one BMT's nodes, addressed by the inclusive range of
/// leaf ids a node spans.
///
/// Leaf ids are arbitrary consecutive integers — in LVQ they are block
/// heights, so a source spanning `(257, 384)` is the BMT that block 384
/// commits (it merges blocks 257–384, paper Table I/II).
///
/// The split design exists for memory: a 4,096-leaf BMT of 500 KB filters
/// holds ~4 GB of filter material if materialised. Implementations may
/// instead recompute `filter(lo, hi)` on demand (e.g. by inserting the
/// addresses of blocks `lo..=hi` into a fresh filter — bitwise OR of
/// per-block filters and direct insertion produce identical bit vectors)
/// while keeping only the 32-byte `node_hash` values, which the chain
/// stores for every dyadic span at build time.
///
/// # Contract
///
/// * `span()` covers `2^d` leaves for some `d ≥ 0`.
/// * `filter`/`node_hash` are only called with dyadic sub-spans of
///   `span()` and must be consistent with [`leaf_hash`]/[`internal_hash`]
///   over the same filters ([`crate::bmt::leaf_hash`],
///   [`crate::bmt::internal_hash`]).
pub trait BmtSource {
    /// Parameters shared by every filter in the tree.
    fn params(&self) -> BloomParams;

    /// Inclusive range of leaf ids this tree covers.
    fn span(&self) -> (u64, u64);

    /// The filter of the node spanning leaves `lo..=hi`.
    fn filter(&self, lo: u64, hi: u64) -> BloomFilter;

    /// The hash of the node spanning leaves `lo..=hi`.
    fn node_hash(&self, lo: u64, hi: u64) -> Hash256;

    /// The root hash of the whole tree.
    fn root_hash(&self) -> Hash256 {
        let (lo, hi) = self.span();
        self.node_hash(lo, hi)
    }
}

impl<S: BmtSource + ?Sized> BmtSource for &S {
    fn params(&self) -> BloomParams {
        (**self).params()
    }

    fn span(&self) -> (u64, u64) {
        (**self).span()
    }

    fn filter(&self, lo: u64, hi: u64) -> BloomFilter {
        (**self).filter(lo, hi)
    }

    fn node_hash(&self, lo: u64, hi: u64) -> Hash256 {
        (**self).node_hash(lo, hi)
    }
}
