//! The Bloom-filter-integrated Merkle Tree (paper §III-B, §IV-B1).
//!
//! A BMT is a perfect binary tree whose every node carries a Bloom filter
//! and a hash:
//!
//! * leaf: `hash = H(bf)` — paper Eq. 2, `l = 0` case;
//! * internal: `bf = left.bf | right.bf` (Eq. 3) and
//!   `hash = H(left.hash || right.hash || bf)` (Eq. 2, `l > 0` case).
//!
//! Binding each node's filter into its hash is what makes a BMT branch
//! unforgeable (paper §VI): a tampered filter changes the node hash and
//! therefore the root.
//!
//! This module provides four cooperating pieces:
//!
//! * [`Bmt`] — an eagerly materialised tree, convenient when filters are
//!   small (tests, examples, small segments);
//! * [`BmtSource`] — the abstraction the prover descends over, so large
//!   trees (4,096 leaves × 500 KB filters) can compute node filters on
//!   demand instead of holding gigabytes in memory;
//! * [`BmtBuilder`] — the incremental builder a chain uses to commit each
//!   block's BMT root in O(1) amortised filter merges per block;
//! * [`BmtProof`] — the merged, pruned-subtree inexistence proof of paper
//!   Fig. 11, with exact wire encoding and endpoint statistics.
//!
//! # Examples
//!
//! ```
//! use lvq_bloom::{BloomFilter, BloomParams};
//! use lvq_merkle::bmt::{self, Bmt, BmtSource};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = BloomParams::new(32, 2)?;
//! let leaves: Vec<BloomFilter> = (0..4u8)
//!     .map(|i| {
//!         let mut f = BloomFilter::new(params);
//!         f.insert(&[i]);
//!         f
//!     })
//!     .collect();
//! let tree = Bmt::build(1, leaves)?;
//!
//! // Prove that address `e_c` appears in none of the four sets.
//! let positions = BloomFilter::bit_positions(params, b"e_c");
//! let proof = bmt::prove(&tree, &positions)?;
//! let coverage = proof.verify(1, 4, &tree.root_hash(), params, &positions)?;
//! assert!(coverage.failed_leaves.is_empty());
//! # Ok(())
//! # }
//! ```

mod batch;
mod builder;
mod proof;
mod source;
mod tree;

pub use batch::{prove_multi, BmtBatchNode, BmtBatchProof, BmtBatchProofStats};
pub use builder::{merge_count, BmtBuilder, LeafCommit, SpanHash};
pub use proof::{prove, BmtCoverage, BmtProof, BmtProofNode, BmtProofStats};
pub use source::BmtSource;
pub use tree::Bmt;

use std::error::Error;
use std::fmt;

use lvq_bloom::BloomFilter;
use lvq_crypto::Hash256;

/// Errors produced while building BMTs or verifying BMT proofs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BmtError {
    /// A tree was built with zero leaves.
    EmptyTree,
    /// A tree's leaf count was not a power of two.
    ///
    /// The paper's merging rule (Table I) only ever merges dyadic runs,
    /// so BMTs are always perfect binary trees.
    LeafCountNotPowerOfTwo {
        /// The offending leaf count.
        count: u64,
    },
    /// Filters with mismatched parameters were combined in one tree.
    ParamsMismatch,
    /// A proof's recomputed root hash differed from the committed root.
    RootMismatch,
    /// A proof node claimed to be clean but the queried bit positions are
    /// all set in its filter.
    NotClean,
    /// A proof's shape is inconsistent with the expected tree geometry.
    MalformedProof {
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for BmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmtError::EmptyTree => f.write_str("bmt requires at least one leaf"),
            BmtError::LeafCountNotPowerOfTwo { count } => {
                write!(f, "bmt leaf count {count} is not a power of two")
            }
            BmtError::ParamsMismatch => f.write_str("bloom filter parameters differ within bmt"),
            BmtError::RootMismatch => f.write_str("bmt proof does not match committed root"),
            BmtError::NotClean => {
                f.write_str("bmt proof marks a node clean whose filter matches the query")
            }
            BmtError::MalformedProof { reason } => write!(f, "malformed bmt proof: {reason}"),
        }
    }
}

impl Error for BmtError {}

/// Leaf hash: `H(bf)` (paper Eq. 2, `l = 0`).
pub fn leaf_hash(filter: &BloomFilter) -> Hash256 {
    Hash256::hash(filter.as_bytes())
}

/// Internal node hash: `H(left || right || bf)` (paper Eq. 2, `l > 0`).
pub fn internal_hash(left: &Hash256, right: &Hash256, filter: &BloomFilter) -> Hash256 {
    Hash256::hash_parts(&[left.as_bytes(), right.as_bytes(), filter.as_bytes()])
}

pub(crate) fn is_power_of_two(n: u64) -> bool {
    n != 0 && n & (n - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_bloom::BloomParams;

    #[test]
    fn hash_binds_filter_contents() {
        let params = BloomParams::new(16, 2).unwrap();
        let empty = BloomFilter::new(params);
        let mut full = BloomFilter::new(params);
        full.insert(b"x");
        assert_ne!(leaf_hash(&empty), leaf_hash(&full));
        let l = Hash256::hash(b"l");
        let r = Hash256::hash(b"r");
        assert_ne!(internal_hash(&l, &r, &empty), internal_hash(&l, &r, &full));
        assert_ne!(internal_hash(&l, &r, &empty), internal_hash(&r, &l, &empty));
    }

    #[test]
    fn power_of_two_check() {
        for n in [1u64, 2, 4, 8, 4096] {
            assert!(is_power_of_two(n));
        }
        for n in [0u64, 3, 6, 12, 4095] {
            assert!(!is_power_of_two(n));
        }
    }
}
