//! The eagerly materialised [`Bmt`].

use lvq_bloom::{BloomFilter, BloomParams};
use lvq_crypto::Hash256;

use super::{internal_hash, is_power_of_two, leaf_hash, BmtError, BmtSource};

/// A fully materialised Bloom-filter-integrated Merkle Tree.
///
/// Every node's hash *and* filter are held in memory, which is the right
/// trade-off for tests, examples and small segments. Production-sized
/// trees (the 4,096 × 500 KB sweep of paper Fig. 13) should implement
/// [`BmtSource`] lazily instead — `lvq-chain` does.
///
/// # Examples
///
/// ```
/// use lvq_bloom::{BloomFilter, BloomParams};
/// use lvq_merkle::Bmt;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = BloomParams::new(16, 2)?;
/// let leaves = vec![BloomFilter::new(params); 8];
/// let tree = Bmt::build(1, leaves)?;
/// assert_eq!(tree.leaf_count(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Bmt {
    params: BloomParams,
    /// Id of the first leaf (block height in LVQ).
    first_leaf: u64,
    /// `levels[0]` = leaves; each entry is `(hash, filter)`.
    levels: Vec<Vec<(Hash256, BloomFilter)>>,
}

impl Bmt {
    /// Builds a tree whose leaves are the given filters, the first leaf
    /// having id `first_leaf`.
    ///
    /// # Errors
    ///
    /// Returns [`BmtError::EmptyTree`] for zero leaves,
    /// [`BmtError::LeafCountNotPowerOfTwo`] for non-dyadic counts, and
    /// [`BmtError::ParamsMismatch`] if the filters disagree on
    /// parameters.
    pub fn build(first_leaf: u64, leaves: Vec<BloomFilter>) -> Result<Self, BmtError> {
        if leaves.is_empty() {
            return Err(BmtError::EmptyTree);
        }
        if !is_power_of_two(leaves.len() as u64) {
            return Err(BmtError::LeafCountNotPowerOfTwo {
                count: leaves.len() as u64,
            });
        }
        let params = leaves[0].params();
        if leaves.iter().any(|f| f.params() != params) {
            return Err(BmtError::ParamsMismatch);
        }

        let leaf_level: Vec<(Hash256, BloomFilter)> =
            leaves.into_iter().map(|f| (leaf_hash(&f), f)).collect();
        let mut levels = vec![leaf_level];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len() / 2);
            for pair in prev.chunks_exact(2) {
                let (lh, lf) = &pair[0];
                let (rh, rf) = &pair[1];
                let filter = BloomFilter::union(lf, rf).expect("params checked");
                let hash = internal_hash(lh, rh, &filter);
                next.push((hash, filter));
            }
            levels.push(next);
        }
        Ok(Bmt {
            params,
            first_leaf,
            levels,
        })
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> u64 {
        self.levels[0].len() as u64
    }

    /// Id of the first leaf.
    pub fn first_leaf(&self) -> u64 {
        self.first_leaf
    }

    /// The root filter — the union of every leaf filter.
    pub fn root_filter(&self) -> &BloomFilter {
        &self.levels.last().expect("non-empty")[0].1
    }

    /// `(level, index)` coordinates of the node spanning `lo..=hi`,
    /// where level 0 is the leaf layer.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the span is not a dyadic sub-span of
    /// the tree; the public [`BmtSource`] contract forbids such calls.
    fn coords(&self, lo: u64, hi: u64) -> (usize, usize) {
        let width = hi - lo + 1;
        debug_assert!(is_power_of_two(width), "span width must be dyadic");
        debug_assert!(lo >= self.first_leaf && hi < self.first_leaf + self.leaf_count());
        let level = width.trailing_zeros() as usize;
        let index = ((lo - self.first_leaf) / width) as usize;
        debug_assert_eq!((lo - self.first_leaf) % width, 0, "span must be aligned");
        (level, index)
    }
}

impl BmtSource for Bmt {
    fn params(&self) -> BloomParams {
        self.params
    }

    fn span(&self) -> (u64, u64) {
        (self.first_leaf, self.first_leaf + self.leaf_count() - 1)
    }

    fn filter(&self, lo: u64, hi: u64) -> BloomFilter {
        let (level, index) = self.coords(lo, hi);
        self.levels[level][index].1.clone()
    }

    fn node_hash(&self, lo: u64, hi: u64) -> Hash256 {
        let (level, index) = self.coords(lo, hi);
        self.levels[level][index].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BloomParams {
        BloomParams::new(16, 2).unwrap()
    }

    fn leaf_with(items: &[&[u8]]) -> BloomFilter {
        let mut f = BloomFilter::new(params());
        for item in items {
            f.insert(item);
        }
        f
    }

    #[test]
    fn build_rejects_bad_shapes() {
        assert_eq!(Bmt::build(1, Vec::new()).unwrap_err(), BmtError::EmptyTree);
        assert_eq!(
            Bmt::build(1, vec![BloomFilter::new(params()); 3]).unwrap_err(),
            BmtError::LeafCountNotPowerOfTwo { count: 3 }
        );
        let other = BloomParams::new(17, 2).unwrap();
        assert_eq!(
            Bmt::build(1, vec![BloomFilter::new(params()), BloomFilter::new(other)]).unwrap_err(),
            BmtError::ParamsMismatch
        );
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let f = leaf_with(&[b"a"]);
        let t = Bmt::build(5, vec![f.clone()]).unwrap();
        assert_eq!(t.root_hash(), leaf_hash(&f));
        assert_eq!(t.span(), (5, 5));
    }

    #[test]
    fn root_filter_is_union_of_leaves() {
        // Paper Fig. 3: the root filter represents A ∪ B ∪ C ∪ D.
        let leaves = vec![
            leaf_with(&[b"a1", b"a2"]),
            leaf_with(&[b"b1"]),
            leaf_with(&[b"c1"]),
            leaf_with(&[b"d1", b"d2"]),
        ];
        let t = Bmt::build(1, leaves).unwrap();
        for item in [&b"a1"[..], b"a2", b"b1", b"c1", b"d1", b"d2"] {
            assert!(!t.root_filter().check(item).is_clean());
        }
    }

    #[test]
    fn hashes_follow_equation_two() {
        let l0 = leaf_with(&[b"x"]);
        let l1 = leaf_with(&[b"y"]);
        let t = Bmt::build(1, vec![l0.clone(), l1.clone()]).unwrap();
        let union = BloomFilter::union(&l0, &l1).unwrap();
        let expected = internal_hash(&leaf_hash(&l0), &leaf_hash(&l1), &union);
        assert_eq!(t.root_hash(), expected);
    }

    #[test]
    fn source_coordinates_line_up() {
        let leaves: Vec<BloomFilter> = (0..8u8).map(|i| leaf_with(&[&[i]])).collect();
        let t = Bmt::build(10, leaves.clone()).unwrap();
        // Leaf spans.
        for (i, leaf) in leaves.iter().enumerate() {
            let id = 10 + i as u64;
            assert_eq!(t.filter(id, id), *leaf);
            assert_eq!(t.node_hash(id, id), leaf_hash(leaf));
        }
        // An internal span's filter is the union of its leaves.
        let mid = t.filter(10, 13);
        let mut expect = leaves[0].clone();
        for leaf in &leaves[1..4] {
            expect.union_with(leaf).unwrap();
        }
        assert_eq!(mid, expect);
        // Child filters are subsets of the root filter.
        assert!(mid.is_subset_of(t.root_filter()));
    }

    #[test]
    fn tampering_any_leaf_changes_root() {
        let leaves: Vec<BloomFilter> = (0..4u8).map(|i| leaf_with(&[&[i]])).collect();
        let original = Bmt::build(1, leaves.clone()).unwrap().root_hash();
        for victim in 0..4 {
            let mut mutated = leaves.clone();
            mutated[victim].insert(b"extra");
            let root = Bmt::build(1, mutated).unwrap().root_hash();
            assert_ne!(root, original, "victim={victim}");
        }
    }
}
