//! Merged BMT branch proofs (paper §III-B2, Fig. 4/5/11).

use lvq_bloom::{BloomFilter, BloomParams};
use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::Hash256;

use super::{internal_hash, is_power_of_two, leaf_hash, BmtError, BmtSource};

/// Maximum tree depth accepted when decoding untrusted proofs
/// (2^40 leaves is far beyond any chain length here).
const MAX_DEPTH: u32 = 40;

/// One node of a pruned-subtree BMT proof.
///
/// The proof is the *merged* form of paper Fig. 11: instead of one branch
/// per endpoint, a single pruned copy of the tree is sent whose frontier
/// consists of endpoint nodes. Everything above the frontier is
/// recomputed by the verifier from Eq. 2/3, so interior hashes and
/// filters cost nothing on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BmtProofNode {
    /// A leaf endpoint whose filter check is clean: the queried item is
    /// in none of the blocks this leaf covers.
    CleanLeaf {
        /// The leaf's filter.
        filter: BloomFilter,
    },
    /// An internal endpoint whose filter check is clean. Its two child
    /// hashes must be supplied (paper Fig. 4a) because the verifier
    /// cannot recompute them from a pruned subtree.
    CleanNode {
        /// The node's filter (OR of everything below it).
        filter: BloomFilter,
        /// Hash of the left child.
        left_hash: Hash256,
        /// Hash of the right child.
        right_hash: Hash256,
    },
    /// A leaf whose filter check failed — the paper's *existent* or *FPM*
    /// case. The block this leaf covers needs a block-level proof
    /// (SMT/MT branches or an integral block), supplied outside the BMT
    /// proof.
    FailedLeaf {
        /// The leaf's filter.
        filter: BloomFilter,
    },
    /// An expanded internal node: both children are present and the
    /// verifier recomputes this node's filter and hash from them.
    Branch {
        /// Left child subtree.
        left: Box<BmtProofNode>,
        /// Right child subtree.
        right: Box<BmtProofNode>,
    },
}

/// A merged inexistence proof for one BMT (one segment in LVQ).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BmtProof {
    root: BmtProofNode,
}

/// What a verified BMT proof establishes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BmtCoverage {
    /// Inclusive leaf-id ranges proven *not* to contain the item.
    pub clean_ranges: Vec<(u64, u64)>,
    /// Leaf ids whose filters matched; each needs a block-level proof.
    pub failed_leaves: Vec<u64>,
}

impl BmtCoverage {
    /// True if `clean_ranges` and `failed_leaves` jointly cover exactly
    /// `lo..=hi` — always the case for a proof that verified.
    pub fn covers(&self, lo: u64, hi: u64) -> bool {
        let mut edges: Vec<(u64, u64)> = self.clean_ranges.clone();
        edges.extend(self.failed_leaves.iter().map(|&l| (l, l)));
        edges.sort_unstable();
        let mut next = lo;
        for (a, b) in edges {
            if a != next || b < a {
                return false;
            }
            next = b + 1;
        }
        next == hi + 1
    }
}

/// Size and shape statistics of a proof (drives paper Figs. 14–16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BmtProofStats {
    /// Clean leaf endpoints.
    pub clean_leaves: u64,
    /// Clean internal endpoints.
    pub clean_nodes: u64,
    /// Failed leaves (blocks needing block-level proofs).
    pub failed_leaves: u64,
    /// Expanded internal nodes.
    pub branch_nodes: u64,
    /// Bytes of Bloom filter material in the encoding.
    pub filter_bytes: u64,
    /// Bytes of sibling/child hashes in the encoding.
    pub hash_bytes: u64,
}

impl BmtProofStats {
    /// Total endpoint nodes — the quantity paper Figs. 15/16 plot.
    pub fn endpoint_count(&self) -> u64 {
        self.clean_leaves + self.clean_nodes + self.failed_leaves
    }

    /// Number of Bloom filters carried by the proof.
    pub fn filter_count(&self) -> u64 {
        self.endpoint_count()
    }

    /// Accumulates another proof's statistics (for multi-segment
    /// queries).
    pub fn merge(&mut self, other: &BmtProofStats) {
        self.clean_leaves += other.clean_leaves;
        self.clean_nodes += other.clean_nodes;
        self.failed_leaves += other.failed_leaves;
        self.branch_nodes += other.branch_nodes;
        self.filter_bytes += other.filter_bytes;
        self.hash_bytes += other.hash_bytes;
    }
}

impl BmtProof {
    /// Wraps a hand-built proof tree (tests and adversarial simulations).
    pub fn from_root(root: BmtProofNode) -> Self {
        BmtProof { root }
    }

    /// The proof's root node.
    pub fn root(&self) -> &BmtProofNode {
        &self.root
    }

    /// Verifies the proof against a committed BMT.
    ///
    /// * `first_leaf`/`leaf_count` — the tree geometry the verifier
    ///   derived from its own headers (segment math, paper §V);
    /// * `expected_root` — the BMT root committed in the block header;
    /// * `params` — the chain's Bloom parameters;
    /// * `positions` — the queried item's checked bit positions.
    ///
    /// On success, returns which leaves are proven clean and which need
    /// block-level resolution.
    ///
    /// # Errors
    ///
    /// Returns a [`BmtError`] if the proof shape, cleanliness claims,
    /// parameters, or recomputed root hash are wrong.
    pub fn verify(
        &self,
        first_leaf: u64,
        leaf_count: u64,
        expected_root: &Hash256,
        params: BloomParams,
        positions: &[u64],
    ) -> Result<BmtCoverage, BmtError> {
        if !is_power_of_two(leaf_count) {
            return Err(BmtError::LeafCountNotPowerOfTwo { count: leaf_count });
        }
        let mut coverage = BmtCoverage::default();
        let (hash, _filter) = Self::verify_node(
            &self.root,
            first_leaf,
            first_leaf + leaf_count - 1,
            params,
            positions,
            &mut coverage,
        )?;
        if hash != *expected_root {
            return Err(BmtError::RootMismatch);
        }
        Ok(coverage)
    }

    fn verify_node(
        node: &BmtProofNode,
        lo: u64,
        hi: u64,
        params: BloomParams,
        positions: &[u64],
        coverage: &mut BmtCoverage,
    ) -> Result<(Hash256, BloomFilter), BmtError> {
        match node {
            BmtProofNode::CleanLeaf { filter } => {
                if lo != hi {
                    return Err(BmtError::MalformedProof {
                        reason: "clean leaf above leaf level",
                    });
                }
                Self::check_filter(filter, params)?;
                if !filter.check_positions(positions).is_clean() {
                    return Err(BmtError::NotClean);
                }
                coverage.clean_ranges.push((lo, hi));
                Ok((leaf_hash(filter), filter.clone()))
            }
            BmtProofNode::CleanNode {
                filter,
                left_hash,
                right_hash,
            } => {
                if lo == hi {
                    return Err(BmtError::MalformedProof {
                        reason: "internal clean node at leaf level",
                    });
                }
                Self::check_filter(filter, params)?;
                if !filter.check_positions(positions).is_clean() {
                    return Err(BmtError::NotClean);
                }
                coverage.clean_ranges.push((lo, hi));
                Ok((internal_hash(left_hash, right_hash, filter), filter.clone()))
            }
            BmtProofNode::FailedLeaf { filter } => {
                if lo != hi {
                    return Err(BmtError::MalformedProof {
                        reason: "failed leaf above leaf level",
                    });
                }
                Self::check_filter(filter, params)?;
                coverage.failed_leaves.push(lo);
                Ok((leaf_hash(filter), filter.clone()))
            }
            BmtProofNode::Branch { left, right } => {
                if lo == hi {
                    return Err(BmtError::MalformedProof {
                        reason: "branch node at leaf level",
                    });
                }
                let mid = lo + (hi - lo) / 2;
                let (lh, lf) = Self::verify_node(left, lo, mid, params, positions, coverage)?;
                let (rh, rf) = Self::verify_node(right, mid + 1, hi, params, positions, coverage)?;
                // Paper Eq. 3: the parent filter is the OR of its children.
                let filter = BloomFilter::union(&lf, &rf).map_err(|_| BmtError::ParamsMismatch)?;
                Ok((internal_hash(&lh, &rh, &filter), filter))
            }
        }
    }

    fn check_filter(filter: &BloomFilter, params: BloomParams) -> Result<(), BmtError> {
        if filter.params() != params {
            return Err(BmtError::ParamsMismatch);
        }
        Ok(())
    }

    /// Computes the proof's size and shape statistics.
    pub fn stats(&self) -> BmtProofStats {
        fn walk(node: &BmtProofNode, stats: &mut BmtProofStats) {
            match node {
                BmtProofNode::CleanLeaf { filter } => {
                    stats.clean_leaves += 1;
                    stats.filter_bytes += filter.encoded_len() as u64;
                }
                BmtProofNode::CleanNode { filter, .. } => {
                    stats.clean_nodes += 1;
                    stats.filter_bytes += filter.encoded_len() as u64;
                    stats.hash_bytes += 64;
                }
                BmtProofNode::FailedLeaf { filter } => {
                    stats.failed_leaves += 1;
                    stats.filter_bytes += filter.encoded_len() as u64;
                }
                BmtProofNode::Branch { left, right } => {
                    stats.branch_nodes += 1;
                    walk(left, stats);
                    walk(right, stats);
                }
            }
        }
        let mut stats = BmtProofStats::default();
        walk(&self.root, &mut stats);
        stats
    }
}

/// Generates the merged inexistence proof for `positions` over `source`.
///
/// This is the full node's descent of paper §III-B2: starting at the
/// root, a node whose filter check is clean becomes an endpoint; a failed
/// internal node is expanded; a failed leaf is recorded for block-level
/// resolution.
///
/// # Errors
///
/// Returns [`BmtError::LeafCountNotPowerOfTwo`] if the source span is
/// not dyadic.
///
/// # Examples
///
/// See the [module documentation](crate::bmt).
pub fn prove<S: BmtSource + ?Sized>(source: &S, positions: &[u64]) -> Result<BmtProof, BmtError> {
    let (lo, hi) = source.span();
    let count = hi - lo + 1;
    if !is_power_of_two(count) {
        return Err(BmtError::LeafCountNotPowerOfTwo { count });
    }

    fn descend<S: BmtSource + ?Sized>(
        source: &S,
        lo: u64,
        hi: u64,
        positions: &[u64],
    ) -> BmtProofNode {
        let filter = source.filter(lo, hi);
        let clean = filter.check_positions(positions).is_clean();
        match (clean, lo == hi) {
            (true, true) => BmtProofNode::CleanLeaf { filter },
            (true, false) => {
                let mid = lo + (hi - lo) / 2;
                BmtProofNode::CleanNode {
                    filter,
                    left_hash: source.node_hash(lo, mid),
                    right_hash: source.node_hash(mid + 1, hi),
                }
            }
            (false, true) => BmtProofNode::FailedLeaf { filter },
            (false, false) => {
                let mid = lo + (hi - lo) / 2;
                BmtProofNode::Branch {
                    left: Box::new(descend(source, lo, mid, positions)),
                    right: Box::new(descend(source, mid + 1, hi, positions)),
                }
            }
        }
    }

    Ok(BmtProof {
        root: descend(source, lo, hi, positions),
    })
}

const TAG_CLEAN_LEAF: u8 = 0;
const TAG_CLEAN_NODE: u8 = 1;
const TAG_FAILED_LEAF: u8 = 2;
const TAG_BRANCH: u8 = 3;

impl Encodable for BmtProofNode {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            BmtProofNode::CleanLeaf { filter } => {
                out.push(TAG_CLEAN_LEAF);
                filter.encode_into(out);
            }
            BmtProofNode::CleanNode {
                filter,
                left_hash,
                right_hash,
            } => {
                out.push(TAG_CLEAN_NODE);
                filter.encode_into(out);
                left_hash.encode_into(out);
                right_hash.encode_into(out);
            }
            BmtProofNode::FailedLeaf { filter } => {
                out.push(TAG_FAILED_LEAF);
                filter.encode_into(out);
            }
            BmtProofNode::Branch { left, right } => {
                out.push(TAG_BRANCH);
                left.encode_into(out);
                right.encode_into(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            BmtProofNode::CleanLeaf { filter } | BmtProofNode::FailedLeaf { filter } => {
                filter.encoded_len()
            }
            BmtProofNode::CleanNode { filter, .. } => filter.encoded_len() + 64,
            BmtProofNode::Branch { left, right } => left.encoded_len() + right.encoded_len(),
        }
    }
}

impl BmtProofNode {
    fn decode_bounded(reader: &mut Reader<'_>, depth: u32) -> Result<Self, DecodeError> {
        if depth > MAX_DEPTH {
            return Err(DecodeError::InvalidValue {
                what: "bmt proof depth",
                found: u64::from(depth),
            });
        }
        Ok(match reader.read_u8()? {
            TAG_CLEAN_LEAF => BmtProofNode::CleanLeaf {
                filter: BloomFilter::decode_from(reader)?,
            },
            TAG_CLEAN_NODE => BmtProofNode::CleanNode {
                filter: BloomFilter::decode_from(reader)?,
                left_hash: Hash256::decode_from(reader)?,
                right_hash: Hash256::decode_from(reader)?,
            },
            TAG_FAILED_LEAF => BmtProofNode::FailedLeaf {
                filter: BloomFilter::decode_from(reader)?,
            },
            TAG_BRANCH => BmtProofNode::Branch {
                left: Box::new(Self::decode_bounded(reader, depth + 1)?),
                right: Box::new(Self::decode_bounded(reader, depth + 1)?),
            },
            other => {
                return Err(DecodeError::InvalidValue {
                    what: "bmt proof node tag",
                    found: u64::from(other),
                })
            }
        })
    }
}

impl Decodable for BmtProofNode {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Self::decode_bounded(reader, 0)
    }
}

impl Encodable for BmtProof {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.root.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.root.encoded_len()
    }
}

impl Decodable for BmtProof {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BmtProof {
            root: BmtProofNode::decode_from(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::Bmt;
    use super::*;
    use lvq_codec::decode_exact;

    fn params() -> BloomParams {
        BloomParams::new(32, 2).unwrap()
    }

    /// Builds the paper's Fig. 3 tree: four leaf sets A–D.
    fn fig3_tree() -> Bmt {
        let sets: [&[&[u8]]; 4] = [&[b"a1", b"a2"], &[b"b1"], &[b"c1", b"c2", b"c3"], &[b"d1"]];
        let leaves = sets
            .iter()
            .map(|set| {
                let mut f = BloomFilter::new(params());
                for item in *set {
                    f.insert(item);
                }
                f
            })
            .collect();
        Bmt::build(1, leaves).unwrap()
    }

    fn positions_of(item: &[u8]) -> Vec<u64> {
        BloomFilter::bit_positions(params(), item)
    }

    #[test]
    fn absent_item_verifies_with_full_coverage() {
        let tree = fig3_tree();
        let positions = positions_of(b"e_c-not-there");
        let proof = prove(&tree, &positions).unwrap();
        let coverage = proof
            .verify(1, 4, &tree.root_hash(), params(), &positions)
            .unwrap();
        // Whatever mix of clean endpoints and (unlucky) FPM leaves the
        // filters produce, the coverage must tile the whole span.
        assert!(coverage.covers(1, 4));
    }

    #[test]
    fn present_item_surfaces_failed_leaf() {
        let tree = fig3_tree();
        let positions = positions_of(b"c2");
        let proof = prove(&tree, &positions).unwrap();
        let coverage = proof
            .verify(1, 4, &tree.root_hash(), params(), &positions)
            .unwrap();
        assert!(coverage.failed_leaves.contains(&3), "leaf 3 holds c2");
        assert!(coverage.covers(1, 4));
    }

    #[test]
    fn stats_count_endpoints() {
        let tree = fig3_tree();
        let positions = positions_of(b"c2");
        let proof = prove(&tree, &positions).unwrap();
        let stats = proof.stats();
        assert_eq!(
            stats.endpoint_count(),
            stats.clean_leaves + stats.clean_nodes + stats.failed_leaves
        );
        assert!(stats.endpoint_count() >= 1);
        assert!(stats.filter_bytes > 0);
        // Encoded size accounting is consistent.
        assert_eq!(proof.encode().len(), proof.encoded_len());
    }

    #[test]
    fn wrong_root_rejected() {
        let tree = fig3_tree();
        let positions = positions_of(b"nope");
        let proof = prove(&tree, &positions).unwrap();
        let bogus = Hash256::hash(b"bogus root");
        assert_eq!(
            proof
                .verify(1, 4, &bogus, params(), &positions)
                .unwrap_err(),
            BmtError::RootMismatch
        );
    }

    #[test]
    fn tampered_filter_rejected() {
        let tree = fig3_tree();
        let positions = positions_of(b"nope");
        let proof = prove(&tree, &positions).unwrap();

        fn tamper(node: &BmtProofNode) -> BmtProofNode {
            match node {
                BmtProofNode::CleanLeaf { filter } => {
                    let mut f = filter.clone();
                    f.insert(b"tampered");
                    BmtProofNode::CleanLeaf { filter: f }
                }
                BmtProofNode::CleanNode {
                    filter,
                    left_hash,
                    right_hash,
                } => {
                    let mut f = filter.clone();
                    f.insert(b"tampered");
                    BmtProofNode::CleanNode {
                        filter: f,
                        left_hash: *left_hash,
                        right_hash: *right_hash,
                    }
                }
                BmtProofNode::FailedLeaf { filter } => BmtProofNode::FailedLeaf {
                    filter: filter.clone(),
                },
                BmtProofNode::Branch { left, right } => BmtProofNode::Branch {
                    left: Box::new(tamper(left)),
                    right: right.clone(),
                },
            }
        }

        let forged = BmtProof::from_root(tamper(proof.root()));
        let err = forged
            .verify(1, 4, &tree.root_hash(), params(), &positions)
            .unwrap_err();
        // Either the tampered filter breaks the hash chain or it now
        // matches the query and fails the cleanliness check.
        assert!(matches!(err, BmtError::RootMismatch | BmtError::NotClean));
    }

    #[test]
    fn lying_about_cleanliness_rejected() {
        // A prover claims "clean" for an item that is actually present:
        // the filter it must present (bound by the root hash) matches the
        // query, so the verifier sees through it.
        let tree = fig3_tree();
        let positions = positions_of(b"b1"); // in leaf 2
        let honest = prove(&tree, &positions).unwrap();
        // Replace the failed leaf for block 2 with a clean claim carrying
        // the true filter.
        fn forge(node: &BmtProofNode) -> BmtProofNode {
            match node {
                BmtProofNode::FailedLeaf { filter } => BmtProofNode::CleanLeaf {
                    filter: filter.clone(),
                },
                BmtProofNode::Branch { left, right } => BmtProofNode::Branch {
                    left: Box::new(forge(left)),
                    right: Box::new(forge(right)),
                },
                other => other.clone(),
            }
        }
        let forged = BmtProof::from_root(forge(honest.root()));
        let err = forged
            .verify(1, 4, &tree.root_hash(), params(), &positions)
            .unwrap_err();
        assert_eq!(err, BmtError::NotClean);
    }

    #[test]
    fn malformed_shapes_rejected() {
        let tree = fig3_tree();
        let positions = positions_of(b"nope");
        let leaf_filter = tree.filter(1, 1);

        // Branch below leaf level.
        let too_deep = BmtProof::from_root(BmtProofNode::Branch {
            left: Box::new(BmtProofNode::CleanLeaf {
                filter: leaf_filter.clone(),
            }),
            right: Box::new(BmtProofNode::CleanLeaf {
                filter: leaf_filter.clone(),
            }),
        });
        assert!(matches!(
            too_deep
                .verify(1, 1, &tree.node_hash(1, 1), params(), &positions)
                .unwrap_err(),
            BmtError::MalformedProof { .. }
        ));

        // Clean leaf standing in for the whole (multi-leaf) tree.
        let too_shallow = BmtProof::from_root(BmtProofNode::CleanLeaf {
            filter: tree.root_filter().clone(),
        });
        assert!(matches!(
            too_shallow
                .verify(1, 4, &tree.root_hash(), params(), &positions)
                .unwrap_err(),
            BmtError::MalformedProof { .. } | BmtError::NotClean | BmtError::RootMismatch
        ));

        // Non-dyadic leaf count.
        let proof = prove(&tree, &positions).unwrap();
        assert!(matches!(
            proof
                .verify(1, 3, &tree.root_hash(), params(), &positions)
                .unwrap_err(),
            BmtError::LeafCountNotPowerOfTwo { count: 3 }
        ));
    }

    #[test]
    fn wrong_params_rejected() {
        let tree = fig3_tree();
        let positions = positions_of(b"nope");
        let proof = prove(&tree, &positions).unwrap();
        let other = BloomParams::new(33, 2).unwrap();
        assert_eq!(
            proof
                .verify(1, 4, &tree.root_hash(), other, &positions)
                .unwrap_err(),
            BmtError::ParamsMismatch
        );
    }

    #[test]
    fn single_leaf_tree_proof() {
        let mut f = BloomFilter::new(params());
        f.insert(b"only");
        let tree = Bmt::build(7, vec![f]).unwrap();
        let positions = positions_of(b"absent");
        let proof = prove(&tree, &positions).unwrap();
        let coverage = proof
            .verify(7, 1, &tree.root_hash(), params(), &positions)
            .unwrap();
        assert!(coverage.covers(7, 7));
    }

    #[test]
    fn codec_roundtrip() {
        let tree = fig3_tree();
        for probe in [&b"c2"[..], b"absent", b"b1"] {
            let positions = positions_of(probe);
            let proof = prove(&tree, &positions).unwrap();
            let bytes = proof.encode();
            assert_eq!(bytes.len(), proof.encoded_len());
            let decoded = decode_exact::<BmtProof>(&bytes).unwrap();
            assert_eq!(decoded, proof);
        }
    }

    #[test]
    fn decode_rejects_bad_tag_and_depth_bomb() {
        let mut bytes = vec![9u8];
        assert!(decode_exact::<BmtProof>(&bytes).is_err());
        // A chain of Branch tags deeper than MAX_DEPTH.
        bytes = vec![TAG_BRANCH; 64];
        assert!(decode_exact::<BmtProof>(&bytes).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random tree contents: `leaf_count` leaves, each holding a
        /// random set of items.
        fn tree_strategy() -> impl Strategy<Value = (Bmt, Vec<Vec<u8>>)> {
            let leaf_exp = 0u32..5; // 1..16 leaves
            leaf_exp.prop_flat_map(|exp| {
                let leaves = 1usize << exp;
                proptest::collection::vec(
                    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..6), 0..8),
                    leaves..=leaves,
                )
                .prop_map(|sets| {
                    let mut all_items = Vec::new();
                    let filters = sets
                        .iter()
                        .map(|set| {
                            let mut f = BloomFilter::new(params());
                            for item in set {
                                f.insert(item);
                                all_items.push(item.clone());
                            }
                            f
                        })
                        .collect();
                    (Bmt::build(1, filters).unwrap(), all_items)
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Honest prove → verify always succeeds, tiles the span,
            /// and never marks a present item's leaf clean.
            #[test]
            fn prove_verify_roundtrip((tree, items) in tree_strategy(), probe: Vec<u8>) {
                prop_assume!(!probe.is_empty());
                let positions = BloomFilter::bit_positions(params(), &probe);
                let proof = prove(&tree, &positions).unwrap();
                let n = tree.leaf_count();
                let coverage = proof
                    .verify(1, n, &tree.root_hash(), params(), &positions)
                    .unwrap();
                prop_assert!(coverage.covers(1, n));
                // Soundness of the clean claim: if the probe was
                // actually inserted somewhere, its leaf is never inside
                // a clean range.
                if items.contains(&probe) {
                    for (idx, _) in (1..=n).enumerate() {
                        let leaf = idx as u64 + 1;
                        let clean = coverage
                            .clean_ranges
                            .iter()
                            .any(|&(a, b)| a <= leaf && leaf <= b);
                        if !tree.filter(leaf, leaf).check_positions(&positions).is_clean() {
                            prop_assert!(!clean);
                        }
                    }
                }
                // Wire stability.
                let bytes = proof.encode();
                prop_assert_eq!(bytes.len(), proof.encoded_len());
                prop_assert_eq!(&decode_exact::<BmtProof>(&bytes).unwrap(), &proof);
            }

            /// A proof never verifies against the root of a different
            /// tree (unless the trees are identical).
            #[test]
            fn no_cross_tree_verification(
                (tree_a, _) in tree_strategy(),
                (tree_b, _) in tree_strategy(),
                probe: Vec<u8>,
            ) {
                prop_assume!(tree_a.leaf_count() == tree_b.leaf_count());
                prop_assume!(tree_a.root_hash() != tree_b.root_hash());
                let positions = BloomFilter::bit_positions(params(), &probe);
                let proof = prove(&tree_a, &positions).unwrap();
                prop_assert!(proof
                    .verify(1, tree_b.leaf_count(), &tree_b.root_hash(), params(), &positions)
                    .is_err());
            }

            /// Decoding arbitrary bytes never panics.
            #[test]
            fn decoder_never_panics(bytes: Vec<u8>) {
                let _ = decode_exact::<BmtProof>(&bytes);
            }
        }
    }

    #[test]
    fn coverage_covers_detects_gaps() {
        let mut c = BmtCoverage::default();
        c.clean_ranges.push((1, 2));
        c.failed_leaves.push(4);
        assert!(!c.covers(1, 4)); // 3 missing
        c.clean_ranges.push((3, 3));
        assert!(c.covers(1, 4));
        assert!(!c.covers(1, 5));
        // Overlap is also rejected.
        let mut o = BmtCoverage::default();
        o.clean_ranges.push((1, 2));
        o.clean_ranges.push((2, 4));
        assert!(!o.covers(1, 4));
    }
}
