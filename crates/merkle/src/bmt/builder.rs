//! Incremental per-block BMT construction (paper §IV-B1, Algorithm 1).

use lvq_bloom::{BloomFilter, BloomParams};
use lvq_crypto::Hash256;

use super::{internal_hash, is_power_of_two, leaf_hash, BmtError};

/// The hash of one finalised dyadic span of leaves.
///
/// Spans are inclusive leaf-id ranges; in LVQ leaf ids are block heights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHash {
    /// First leaf of the span.
    pub lo: u64,
    /// Last leaf of the span.
    pub hi: u64,
    /// The BMT node hash of the span.
    pub hash: Hash256,
}

/// What one pushed leaf (block) commits.
#[derive(Debug, Clone)]
pub struct LeafCommit {
    /// Id (block height) of the pushed leaf.
    pub leaf: u64,
    /// The BMT root this block stores in its header: the root of the tree
    /// merging blocks `merged_lo ..= leaf` (paper Table I).
    pub root: Hash256,
    /// First block merged into this root.
    pub merged_lo: u64,
    /// Every dyadic span finalised by this leaf, smallest first. The
    /// chain stores these so a lazy [`super::BmtSource`] can serve
    /// `node_hash` for any span without recomputing filters.
    pub new_spans: Vec<SpanHash>,
}

#[derive(Debug, Clone)]
struct StackEntry {
    lo: u64,
    hi: u64,
    hash: Hash256,
    filter: BloomFilter,
}

/// Builds each block's BMT root incrementally while the chain grows.
///
/// The paper's merging rule (Algorithm 1 as corrected in DESIGN.md —
/// the published pseudocode contradicts its own Table I) says block at
/// in-segment position `l` merges the last `2^i` blocks where `2^i` is
/// the largest power of two dividing `l` (`l = M` at segment ends). That
/// is exactly the collapse rule of a binary carry counter: push a
/// one-leaf entry, then merge equal-width neighbours while possible. The
/// stack top after pushing position `l` spans precisely the run block
/// `l` must merge.
///
/// Memory: at most `log2(M) + 1` filters live at any time, regardless of
/// filter size.
///
/// # Examples
///
/// ```
/// use lvq_bloom::{BloomFilter, BloomParams};
/// use lvq_merkle::BmtBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = BloomParams::new(16, 2)?;
/// let mut builder = BmtBuilder::new(params, 4, 1)?; // M = 4, heights from 1
/// let commits: Vec<_> = (0..4)
///     .map(|_| builder.push_leaf(BloomFilter::new(params)).unwrap())
///     .collect();
/// // Paper Table I: heights 1,2,3,4 merge 1, 2, 1, and 4 blocks.
/// assert_eq!(commits[0].merged_lo, 1);
/// assert_eq!(commits[1].merged_lo, 1);
/// assert_eq!(commits[2].merged_lo, 3);
/// assert_eq!(commits[3].merged_lo, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BmtBuilder {
    params: BloomParams,
    segment_len: u64,
    first_leaf: u64,
    next: u64,
    stack: Vec<StackEntry>,
}

impl BmtBuilder {
    /// Creates a builder for segments of `segment_len` (the paper's `M`)
    /// whose first leaf has id `first_leaf`.
    ///
    /// # Errors
    ///
    /// Returns [`BmtError::LeafCountNotPowerOfTwo`] if `segment_len` is
    /// not a power of two (zero included).
    pub fn new(params: BloomParams, segment_len: u64, first_leaf: u64) -> Result<Self, BmtError> {
        if !is_power_of_two(segment_len) {
            return Err(BmtError::LeafCountNotPowerOfTwo { count: segment_len });
        }
        Ok(BmtBuilder {
            params,
            segment_len,
            first_leaf,
            next: first_leaf,
            stack: Vec::new(),
        })
    }

    /// Reconstructs a builder mid-segment, e.g. when a node restarts or
    /// a finished [`lvq chain`](crate) is extended.
    ///
    /// `stack` must be the partial segment's dyadic decomposition in
    /// push order: spans of strictly decreasing width, contiguous,
    /// ending at `next_leaf - 1` — exactly what
    /// [`BmtBuilder::push_leaf`] would have left behind. Each entry is
    /// `(lo, hi, hash, filter)`.
    ///
    /// # Errors
    ///
    /// Returns [`BmtError::LeafCountNotPowerOfTwo`] for a bad
    /// `segment_len`, [`BmtError::ParamsMismatch`] for foreign filters,
    /// and [`BmtError::MalformedProof`] if the stack does not describe
    /// a valid partial segment.
    pub fn resume(
        params: BloomParams,
        segment_len: u64,
        first_leaf: u64,
        next_leaf: u64,
        stack: Vec<(u64, u64, Hash256, BloomFilter)>,
    ) -> Result<Self, BmtError> {
        let mut builder = BmtBuilder::new(params, segment_len, first_leaf)?;
        builder.next = next_leaf;

        let mut expected_next = next_leaf;
        // Iterating newest-to-oldest, spans must be contiguous and
        // strictly widening (the stack itself is strictly narrowing).
        let mut prev_width = 0u64;
        for (lo, hi, hash, filter) in stack.into_iter().rev() {
            if filter.params() != params {
                return Err(BmtError::ParamsMismatch);
            }
            let width = hi
                .checked_sub(lo)
                .map(|w| w + 1)
                .filter(|w| is_power_of_two(*w))
                .ok_or(BmtError::MalformedProof {
                    reason: "stack span is not dyadic",
                })?;
            if hi + 1 != expected_next || width <= prev_width || width > segment_len {
                return Err(BmtError::MalformedProof {
                    reason: "stack spans are not a contiguous decreasing decomposition",
                });
            }
            expected_next = lo;
            prev_width = width;
            builder.stack.insert(
                0,
                StackEntry {
                    lo,
                    hi,
                    hash,
                    filter,
                },
            );
        }
        // The stack must start a segment boundary away from first_leaf.
        let consumed = expected_next - first_leaf;
        if !consumed.is_multiple_of(segment_len) {
            return Err(BmtError::MalformedProof {
                reason: "stack does not start at a segment boundary",
            });
        }
        Ok(builder)
    }

    /// The segment length `M`.
    pub fn segment_len(&self) -> u64 {
        self.segment_len
    }

    /// Id the next pushed leaf will get.
    pub fn next_leaf(&self) -> u64 {
        self.next
    }

    /// Pushes the Bloom filter of the next block and returns what that
    /// block commits.
    ///
    /// # Errors
    ///
    /// Returns [`BmtError::ParamsMismatch`] if `filter` has different
    /// parameters than the builder.
    pub fn push_leaf(&mut self, filter: BloomFilter) -> Result<LeafCommit, BmtError> {
        if filter.params() != self.params {
            return Err(BmtError::ParamsMismatch);
        }
        let leaf = self.next;
        self.next += 1;

        let mut new_spans = Vec::new();
        let hash = leaf_hash(&filter);
        new_spans.push(SpanHash {
            lo: leaf,
            hi: leaf,
            hash,
        });
        self.stack.push(StackEntry {
            lo: leaf,
            hi: leaf,
            hash,
            filter,
        });

        // Binary-carry collapse: merge equal-width neighbours.
        while self.stack.len() >= 2 {
            let a = &self.stack[self.stack.len() - 2];
            let b = &self.stack[self.stack.len() - 1];
            if a.hi - a.lo != b.hi - b.lo {
                break;
            }
            let right = self.stack.pop().expect("len checked");
            let mut left = self.stack.pop().expect("len checked");
            left.filter
                .union_with(&right.filter)
                .expect("params checked on push");
            let merged = StackEntry {
                lo: left.lo,
                hi: right.hi,
                hash: internal_hash(&left.hash, &right.hash, &left.filter),
                filter: left.filter,
            };
            new_spans.push(SpanHash {
                lo: merged.lo,
                hi: merged.hi,
                hash: merged.hash,
            });
            self.stack.push(merged);
        }

        let top = self.stack.last().expect("just pushed");
        let commit = LeafCommit {
            leaf,
            root: top.hash,
            merged_lo: top.lo,
            new_spans,
        };

        // Segment boundary: the stack has collapsed to one entry spanning
        // the whole segment; start the next segment fresh.
        let position = leaf - self.first_leaf + 1;
        if position.is_multiple_of(self.segment_len) {
            debug_assert_eq!(self.stack.len(), 1);
            debug_assert_eq!(top.hi - top.lo + 1, self.segment_len);
            self.stack.clear();
        }

        Ok(commit)
    }
}

/// Number of trailing blocks the block at in-segment position `l`
/// (1-based, `l = M` for the last block of a segment) merges: the largest
/// power of two dividing `l`.
///
/// This reproduces paper Table I; see DESIGN.md for the off-by-one in the
/// paper's pseudocode.
///
/// # Panics
///
/// Panics if `position` is zero.
///
/// # Examples
///
/// ```
/// use lvq_merkle::bmt::merge_count;
///
/// // Paper Table I (M >= 8).
/// let counts: Vec<u64> = (1..=8).map(merge_count).collect();
/// assert_eq!(counts, [1, 2, 1, 4, 1, 2, 1, 8]);
/// ```
pub fn merge_count(position: u64) -> u64 {
    assert!(position > 0, "positions are 1-based");
    1 << position.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::super::{Bmt, BmtSource};
    use super::*;
    use std::collections::HashMap;

    fn params() -> BloomParams {
        BloomParams::new(16, 2).unwrap()
    }

    fn filter_for(i: u64) -> BloomFilter {
        let mut f = BloomFilter::new(params());
        f.insert(&i.to_le_bytes());
        f
    }

    #[test]
    fn table_one_merge_counts() {
        // Paper Table I.
        let expected = [
            (1u64, 1u64),
            (2, 2),
            (3, 1),
            (4, 4),
            (5, 1),
            (6, 2),
            (7, 1),
            (8, 8),
        ];
        for (h, c) in expected {
            assert_eq!(merge_count(h), c, "height {h}");
        }
    }

    #[test]
    fn builder_roots_match_eager_trees() {
        // For every block h with M = 8, the committed root must equal the
        // eager BMT over the merged range.
        let m = 8u64;
        let mut builder = BmtBuilder::new(params(), m, 1).unwrap();
        let filters: Vec<BloomFilter> = (1..=16).map(filter_for).collect();
        for h in 1..=16u64 {
            let commit = builder
                .push_leaf(filters[(h - 1) as usize].clone())
                .unwrap();
            assert_eq!(commit.leaf, h);
            let pos = (h - 1) % m + 1;
            let count = merge_count(pos);
            assert_eq!(commit.merged_lo, h - count + 1, "height {h}");
            let leaves = filters[(commit.merged_lo - 1) as usize..h as usize].to_vec();
            let eager = Bmt::build(commit.merged_lo, leaves).unwrap();
            assert_eq!(commit.root, eager.root_hash(), "height {h}");
        }
    }

    #[test]
    fn span_hashes_cover_every_dyadic_span_once() {
        let m = 8u64;
        let mut builder = BmtBuilder::new(params(), m, 1).unwrap();
        let mut seen: HashMap<(u64, u64), Hash256> = HashMap::new();
        for h in 1..=8u64 {
            let commit = builder.push_leaf(filter_for(h)).unwrap();
            for span in &commit.new_spans {
                assert!(
                    seen.insert((span.lo, span.hi), span.hash).is_none(),
                    "span {:?} emitted twice",
                    (span.lo, span.hi)
                );
            }
        }
        // A complete segment of 8 leaves has 15 dyadic spans.
        assert_eq!(seen.len(), 15);
        // And they agree with the eager tree.
        let eager = Bmt::build(1, (1..=8).map(filter_for).collect()).unwrap();
        for ((lo, hi), hash) in seen {
            assert_eq!(eager.node_hash(lo, hi), hash);
        }
    }

    #[test]
    fn segment_boundaries_reset_merging() {
        let m = 4u64;
        let mut builder = BmtBuilder::new(params(), m, 1).unwrap();
        for h in 1..=4 {
            builder.push_leaf(filter_for(h)).unwrap();
        }
        // Block 5 starts a new segment: merges only itself.
        let commit = builder.push_leaf(filter_for(5)).unwrap();
        assert_eq!(commit.merged_lo, 5);
        assert_eq!(commit.root, leaf_hash(&filter_for(5)));
    }

    #[test]
    fn segment_len_one_means_no_merging() {
        let mut builder = BmtBuilder::new(params(), 1, 1).unwrap();
        for h in 1..=5 {
            let commit = builder.push_leaf(filter_for(h)).unwrap();
            assert_eq!(commit.merged_lo, h);
            assert_eq!(commit.root, leaf_hash(&filter_for(h)));
            assert_eq!(commit.new_spans.len(), 1);
        }
    }

    #[test]
    fn non_power_of_two_segment_rejected() {
        assert!(BmtBuilder::new(params(), 0, 1).is_err());
        assert!(BmtBuilder::new(params(), 3, 1).is_err());
    }

    #[test]
    fn params_mismatch_rejected() {
        let mut builder = BmtBuilder::new(params(), 4, 1).unwrap();
        let wrong = BloomFilter::new(BloomParams::new(17, 2).unwrap());
        assert_eq!(
            builder.push_leaf(wrong).unwrap_err(),
            BmtError::ParamsMismatch
        );
    }

    #[test]
    fn resume_continues_identically() {
        // Push 13 leaves straight through vs. stop-at-13-and-resume:
        // every later commit must be identical.
        let m = 8u64;
        let filters: Vec<BloomFilter> = (1..=16).map(filter_for).collect();

        let mut straight = BmtBuilder::new(params(), m, 1).unwrap();
        let mut stack_snapshot = Vec::new();
        for (i, f) in filters.iter().enumerate() {
            straight.push_leaf(f.clone()).unwrap();
            if i == 12 {
                stack_snapshot = straight
                    .stack
                    .iter()
                    .map(|e| (e.lo, e.hi, e.hash, e.filter.clone()))
                    .collect();
            }
        }

        let mut resumed = BmtBuilder::resume(params(), m, 1, 14, stack_snapshot.clone()).unwrap();
        let mut straight2 = BmtBuilder::new(params(), m, 1).unwrap();
        for f in &filters[..13] {
            straight2.push_leaf(f.clone()).unwrap();
        }
        for f in &filters[13..] {
            let a = straight2.push_leaf(f.clone()).unwrap();
            let b = resumed.push_leaf(f.clone()).unwrap();
            assert_eq!(a.root, b.root);
            assert_eq!(a.merged_lo, b.merged_lo);
        }

        // Malformed stacks are rejected.
        assert!(BmtBuilder::resume(params(), m, 1, 13, stack_snapshot.clone()).is_err());
        let mut gap = stack_snapshot.clone();
        gap.remove(0);
        assert!(BmtBuilder::resume(params(), m, 1, 14, gap).is_err());
    }

    #[test]
    fn resume_at_segment_boundary_has_empty_stack() {
        let mut resumed = BmtBuilder::resume(params(), 8, 1, 9, Vec::new()).unwrap();
        let c = resumed.push_leaf(filter_for(9)).unwrap();
        assert_eq!(c.merged_lo, 9);
        // A non-boundary empty stack is rejected.
        assert!(BmtBuilder::resume(params(), 8, 1, 10, Vec::new()).is_err());
    }

    #[test]
    fn first_leaf_offset_respected() {
        // Table II uses 1-based heights; a builder can also start mid-chain.
        let mut builder = BmtBuilder::new(params(), 4, 257).unwrap();
        let c = builder.push_leaf(filter_for(257)).unwrap();
        assert_eq!(c.leaf, 257);
        assert_eq!(c.merged_lo, 257);
        builder.push_leaf(filter_for(258)).unwrap();
        builder.push_leaf(filter_for(259)).unwrap();
        let c = builder.push_leaf(filter_for(260)).unwrap();
        assert_eq!(c.merged_lo, 257); // merges the whole 4-block segment
    }
}
