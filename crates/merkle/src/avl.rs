//! A persistent, authenticated Merkle AVL tree in the style of Merk.
//!
//! This is the structure behind the store-resident address index: a
//! balanced binary search tree whose **every node carries a full
//! key/value pair** and whose nodes are stored in a backing key-value
//! store *addressed by their own key*. Reading any entry is therefore a
//! single point read — no root-to-leaf traversal against storage — and
//! updating one entry rewrites only the O(log n) nodes on its path.
//!
//! # The three-level hash hierarchy
//!
//! Following Merk (SNIPPETS.md §2–3), each node commits to its contents
//! in three layers, so proofs can reveal a value, just its hash, or just
//! the combined `kv_hash` as needed:
//!
//! ```text
//! value_hash = H(VALUE_TAG ‖ varint(len(value)) ‖ value)
//! kv_hash    = H(KV_TAG    ‖ varint(len(key)) ‖ key ‖ value_hash)
//! node_hash  = H(NODE_TAG  ‖ kv_hash
//!                          ‖ left.hash  ‖ left.height
//!                          ‖ right.hash ‖ right.height)
//! ```
//!
//! Missing children contribute [`Hash256::ZERO`] and height `0`. Child
//! *heights* are committed alongside child hashes, so the AVL shape
//! itself is authenticated: a store that serves a node whose subtree
//! height disagrees with what its parent committed to is detected
//! exactly like a flipped value byte.
//!
//! # Verified fetches
//!
//! Tree descents ([`AvlTree::get`], [`AvlTree::scan_prefix`],
//! [`AvlTree::verify_walk`]) re-hash every node they fetch and compare
//! against the hash committed by the parent link (or the root link for
//! the first node). A corrupted, truncated, or swapped node therefore
//! surfaces as [`AvlError::CorruptNode`] — never as a wrong answer.

use std::cmp::Ordering;
use std::fmt;
use std::sync::{Arc, OnceLock};

use lvq_codec::{compact_size_len, write_compact_size, Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::Hash256;

/// Domain tag of the value-hash layer.
const VALUE_TAG: u8 = 0x40;
/// Domain tag of the kv-hash layer.
const KV_TAG: u8 = 0x41;
/// Domain tag of the node-hash layer.
const NODE_TAG: u8 = 0x42;

/// Errors from authenticated tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AvlError {
    /// A fetched node failed verification against the hash and height
    /// its parent (or the root record) committed to, or a committed
    /// node is missing from the backing store entirely.
    CorruptNode {
        /// What exactly failed.
        detail: &'static str,
    },
    /// The backing node store failed (I/O, checksum, decode).
    Backend {
        /// Human-readable description of the storage failure.
        detail: String,
    },
}

impl fmt::Display for AvlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvlError::CorruptNode { detail } => write!(f, "corrupt avl node: {detail}"),
            AvlError::Backend { detail } => write!(f, "avl node store error: {detail}"),
        }
    }
}

impl std::error::Error for AvlError {}

/// The hash of a value: `H(VALUE_TAG ‖ varint(len) ‖ value)`.
pub fn value_hash(value: &[u8]) -> Hash256 {
    let mut len = Vec::with_capacity(compact_size_len(value.len() as u64));
    write_compact_size(&mut len, value.len() as u64);
    Hash256::hash_parts(&[&[VALUE_TAG], &len, value])
}

/// The key/value hash: `H(KV_TAG ‖ varint(len(key)) ‖ key ‖ value_hash)`.
pub fn kv_hash(key: &[u8], value_hash: &Hash256) -> Hash256 {
    let mut len = Vec::with_capacity(compact_size_len(key.len() as u64));
    write_compact_size(&mut len, key.len() as u64);
    Hash256::hash_parts(&[&[KV_TAG], &len, key, value_hash.as_bytes()])
}

/// The node hash over a `kv_hash` and two child links (hash, height);
/// absent children are `(Hash256::ZERO, 0)`.
pub fn node_hash(kv: &Hash256, left: (Hash256, u8), right: (Hash256, u8)) -> Hash256 {
    Hash256::hash_parts(&[
        &[NODE_TAG],
        kv.as_bytes(),
        left.0.as_bytes(),
        &[left.1],
        right.0.as_bytes(),
        &[right.1],
    ])
}

/// A reference to a child node: its key (the address in the backing
/// store), the hash of the node it must decode to, and the height of
/// the subtree rooted there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvlLink {
    /// The child node's key — also its address in the node store.
    pub key: Vec<u8>,
    /// The child's committed [`node_hash`].
    pub hash: Hash256,
    /// Height of the subtree rooted at the child (a lone leaf is 1).
    pub height: u8,
}

impl Encodable for AvlLink {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.key.encode_into(out);
        self.hash.encode_into(out);
        self.height.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.key.encoded_len() + self.hash.encoded_len() + 1
    }
}

impl Decodable for AvlLink {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AvlLink {
            key: Vec::<u8>::decode_from(reader)?,
            hash: Hash256::decode_from(reader)?,
            height: u8::decode_from(reader)?,
        })
    }
}

/// One node of the tree: a full key/value pair plus links to up to two
/// children. Every node — inner or leaf — carries real data.
///
/// The node memoizes its own hashes: [`AvlNode::kv_hash`] (which hashes
/// the full value) and [`AvlNode::node_hash`] are computed at most once
/// per node version, so verified fetches of a cached node cost no
/// rehashing. All mutation happens inside this module, where every
/// mutating site invalidates the affected memo.
#[derive(Debug, Clone)]
pub struct AvlNode {
    /// The node's key (unique in the tree, BST-ordered bytewise).
    pub key: Vec<u8>,
    /// The node's value.
    pub value: Vec<u8>,
    /// Left child (all keys strictly smaller).
    pub left: Option<AvlLink>,
    /// Right child (all keys strictly greater).
    pub right: Option<AvlLink>,
    kv_memo: OnceLock<Hash256>,
    node_memo: OnceLock<Hash256>,
}

impl PartialEq for AvlNode {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
            && self.value == other.value
            && self.left == other.left
            && self.right == other.right
    }
}

impl Eq for AvlNode {}

fn link_parts(link: &Option<AvlLink>) -> (Hash256, u8) {
    match link {
        Some(l) => (l.hash, l.height),
        None => (Hash256::ZERO, 0),
    }
}

impl AvlNode {
    /// A fresh childless node.
    pub fn leaf(key: Vec<u8>, value: Vec<u8>) -> Self {
        AvlNode {
            key,
            value,
            left: None,
            right: None,
            kv_memo: OnceLock::new(),
            node_memo: OnceLock::new(),
        }
    }

    /// Forgets both memoized hashes; called after any key/value change.
    fn invalidate(&mut self) {
        self.kv_memo = OnceLock::new();
        self.node_memo = OnceLock::new();
    }

    /// Forgets the memoized node hash; called after a child link
    /// change (the kv layer is untouched by relinking).
    fn invalidate_links(&mut self) {
        self.node_memo = OnceLock::new();
    }

    /// Height of the subtree rooted here (1 for a leaf).
    pub fn height(&self) -> u8 {
        let (_, lh) = link_parts(&self.left);
        let (_, rh) = link_parts(&self.right);
        1 + lh.max(rh)
    }

    /// AVL balance factor: left height minus right height.
    pub fn balance(&self) -> i16 {
        let (_, lh) = link_parts(&self.left);
        let (_, rh) = link_parts(&self.right);
        lh as i16 - rh as i16
    }

    /// This node's [`kv_hash`] (memoized per node version).
    pub fn kv_hash(&self) -> Hash256 {
        *self
            .kv_memo
            .get_or_init(|| kv_hash(&self.key, &value_hash(&self.value)))
    }

    /// This node's [`node_hash`] — what the parent link commits to
    /// (memoized per node version).
    pub fn node_hash(&self) -> Hash256 {
        *self.node_memo.get_or_init(|| {
            node_hash(
                &self.kv_hash(),
                link_parts(&self.left),
                link_parts(&self.right),
            )
        })
    }

    /// The link a parent (or the root record) would hold for this node.
    pub fn link(&self) -> AvlLink {
        AvlLink {
            key: self.key.clone(),
            hash: self.node_hash(),
            height: self.height(),
        }
    }

    /// Approximate resident footprint, used to bound node caches.
    pub fn resident_size(&self) -> usize {
        let link = |l: &Option<AvlLink>| l.as_ref().map_or(0, |l| l.key.len() + 40);
        self.key.len() + self.value.len() + link(&self.left) + link(&self.right) + 64
    }
}

impl Encodable for AvlNode {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.key.encode_into(out);
        self.value.encode_into(out);
        self.left.encode_into(out);
        self.right.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        self.key.encoded_len()
            + self.value.encoded_len()
            + self.left.encoded_len()
            + self.right.encoded_len()
    }
}

impl Decodable for AvlNode {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AvlNode {
            key: Vec::<u8>::decode_from(reader)?,
            value: Vec::<u8>::decode_from(reader)?,
            left: Option::<AvlLink>::decode_from(reader)?,
            right: Option::<AvlLink>::decode_from(reader)?,
            kv_memo: OnceLock::new(),
            node_memo: OnceLock::new(),
        })
    }
}

/// Node storage behind an [`AvlTree`]: a key-value store addressing
/// nodes *by their tree key*, so one lookup reads one node.
///
/// Implementations must return nodes exactly as stored — verification
/// against the committed hashes happens in the tree layer on every
/// fetch.
pub trait AvlNodeStore {
    /// The node stored under `key`, or `None` if the store has never
    /// seen it.
    ///
    /// # Errors
    ///
    /// Returns [`AvlError::Backend`] if the underlying storage fails.
    fn get_node(&self, key: &[u8]) -> Result<Option<Arc<AvlNode>>, AvlError>;

    /// Stores `node` under `node.key`, replacing any earlier version.
    ///
    /// # Errors
    ///
    /// Returns [`AvlError::Backend`] if the underlying storage fails.
    fn put_node(&mut self, node: &AvlNode) -> Result<(), AvlError>;
}

/// An in-memory [`AvlNodeStore`] — the reference backend for tests and
/// for rebuilding indexes transiently.
#[derive(Debug, Default, Clone)]
pub struct MemoryNodes {
    nodes: std::collections::HashMap<Vec<u8>, Arc<AvlNode>>,
    puts: u64,
}

impl MemoryNodes {
    /// An empty store.
    pub fn new() -> Self {
        MemoryNodes::default()
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total `put_node` calls — the node-write amplification a test can
    /// assert O(log n) bounds on.
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Replaces the raw stored bytes of `key` — a corruption hook for
    /// tests (the tree must *detect* this, never serve it).
    pub fn tamper(&mut self, key: &[u8], f: impl FnOnce(&mut AvlNode)) -> bool {
        match self.nodes.get_mut(key) {
            Some(node) => {
                let mut tampered = (**node).clone();
                f(&mut tampered);
                tampered.invalidate();
                *node = Arc::new(tampered);
                true
            }
            None => false,
        }
    }
}

impl AvlNodeStore for MemoryNodes {
    fn get_node(&self, key: &[u8]) -> Result<Option<Arc<AvlNode>>, AvlError> {
        Ok(self.nodes.get(key).cloned())
    }

    fn put_node(&mut self, node: &AvlNode) -> Result<(), AvlError> {
        self.puts += 1;
        self.nodes.insert(node.key.clone(), Arc::new(node.clone()));
        Ok(())
    }
}

/// Fetches the node a link points at and verifies it is byte-for-byte
/// the node the link committed to (hash *and* height).
pub fn fetch<S: AvlNodeStore + ?Sized>(
    store: &S,
    link: &AvlLink,
) -> Result<Arc<AvlNode>, AvlError> {
    let node = store.get_node(&link.key)?.ok_or(AvlError::CorruptNode {
        detail: "committed node missing from store",
    })?;
    if node.key != link.key {
        return Err(AvlError::CorruptNode {
            detail: "node stored under a different key",
        });
    }
    if node.height() != link.height {
        return Err(AvlError::CorruptNode {
            detail: "subtree height disagrees with parent link",
        });
    }
    if node.node_hash() != link.hash {
        return Err(AvlError::CorruptNode {
            detail: "node hash disagrees with parent link",
        });
    }
    Ok(node)
}

/// One ancestor on a proof path, root-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvlProofStep {
    /// The ancestor's own `kv_hash` (its key/value stay hidden).
    pub kv_hash: Hash256,
    /// `true` if the proven key lies in the ancestor's left subtree.
    pub descend_left: bool,
    /// Height the ancestor's link to the on-path child committed.
    pub path_height: u8,
    /// Hash of the off-path child ([`Hash256::ZERO`] when absent).
    pub other_hash: Hash256,
    /// Height of the off-path child (0 when absent).
    pub other_height: u8,
}

/// A membership proof: the terminal node's key/value and child links,
/// plus the `kv_hash` and off-path link of every ancestor.
///
/// This is internal integrity evidence for the index (the LVQ wire
/// formats — BMT and SMT proofs — are unchanged); it lets tooling check
/// a single index entry against the anchored root without walking the
/// tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvlProof {
    /// The proven key.
    pub key: Vec<u8>,
    /// The proven value.
    pub value: Vec<u8>,
    /// Hash/height of the terminal node's left child.
    pub left: (Hash256, u8),
    /// Hash/height of the terminal node's right child.
    pub right: (Hash256, u8),
    /// Ancestors from the root down to the terminal node's parent.
    pub path: Vec<AvlProofStep>,
}

impl AvlProof {
    /// Verifies this proof binds `key → value` under `root`.
    pub fn verify(&self, root: Hash256, key: &[u8], value: &[u8]) -> bool {
        if self.key != key || self.value != value {
            return false;
        }
        let kv = kv_hash(key, &value_hash(value));
        let mut hash = node_hash(&kv, self.left, self.right);
        let mut height = 1 + self.left.1.max(self.right.1);
        for step in self.path.iter().rev() {
            if step.path_height != height {
                return false;
            }
            let me = (hash, height);
            let other = (step.other_hash, step.other_height);
            let (left, right) = if step.descend_left {
                (me, other)
            } else {
                (other, me)
            };
            hash = node_hash(&step.kv_hash, left, right);
            height = 1 + left.1.max(right.1);
        }
        hash == root
    }
}

/// The tree handle: just the root link. All node data lives in an
/// [`AvlNodeStore`]; the handle is cheap to clone and a 40-ish-byte
/// root record (key, hash, height) pins the entire structure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AvlTree {
    root: Option<AvlLink>,
}

impl AvlTree {
    /// An empty tree.
    pub fn new() -> Self {
        AvlTree { root: None }
    }

    /// Adopts a root link restored from a checksummed root record.
    pub fn from_root(root: Option<AvlLink>) -> Self {
        AvlTree { root }
    }

    /// The current root link (`None` when empty).
    pub fn root(&self) -> Option<&AvlLink> {
        self.root.as_ref()
    }

    /// The root hash — [`Hash256::ZERO`] for an empty tree. This is the
    /// single value a root record must checksum to pin the whole index.
    pub fn root_hash(&self) -> Hash256 {
        self.root.as_ref().map_or(Hash256::ZERO, |l| l.hash)
    }

    /// `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Inserts or replaces `key → value`, rewriting the O(log n) nodes
    /// on the path (path copying: old node versions stay in the store
    /// until compaction, which is what makes torn-tail recovery easy).
    ///
    /// # Errors
    ///
    /// Any [`AvlError`] from the store, or [`AvlError::CorruptNode`] if
    /// a node on the path fails verification.
    pub fn insert<S: AvlNodeStore + ?Sized>(
        &mut self,
        store: &mut S,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), AvlError> {
        let new_root = insert_at(store, self.root.as_ref(), key, value)?;
        self.root = Some(new_root);
        Ok(())
    }

    /// Removes `key` from the tree, rewriting the O(log n) nodes on
    /// the path (path copying, like [`AvlTree::insert`]). Returns
    /// `true` if the key was present. A removed node's last stored
    /// version stays in the backing store until compaction — nothing
    /// in the new tree links to it, so verified reads never see it.
    ///
    /// # Errors
    ///
    /// Any [`AvlError`] from the store, or [`AvlError::CorruptNode`] if
    /// a node on the path fails verification.
    pub fn remove<S: AvlNodeStore + ?Sized>(
        &mut self,
        store: &mut S,
        key: &[u8],
    ) -> Result<bool, AvlError> {
        let (new_root, removed) = remove_at(store, self.root.as_ref(), key)?;
        if removed {
            self.root = new_root;
        }
        Ok(removed)
    }

    /// Authenticated point lookup: descends from the root, verifying
    /// every fetched node, and returns the node holding `key` (or
    /// `None` if the tree provably has no such key).
    ///
    /// # Errors
    ///
    /// [`AvlError::CorruptNode`] if any node on the path fails
    /// verification, or a backend error.
    pub fn get<S: AvlNodeStore + ?Sized>(
        &self,
        store: &S,
        key: &[u8],
    ) -> Result<Option<Arc<AvlNode>>, AvlError> {
        let mut link = self.root.clone();
        while let Some(l) = link {
            let node = fetch(store, &l)?;
            match key.cmp(node.key.as_slice()) {
                Ordering::Equal => return Ok(Some(node)),
                Ordering::Less => link = node.left.clone(),
                Ordering::Greater => link = node.right.clone(),
            }
        }
        Ok(None)
    }

    /// Visits every entry whose key starts with `prefix`, in key order,
    /// verifying every node on the way (an empty prefix walks the whole
    /// tree). Subtrees that cannot contain the prefix are pruned, so
    /// the cost is O(log n + matches).
    ///
    /// # Errors
    ///
    /// [`AvlError::CorruptNode`] on any verification failure, a backend
    /// error, or the first error from `visit`.
    pub fn scan_prefix<S: AvlNodeStore + ?Sized>(
        &self,
        store: &S,
        prefix: &[u8],
        visit: &mut dyn FnMut(&AvlNode) -> Result<(), AvlError>,
    ) -> Result<(), AvlError> {
        fn walk<S: AvlNodeStore + ?Sized>(
            store: &S,
            link: &Option<AvlLink>,
            prefix: &[u8],
            visit: &mut dyn FnMut(&AvlNode) -> Result<(), AvlError>,
        ) -> Result<(), AvlError> {
            let Some(link) = link else {
                return Ok(());
            };
            let node = fetch(store, link)?;
            let key = node.key.as_slice();
            // Left subtree holds keys < node.key: only worth visiting
            // if some prefixed key can be smaller.
            if key > prefix {
                walk(store, &node.left, prefix, visit)?;
            }
            if key.starts_with(prefix) {
                visit(&node)?;
            }
            // A key above `prefix` that does not start with it is above
            // the whole prefixed range; nothing to its right matches.
            if key <= prefix || key.starts_with(prefix) {
                walk(store, &node.right, prefix, visit)?;
            }
            Ok(())
        }
        walk(store, &self.root, prefix, visit)
    }

    /// Builds a membership proof for `key`.
    ///
    /// # Errors
    ///
    /// [`AvlError::CorruptNode`] if the key is absent (this tree only
    /// proves membership) or any node on the path fails verification.
    pub fn prove<S: AvlNodeStore + ?Sized>(
        &self,
        store: &S,
        key: &[u8],
    ) -> Result<AvlProof, AvlError> {
        let mut path = Vec::new();
        let mut link = self.root.clone();
        while let Some(l) = link {
            let node = fetch(store, &l)?;
            match key.cmp(node.key.as_slice()) {
                Ordering::Equal => {
                    return Ok(AvlProof {
                        key: node.key.clone(),
                        value: node.value.clone(),
                        left: link_parts(&node.left),
                        right: link_parts(&node.right),
                        path,
                    });
                }
                Ordering::Less => {
                    let other = link_parts(&node.right);
                    path.push(AvlProofStep {
                        kv_hash: node.kv_hash(),
                        descend_left: true,
                        path_height: link_parts(&node.left).1,
                        other_hash: other.0,
                        other_height: other.1,
                    });
                    link = node.left.clone();
                }
                Ordering::Greater => {
                    let other = link_parts(&node.left);
                    path.push(AvlProofStep {
                        kv_hash: node.kv_hash(),
                        descend_left: false,
                        path_height: link_parts(&node.right).1,
                        other_hash: other.0,
                        other_height: other.1,
                    });
                    link = node.right.clone();
                }
            }
        }
        Err(AvlError::CorruptNode {
            detail: "key absent from tree",
        })
    }

    /// Verifies the *entire* tree: every node's hash and height against
    /// its parent link, BST key order, and the AVL balance invariant.
    /// Returns the number of entries.
    ///
    /// This is the reopen-time integrity pass: it costs one sequential
    /// read of the live node set and guarantees a bit flip anywhere in
    /// the index is caught before the first query is answered.
    ///
    /// # Errors
    ///
    /// [`AvlError::CorruptNode`] at the first violation.
    pub fn verify_walk<S: AvlNodeStore + ?Sized>(&self, store: &S) -> Result<u64, AvlError> {
        fn walk<S: AvlNodeStore + ?Sized>(
            store: &S,
            link: &AvlLink,
            lo: Option<&[u8]>,
            hi: Option<&[u8]>,
        ) -> Result<u64, AvlError> {
            let node = fetch(store, link)?;
            let key = node.key.as_slice();
            if lo.is_some_and(|lo| key <= lo) || hi.is_some_and(|hi| key >= hi) {
                return Err(AvlError::CorruptNode {
                    detail: "BST key order violated",
                });
            }
            if node.balance().abs() > 1 {
                return Err(AvlError::CorruptNode {
                    detail: "AVL balance invariant violated",
                });
            }
            let mut count = 1;
            if let Some(left) = &node.left {
                count += walk(store, left, lo, Some(key))?;
            }
            if let Some(right) = &node.right {
                count += walk(store, right, Some(key), hi)?;
            }
            Ok(count)
        }
        match &self.root {
            None => Ok(0),
            Some(root) => walk(store, root, None, None),
        }
    }
}

fn insert_at<S: AvlNodeStore + ?Sized>(
    store: &mut S,
    link: Option<&AvlLink>,
    key: &[u8],
    value: &[u8],
) -> Result<AvlLink, AvlError> {
    let Some(link) = link else {
        let node = AvlNode::leaf(key.to_vec(), value.to_vec());
        let link = node.link();
        store.put_node(&node)?;
        return Ok(link);
    };
    let mut node = (*fetch(store, link)?).clone();
    match key.cmp(node.key.as_slice()) {
        Ordering::Equal => {
            node.value = value.to_vec();
            node.invalidate();
            let link = node.link();
            store.put_node(&node)?;
            return Ok(link);
        }
        Ordering::Less => {
            let child = insert_at(store, node.left.as_ref(), key, value)?;
            node.left = Some(child);
            node.invalidate_links();
        }
        Ordering::Greater => {
            let child = insert_at(store, node.right.as_ref(), key, value)?;
            node.right = Some(child);
            node.invalidate_links();
        }
    }
    let node = rebalance(store, node)?;
    let link = node.link();
    store.put_node(&node)?;
    Ok(link)
}

fn remove_at<S: AvlNodeStore + ?Sized>(
    store: &mut S,
    link: Option<&AvlLink>,
    key: &[u8],
) -> Result<(Option<AvlLink>, bool), AvlError> {
    let Some(link) = link else {
        return Ok((None, false));
    };
    let mut node = (*fetch(store, link)?).clone();
    match key.cmp(node.key.as_slice()) {
        Ordering::Equal => {
            let replacement = match (node.left.take(), node.right.take()) {
                (None, None) => return Ok((None, true)),
                (Some(only), None) | (None, Some(only)) => return Ok((Some(only), true)),
                (Some(left), Some(right)) => {
                    // Two children: promote the in-order successor (the
                    // minimum of the right subtree) into this position,
                    // then rebalance as if its key had been removed.
                    let (successor, new_right) = take_min(store, &right)?;
                    let mut replacement =
                        AvlNode::leaf(successor.key.clone(), successor.value.clone());
                    replacement.left = Some(left);
                    replacement.right = new_right;
                    replacement
                }
            };
            let replacement = rebalance(store, replacement)?;
            let new_link = replacement.link();
            store.put_node(&replacement)?;
            Ok((Some(new_link), true))
        }
        Ordering::Less => {
            let (child, removed) = remove_at(store, node.left.as_ref(), key)?;
            if !removed {
                return Ok((Some(link.clone()), false));
            }
            node.left = child;
            node.invalidate_links();
            let node = rebalance(store, node)?;
            let new_link = node.link();
            store.put_node(&node)?;
            Ok((Some(new_link), true))
        }
        Ordering::Greater => {
            let (child, removed) = remove_at(store, node.right.as_ref(), key)?;
            if !removed {
                return Ok((Some(link.clone()), false));
            }
            node.right = child;
            node.invalidate_links();
            let node = rebalance(store, node)?;
            let new_link = node.link();
            store.put_node(&node)?;
            Ok((Some(new_link), true))
        }
    }
}

/// Detaches the minimum node of the subtree at `link`, rebalancing the
/// unwind path; returns the detached node and the new subtree link.
fn take_min<S: AvlNodeStore + ?Sized>(
    store: &mut S,
    link: &AvlLink,
) -> Result<(Arc<AvlNode>, Option<AvlLink>), AvlError> {
    let fetched = fetch(store, link)?;
    let Some(left) = fetched.left.as_ref() else {
        return Ok((fetched.clone(), fetched.right.clone()));
    };
    let (min, new_left) = take_min(store, left)?;
    let mut node = (*fetched).clone();
    node.left = new_left;
    node.invalidate_links();
    let node = rebalance(store, node)?;
    let new_link = node.link();
    store.put_node(&node)?;
    Ok((min, Some(new_link)))
}

/// Restores the AVL invariant at `node` after a child height changed,
/// storing every demoted node; the returned subtree root is *not* yet
/// stored (the caller stores it after linking).
fn rebalance<S: AvlNodeStore + ?Sized>(store: &mut S, node: AvlNode) -> Result<AvlNode, AvlError> {
    let bf = node.balance();
    if bf > 1 {
        let left_link = node
            .left
            .as_ref()
            .expect("left-heavy node has a left child");
        let mut left = (*fetch(store, left_link)?).clone();
        if left.balance() < 0 {
            let lr_link = left
                .right
                .as_ref()
                .expect("right-heavy child has a right child");
            let lr = (*fetch(store, lr_link)?).clone();
            left = rotate_left(store, left, lr)?;
        }
        rotate_right(store, node, left)
    } else if bf < -1 {
        let right_link = node
            .right
            .as_ref()
            .expect("right-heavy node has a right child");
        let mut right = (*fetch(store, right_link)?).clone();
        if right.balance() > 0 {
            let rl_link = right
                .left
                .as_ref()
                .expect("left-heavy child has a left child");
            let rl = (*fetch(store, rl_link)?).clone();
            right = rotate_right(store, right, rl)?;
        }
        rotate_left(store, node, right)
    } else {
        Ok(node)
    }
}

/// Right rotation: `x` (== `y`'s left child, already fetched) is
/// promoted above `y`. Stores the demoted `y`; returns the new subtree
/// root `x` unstored.
fn rotate_right<S: AvlNodeStore + ?Sized>(
    store: &mut S,
    mut y: AvlNode,
    mut x: AvlNode,
) -> Result<AvlNode, AvlError> {
    y.left = x.right.take();
    y.invalidate_links();
    let y_link = y.link();
    store.put_node(&y)?;
    x.right = Some(y_link);
    x.invalidate_links();
    Ok(x)
}

/// Left rotation: `x` (== `y`'s right child, already fetched) is
/// promoted above `y`. Stores the demoted `y`; returns the new subtree
/// root `x` unstored.
fn rotate_left<S: AvlNodeStore + ?Sized>(
    store: &mut S,
    mut y: AvlNode,
    mut x: AvlNode,
) -> Result<AvlNode, AvlError> {
    y.right = x.left.take();
    y.invalidate_links();
    let y_link = y.link();
    store.put_node(&y)?;
    x.left = Some(y_link);
    x.invalidate_links();
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    fn build(keys: impl IntoIterator<Item = u64>) -> (AvlTree, MemoryNodes) {
        let mut store = MemoryNodes::new();
        let mut tree = AvlTree::new();
        for i in keys {
            tree.insert(&mut store, &key(i), &(i * 10).to_le_bytes())
                .unwrap();
        }
        (tree, store)
    }

    #[test]
    fn three_level_hashes_are_domain_separated() {
        // A (key, value) swap must change every level that sees both.
        let a = kv_hash(b"k", &value_hash(b"v"));
        let b = kv_hash(b"v", &value_hash(b"k"));
        assert_ne!(a, b);
        // value_hash is not plain H(value).
        assert_ne!(value_hash(b"v"), Hash256::hash(b"v"));
        // Child order matters in the node hash.
        let l = (Hash256::hash(b"l"), 1);
        let r = (Hash256::hash(b"r"), 1);
        assert_ne!(node_hash(&a, l, r), node_hash(&a, r, l));
        // Child heights are committed.
        assert_ne!(node_hash(&a, l, r), node_hash(&a, (l.0, 2), r));
    }

    #[test]
    fn insert_get_roundtrip_and_absence() {
        let (tree, store) = build([5, 3, 9, 1, 7]);
        for i in [5u64, 3, 9, 1, 7] {
            let node = tree.get(&store, &key(i)).unwrap().expect("present");
            assert_eq!(node.value, (i * 10).to_le_bytes());
        }
        assert!(tree.get(&store, &key(4)).unwrap().is_none());
        assert_eq!(tree.verify_walk(&store).unwrap(), 5);
    }

    #[test]
    fn stays_balanced_under_sequential_inserts() {
        // Sequential keys are the AVL worst case for a naive BST.
        let (tree, store) = build(0..512);
        assert_eq!(tree.verify_walk(&store).unwrap(), 512);
        // AVL height bound: 1.44 log2(n) + O(1); 512 keys => <= 13.
        assert!(tree.root().unwrap().height <= 13);
        // Path copying writes O(log n) nodes per insert.
        assert!(store.puts() < 512 * 16, "puts = {}", store.puts());
    }

    #[test]
    fn shape_is_a_function_of_the_insert_sequence() {
        let (a, _) = build([4, 2, 6, 1, 3, 5, 7]);
        let (b, _) = build([4, 2, 6, 1, 3, 5, 7]);
        assert_eq!(a.root(), b.root());
        // Same content, different order: equality of roots is NOT
        // guaranteed in general — determinism comes from replaying the
        // same sequence, which is how rebuild == incremental is pinned.
        let (c, _) = build([1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(
            a.verify_walk(&build([4, 2, 6, 1, 3, 5, 7]).1).unwrap(),
            c.verify_walk(&build([1, 2, 3, 4, 5, 6, 7]).1).unwrap()
        );
    }

    #[test]
    fn replacing_a_value_changes_the_root() {
        let (mut tree, mut store) = build([1, 2, 3]);
        let before = tree.root_hash();
        tree.insert(&mut store, &key(2), b"new value").unwrap();
        assert_ne!(tree.root_hash(), before);
        assert_eq!(
            tree.get(&store, &key(2)).unwrap().unwrap().value,
            b"new value"
        );
        assert_eq!(tree.verify_walk(&store).unwrap(), 3);
    }

    #[test]
    fn remove_deletes_and_keeps_balance() {
        let (mut tree, mut store) = build(0..256);
        // Delete every third key, checking the survivors after each.
        for i in (0..256u64).step_by(3) {
            assert!(tree.remove(&mut store, &key(i)).unwrap());
        }
        let expected = (0..256u64).filter(|i| i % 3 != 0).count() as u64;
        assert_eq!(tree.verify_walk(&store).unwrap(), expected);
        for i in 0..256u64 {
            let got = tree.get(&store, &key(i)).unwrap();
            if i % 3 == 0 {
                assert!(got.is_none(), "key {i} should be gone");
            } else {
                assert_eq!(got.expect("present").value, (i * 10).to_le_bytes());
            }
        }
    }

    #[test]
    fn remove_missing_key_is_a_noop() {
        let (mut tree, mut store) = build([5, 3, 9]);
        let before = tree.root_hash();
        let puts_before = store.puts();
        assert!(!tree.remove(&mut store, &key(4)).unwrap());
        assert_eq!(tree.root_hash(), before);
        assert_eq!(store.puts(), puts_before, "miss writes nothing");
        assert_eq!(tree.verify_walk(&store).unwrap(), 3);
    }

    #[test]
    fn remove_empties_to_none_and_reinserts() {
        let (mut tree, mut store) = build([2, 1, 3]);
        for i in [1u64, 3, 2] {
            assert!(tree.remove(&mut store, &key(i)).unwrap());
        }
        assert!(tree.is_empty());
        assert_eq!(tree.root_hash(), Hash256::ZERO);
        // The emptied tree accepts inserts again and verifies clean.
        tree.insert(&mut store, &key(7), b"back").unwrap();
        assert_eq!(tree.verify_walk(&store).unwrap(), 1);
        assert_eq!(tree.get(&store, &key(7)).unwrap().unwrap().value, b"back");
    }

    #[test]
    fn remove_two_children_promotes_the_successor() {
        // Root with both subtrees populated: deleting it must splice
        // in the in-order successor and keep BST order + balance.
        let (mut tree, mut store) = build([8, 4, 12, 2, 6, 10, 14, 9, 11]);
        let root_key = tree.root().unwrap().key.clone();
        assert!(tree.remove(&mut store, &root_key).unwrap());
        assert_eq!(tree.verify_walk(&store).unwrap(), 8);
        assert!(tree.get(&store, &root_key).unwrap().is_none());
        // Deletion writes O(log n) nodes, like insertion.
        let (mut tree, mut store) = build(0..512);
        let before = store.puts();
        assert!(tree.remove(&mut store, &key(255)).unwrap());
        assert!(
            store.puts() - before <= 16,
            "puts = {}",
            store.puts() - before
        );
    }

    #[test]
    fn scan_prefix_is_ordered_and_pruned() {
        let mut store = MemoryNodes::new();
        let mut tree = AvlTree::new();
        for i in 0..40u64 {
            let mut k = vec![(i % 4) as u8];
            k.extend_from_slice(&i.to_be_bytes());
            tree.insert(&mut store, &k, &[1]).unwrap();
        }
        let mut seen = Vec::new();
        tree.scan_prefix(&store, &[2], &mut |node| {
            seen.push(node.key.clone());
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 10);
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted, "in-order scan yields sorted keys");
        assert!(seen.iter().all(|k| k[0] == 2));
        // Empty prefix visits everything.
        let mut all = 0;
        tree.scan_prefix(&store, &[], &mut |_| {
            all += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(all, 40);
    }

    #[test]
    fn proofs_verify_and_tampering_fails() {
        let (tree, store) = build(0..64);
        let root = tree.root_hash();
        for i in [0u64, 13, 31, 63] {
            let proof = tree.prove(&store, &key(i)).unwrap();
            assert!(proof.verify(root, &key(i), &(i * 10).to_le_bytes()));
            // Wrong value, wrong key, wrong root: all rejected.
            assert!(!proof.verify(root, &key(i), b"forged"));
            assert!(!proof.verify(root, &key(i + 1), &(i * 10).to_le_bytes()));
            assert!(!proof.verify(
                Hash256::hash(b"other root"),
                &key(i),
                &(i * 10).to_le_bytes()
            ));
        }
        assert!(matches!(
            tree.prove(&store, &key(1000)),
            Err(AvlError::CorruptNode { .. })
        ));
    }

    #[test]
    fn corrupted_nodes_are_detected_not_served() {
        let (tree, mut store) = build(0..32);
        // Flip a value byte in some node: every read path that touches
        // it must error, none may return the tampered value.
        assert!(store.tamper(&key(11), |node| node.value[0] ^= 0xFF));
        assert!(matches!(
            tree.get(&store, &key(11)),
            Err(AvlError::CorruptNode { .. })
        ));
        assert!(matches!(
            tree.verify_walk(&store),
            Err(AvlError::CorruptNode { .. })
        ));
        // A height lie is equally fatal, even with a matching hash
        // recomputed over the lied-about children.
        let (tree, mut store) = build(0..32);
        assert!(store.tamper(&key(11), |node| {
            if let Some(l) = node.left.as_mut() {
                l.height += 1;
            } else {
                node.left = Some(AvlLink {
                    key: key(10),
                    hash: Hash256::ZERO,
                    height: 9,
                });
            }
        }));
        assert!(tree.verify_walk(&store).is_err());
    }

    #[test]
    fn missing_node_is_corruption() {
        let (tree, store) = build(0..8);
        let mut broken = MemoryNodes::new();
        // Copy all but the root's target into a fresh store.
        for i in 0..8u64 {
            if let Some(node) = store.get_node(&key(i)).unwrap() {
                if i != 3 {
                    broken.put_node(&node).unwrap();
                }
            }
        }
        assert!(matches!(
            tree.verify_walk(&broken),
            Err(AvlError::CorruptNode { .. })
        ));
    }

    #[test]
    fn node_codec_roundtrip() {
        let (tree, store) = build([8, 4, 12, 2, 6, 10, 14]);
        let root = fetch(&store, tree.root().unwrap()).unwrap();
        let bytes = root.encode();
        assert_eq!(bytes.len(), root.encoded_len());
        let decoded: AvlNode = lvq_codec::decode_exact(&bytes).unwrap();
        assert_eq!(decoded, *root);
        assert_eq!(decoded.node_hash(), tree.root_hash());
    }
}
