//! The Sorted Merkle Tree (paper §III-A, §IV-B2).
//!
//! Leaves are `(key, value)` pairs sorted by key; in LVQ the key is an
//! address and the value its appearance count in a block. Because leaves
//! are sorted and the commitment binds the leaf count, the tree supports
//! compact proofs of *both*:
//!
//! * **presence** — one branch reveals the committed value for a key
//!   (the count proof that solves the paper's Challenge 3), and
//! * **inexistence** — two branches for leaves at adjacent indices whose
//!   keys straddle the queried key (the paper's predecessor/successor
//!   proof, Fig. 9), with one-branch edge forms for keys below the first
//!   or above the last leaf and a trivial form for empty trees.
//!
//! Node hashes are domain-separated (leaf/internal/commitment tags) so no
//! encoding of one node kind collides with another, and the commitment is
//! `H(tag || root || leaf_count)` so branch indices are meaningful to a
//! verifier that holds only the 32-byte commitment.

use std::error::Error;
use std::fmt;

use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::Hash256;

/// Domain tag for leaf hashes.
const TAG_LEAF: u8 = 0x00;
/// Domain tag for internal node hashes.
const TAG_NODE: u8 = 0x01;
/// Domain tag for the sealed commitment.
const TAG_COMMIT: u8 = 0x02;

/// Maximum accepted branch depth when decoding untrusted proofs.
const MAX_DEPTH: usize = 64;

/// Errors produced while building SMTs or verifying SMT proofs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SmtError {
    /// Two entries shared a key at construction time.
    DuplicateKey,
    /// A branch's recomputed root did not match the commitment.
    CommitmentMismatch,
    /// A branch index was outside the committed leaf count.
    IndexOutOfRange,
    /// The two branches of an adjacency proof disagree structurally.
    NotAdjacent,
    /// The proof's key ordering does not place the queried key where the
    /// proof claims (e.g. the "predecessor" is not smaller than the key).
    OrderViolation,
    /// The proof shape does not match the queried key (e.g. a presence
    /// proof for a different key).
    KeyMismatch,
}

impl fmt::Display for SmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SmtError::DuplicateKey => "duplicate key in sorted merkle tree",
            SmtError::CommitmentMismatch => "branch does not match the smt commitment",
            SmtError::IndexOutOfRange => "branch index outside committed leaf count",
            SmtError::NotAdjacent => "inexistence branches are not at adjacent indices",
            SmtError::OrderViolation => "leaf keys do not straddle the queried key",
            SmtError::KeyMismatch => "proof is for a different key",
        };
        f.write_str(msg)
    }
}

impl Error for SmtError {}

fn leaf_hash(key: &[u8], value: u64) -> Hash256 {
    let mut buf = Vec::with_capacity(1 + 9 + key.len() + 8);
    buf.push(TAG_LEAF);
    lvq_codec::write_compact_size(&mut buf, key.len() as u64);
    buf.extend_from_slice(key);
    buf.extend_from_slice(&value.to_le_bytes());
    Hash256::hash(&buf)
}

fn node_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    Hash256::hash_parts(&[&[TAG_NODE], left.as_bytes(), right.as_bytes()])
}

fn commitment_hash(root: &Hash256, leaf_count: u64) -> Hash256 {
    Hash256::hash_parts(&[&[TAG_COMMIT], root.as_bytes(), &leaf_count.to_le_bytes()])
}

/// A Sorted Merkle Tree over `(key, value)` pairs.
///
/// # Examples
///
/// ```
/// use lvq_merkle::smt::SortedMerkleTree;
///
/// # fn main() -> Result<(), lvq_merkle::SmtError> {
/// let tree = SortedMerkleTree::new(vec![
///     (b"addr1".to_vec(), 2),
///     (b"addr3".to_vec(), 1),
/// ])?;
/// let proof = tree.prove(b"addr2"); // inexistence via adjacency
/// assert_eq!(proof.verify(b"addr2", &tree.commitment())?, None);
/// let proof = tree.prove(b"addr1");
/// assert_eq!(proof.verify(b"addr1", &tree.commitment())?, Some(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SortedMerkleTree {
    /// Sorted `(key, value)` leaves.
    entries: Vec<(Vec<u8>, u64)>,
    /// `levels[0]` = leaf hashes; last level = root (absent when empty).
    levels: Vec<Vec<Hash256>>,
}

impl SortedMerkleTree {
    /// Builds a tree from unsorted entries.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::DuplicateKey`] if two entries share a key.
    pub fn new(mut entries: Vec<(Vec<u8>, u64)>) -> Result<Self, SmtError> {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        if entries.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(SmtError::DuplicateKey);
        }

        let mut levels = Vec::new();
        if !entries.is_empty() {
            let leaf_level: Vec<Hash256> = entries.iter().map(|(k, v)| leaf_hash(k, *v)).collect();
            levels.push(leaf_level);
            while levels.last().expect("non-empty").len() > 1 {
                let prev = levels.last().expect("non-empty");
                let mut next = Vec::with_capacity(prev.len().div_ceil(2));
                for pair in prev.chunks(2) {
                    let left = &pair[0];
                    let right = pair.get(1).unwrap_or(left);
                    next.push(node_hash(left, right));
                }
                levels.push(next);
            }
        }
        Ok(SortedMerkleTree { entries, levels })
    }

    /// An empty tree (a block with no addresses; only possible in tests).
    pub fn empty() -> Self {
        SortedMerkleTree {
            entries: Vec::new(),
            levels: Vec::new(),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// The raw tree root (all-zero when empty). Most callers want
    /// [`SortedMerkleTree::commitment`].
    pub fn root(&self) -> Hash256 {
        self.levels
            .last()
            .and_then(|l| l.first().copied())
            .unwrap_or(Hash256::ZERO)
    }

    /// The sealed commitment `H(tag || root || leaf_count)` stored in a
    /// block header.
    pub fn commitment(&self) -> Hash256 {
        commitment_hash(&self.root(), self.leaf_count())
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(Vec<u8>, u64)] {
        &self.entries
    }

    /// Looks up the committed value for `key`.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Builds the branch for the leaf at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (internal helper; the public
    /// entry point is [`SortedMerkleTree::prove`]).
    fn branch(&self, index: usize) -> SmtBranch {
        let (key, value) = self.entries[index].clone();
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = level.get(idx ^ 1).unwrap_or(&level[idx]);
            siblings.push(*sibling);
            idx /= 2;
        }
        SmtBranch {
            index: index as u64,
            key,
            value,
            siblings,
        }
    }

    /// Produces a presence or inexistence proof for `key`.
    pub fn prove(&self, key: &[u8]) -> SmtProof {
        let leaf_count = self.leaf_count();
        if self.entries.is_empty() {
            return SmtProof {
                leaf_count,
                kind: SmtProofKind::Empty,
            };
        }
        let kind = match self
            .entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
        {
            Ok(i) => SmtProofKind::Present(self.branch(i)),
            Err(0) => SmtProofKind::AbsentBelow {
                first: self.branch(0),
            },
            Err(i) if i == self.entries.len() => SmtProofKind::AbsentAbove {
                last: self.branch(self.entries.len() - 1),
            },
            Err(i) => SmtProofKind::AbsentBetween {
                predecessor: self.branch(i - 1),
                successor: self.branch(i),
            },
        };
        SmtProof { leaf_count, kind }
    }
}

/// One authentication path in an SMT, carrying its leaf data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SmtBranch {
    index: u64,
    key: Vec<u8>,
    value: u64,
    siblings: Vec<Hash256>,
}

impl SmtBranch {
    /// Creates a branch from parts (tests and adversarial simulations).
    pub fn from_parts(index: u64, key: Vec<u8>, value: u64, siblings: Vec<Hash256>) -> Self {
        SmtBranch {
            index,
            key,
            value,
            siblings,
        }
    }

    /// The leaf index this branch claims.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The leaf's key.
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// The leaf's committed value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The sibling hashes, leaf level first.
    pub fn siblings(&self) -> &[Hash256] {
        &self.siblings
    }

    /// Recomputes the root implied by this branch.
    pub fn compute_root(&self) -> Hash256 {
        let mut hash = leaf_hash(&self.key, self.value);
        let mut idx = self.index;
        for sibling in &self.siblings {
            hash = if idx.is_multiple_of(2) {
                node_hash(&hash, sibling)
            } else {
                node_hash(sibling, &hash)
            };
            idx /= 2;
        }
        hash
    }

    /// Checks this branch against a sealed commitment.
    ///
    /// # Errors
    ///
    /// Returns [`SmtError::IndexOutOfRange`] if the index exceeds
    /// `leaf_count` (this also rejects Bitcoin's duplicate-last-leaf
    /// ambiguity) and [`SmtError::CommitmentMismatch`] if the recomputed
    /// commitment differs.
    pub fn verify(&self, commitment: &Hash256, leaf_count: u64) -> Result<(), SmtError> {
        if self.index >= leaf_count {
            return Err(SmtError::IndexOutOfRange);
        }
        if commitment_hash(&self.compute_root(), leaf_count) != *commitment {
            return Err(SmtError::CommitmentMismatch);
        }
        Ok(())
    }
}

impl Encodable for SmtBranch {
    fn encode_into(&self, out: &mut Vec<u8>) {
        lvq_codec::write_compact_size(out, self.index);
        self.key.encode_into(out);
        self.value.encode_into(out);
        self.siblings.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        lvq_codec::compact_size_len(self.index)
            + self.key.encoded_len()
            + self.value.encoded_len()
            + self.siblings.encoded_len()
    }
}

impl Decodable for SmtBranch {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let index = lvq_codec::read_compact_size(reader)?;
        let key = Vec::<u8>::decode_from(reader)?;
        let value = u64::decode_from(reader)?;
        let siblings = Vec::<Hash256>::decode_from(reader)?;
        if siblings.len() > MAX_DEPTH {
            return Err(DecodeError::InvalidValue {
                what: "smt branch depth",
                found: siblings.len() as u64,
            });
        }
        Ok(SmtBranch {
            index,
            key,
            value,
            siblings,
        })
    }
}

/// The shape of an SMT proof.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SmtProofKind {
    /// The key is present with the branch's committed value.
    Present(SmtBranch),
    /// The key falls strictly between two adjacent leaves.
    AbsentBetween {
        /// Branch of the greatest leaf smaller than the key.
        predecessor: SmtBranch,
        /// Branch of the smallest leaf greater than the key.
        successor: SmtBranch,
    },
    /// The key is smaller than the first (index 0) leaf.
    AbsentBelow {
        /// Branch of the tree's first leaf.
        first: SmtBranch,
    },
    /// The key is greater than the last (index `count - 1`) leaf.
    AbsentAbove {
        /// Branch of the tree's last leaf.
        last: SmtBranch,
    },
    /// The tree is empty, so every key is absent.
    Empty,
}

/// A self-contained presence/inexistence proof for one key.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SmtProof {
    leaf_count: u64,
    kind: SmtProofKind,
}

impl SmtProof {
    /// Creates a proof from parts (tests and adversarial simulations).
    pub fn from_parts(leaf_count: u64, kind: SmtProofKind) -> Self {
        SmtProof { leaf_count, kind }
    }

    /// The committed leaf count this proof claims.
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    /// The proof's shape.
    pub fn kind(&self) -> &SmtProofKind {
        &self.kind
    }

    /// Verifies the proof for `key` against a sealed `commitment`.
    ///
    /// Returns `Some(value)` when the key is proven present with `value`,
    /// and `None` when it is proven absent.
    ///
    /// # Errors
    ///
    /// Returns an [`SmtError`] describing the first check that failed;
    /// a failed verification means the prover is faulty or malicious.
    pub fn verify(&self, key: &[u8], commitment: &Hash256) -> Result<Option<u64>, SmtError> {
        let count = self.leaf_count;
        match &self.kind {
            SmtProofKind::Present(branch) => {
                if branch.key() != key {
                    return Err(SmtError::KeyMismatch);
                }
                branch.verify(commitment, count)?;
                Ok(Some(branch.value()))
            }
            SmtProofKind::AbsentBetween {
                predecessor,
                successor,
            } => {
                if predecessor.index() + 1 != successor.index() {
                    return Err(SmtError::NotAdjacent);
                }
                if !(predecessor.key() < key && key < successor.key()) {
                    return Err(SmtError::OrderViolation);
                }
                predecessor.verify(commitment, count)?;
                successor.verify(commitment, count)?;
                Ok(None)
            }
            SmtProofKind::AbsentBelow { first } => {
                if first.index() != 0 {
                    return Err(SmtError::NotAdjacent);
                }
                if key >= first.key() {
                    return Err(SmtError::OrderViolation);
                }
                first.verify(commitment, count)?;
                Ok(None)
            }
            SmtProofKind::AbsentAbove { last } => {
                if count == 0 || last.index() != count - 1 {
                    return Err(SmtError::NotAdjacent);
                }
                if key <= last.key() {
                    return Err(SmtError::OrderViolation);
                }
                last.verify(commitment, count)?;
                Ok(None)
            }
            SmtProofKind::Empty => {
                if count != 0 || commitment_hash(&Hash256::ZERO, 0) != *commitment {
                    return Err(SmtError::CommitmentMismatch);
                }
                Ok(None)
            }
        }
    }
}

impl Encodable for SmtProof {
    fn encode_into(&self, out: &mut Vec<u8>) {
        lvq_codec::write_compact_size(out, self.leaf_count);
        match &self.kind {
            SmtProofKind::Present(b) => {
                out.push(0);
                b.encode_into(out);
            }
            SmtProofKind::AbsentBetween {
                predecessor,
                successor,
            } => {
                out.push(1);
                predecessor.encode_into(out);
                successor.encode_into(out);
            }
            SmtProofKind::AbsentBelow { first } => {
                out.push(2);
                first.encode_into(out);
            }
            SmtProofKind::AbsentAbove { last } => {
                out.push(3);
                last.encode_into(out);
            }
            SmtProofKind::Empty => out.push(4),
        }
    }

    fn encoded_len(&self) -> usize {
        lvq_codec::compact_size_len(self.leaf_count)
            + 1
            + match &self.kind {
                SmtProofKind::Present(b) => b.encoded_len(),
                SmtProofKind::AbsentBetween {
                    predecessor,
                    successor,
                } => predecessor.encoded_len() + successor.encoded_len(),
                SmtProofKind::AbsentBelow { first } => first.encoded_len(),
                SmtProofKind::AbsentAbove { last } => last.encoded_len(),
                SmtProofKind::Empty => 0,
            }
    }
}

impl Decodable for SmtProof {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let leaf_count = lvq_codec::read_compact_size(reader)?;
        let kind = match reader.read_u8()? {
            0 => SmtProofKind::Present(SmtBranch::decode_from(reader)?),
            1 => SmtProofKind::AbsentBetween {
                predecessor: SmtBranch::decode_from(reader)?,
                successor: SmtBranch::decode_from(reader)?,
            },
            2 => SmtProofKind::AbsentBelow {
                first: SmtBranch::decode_from(reader)?,
            },
            3 => SmtProofKind::AbsentAbove {
                last: SmtBranch::decode_from(reader)?,
            },
            4 => SmtProofKind::Empty,
            other => {
                return Err(DecodeError::InvalidValue {
                    what: "smt proof tag",
                    found: u64::from(other),
                })
            }
        };
        Ok(SmtProof { leaf_count, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_codec::decode_exact;
    use proptest::prelude::*;

    fn tree(keys: &[(&str, u64)]) -> SortedMerkleTree {
        SortedMerkleTree::new(
            keys.iter()
                .map(|(k, v)| (k.as_bytes().to_vec(), *v))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_keys() {
        let result = SortedMerkleTree::new(vec![(b"a".to_vec(), 1), (b"a".to_vec(), 2)]);
        assert_eq!(result.unwrap_err(), SmtError::DuplicateKey);
    }

    #[test]
    fn entries_are_sorted_regardless_of_input_order() {
        let t = tree(&[("c", 3), ("a", 1), ("b", 2)]);
        let keys: Vec<&[u8]> = t.entries().iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c"]);
    }

    #[test]
    fn presence_proof_roundtrip() {
        let t = tree(&[("addr1", 2), ("addr3", 1), ("addr5", 7)]);
        for (key, value) in [("addr1", 2u64), ("addr3", 1), ("addr5", 7)] {
            let proof = t.prove(key.as_bytes());
            assert_eq!(
                proof.verify(key.as_bytes(), &t.commitment()).unwrap(),
                Some(value)
            );
        }
    }

    #[test]
    fn absence_between() {
        let t = tree(&[("addr1", 2), ("addr3", 1), ("addr5", 7)]);
        let proof = t.prove(b"addr2");
        assert!(matches!(proof.kind(), SmtProofKind::AbsentBetween { .. }));
        assert_eq!(proof.verify(b"addr2", &t.commitment()).unwrap(), None);
    }

    #[test]
    fn absence_below_and_above() {
        let t = tree(&[("b", 1), ("c", 2)]);
        let below = t.prove(b"a");
        assert!(matches!(below.kind(), SmtProofKind::AbsentBelow { .. }));
        assert_eq!(below.verify(b"a", &t.commitment()).unwrap(), None);
        let above = t.prove(b"d");
        assert!(matches!(above.kind(), SmtProofKind::AbsentAbove { .. }));
        assert_eq!(above.verify(b"d", &t.commitment()).unwrap(), None);
    }

    #[test]
    fn empty_tree_proves_absence() {
        let t = SortedMerkleTree::empty();
        assert_eq!(t.leaf_count(), 0);
        let proof = t.prove(b"anything");
        assert_eq!(proof.verify(b"anything", &t.commitment()).unwrap(), None);
        // But an Empty proof against a non-empty commitment fails.
        let real = tree(&[("a", 1)]);
        assert_eq!(
            proof.verify(b"anything", &real.commitment()).unwrap_err(),
            SmtError::CommitmentMismatch
        );
    }

    #[test]
    fn forged_value_rejected() {
        let t = tree(&[("addr1", 2), ("addr3", 1)]);
        let proof = t.prove(b"addr1");
        let SmtProofKind::Present(branch) = proof.kind() else {
            panic!("expected presence proof");
        };
        let forged = SmtProof::from_parts(
            proof.leaf_count(),
            SmtProofKind::Present(SmtBranch::from_parts(
                branch.index(),
                branch.key().to_vec(),
                branch.value() + 1, // lie about the count
                branch.siblings().to_vec(),
            )),
        );
        assert_eq!(
            forged.verify(b"addr1", &t.commitment()).unwrap_err(),
            SmtError::CommitmentMismatch
        );
    }

    #[test]
    fn non_adjacent_pair_rejected() {
        let t = tree(&[("a", 1), ("c", 2), ("e", 3)]);
        // Honest adjacency proof for "b" uses indices 0 and 1; forge one
        // using indices 0 and 2 to "hide" leaf "c".
        let forged = SmtProof::from_parts(
            t.leaf_count(),
            SmtProofKind::AbsentBetween {
                predecessor: t.branch(0),
                successor: t.branch(2),
            },
        );
        assert_eq!(
            forged.verify(b"b", &t.commitment()).unwrap_err(),
            SmtError::NotAdjacent
        );
    }

    #[test]
    fn order_violation_rejected() {
        let t = tree(&[("a", 1), ("c", 2)]);
        let proof = t.prove(b"b");
        // The same proof cannot serve a key outside the interval.
        assert_eq!(
            proof.verify(b"d", &t.commitment()).unwrap_err(),
            SmtError::OrderViolation
        );
    }

    #[test]
    fn present_proof_for_wrong_key_rejected() {
        let t = tree(&[("a", 1), ("c", 2)]);
        let proof = t.prove(b"a");
        assert_eq!(
            proof.verify(b"c", &t.commitment()).unwrap_err(),
            SmtError::KeyMismatch
        );
    }

    #[test]
    fn duplicate_padding_cannot_fake_rightmost() {
        // Three leaves: level 0 pads [a,b,c] -> [a,b,c,c]. A branch for c
        // also hashes correctly at index 3, but index 3 >= leaf_count so
        // verification rejects it.
        let t = tree(&[("a", 1), ("b", 2), ("c", 3)]);
        let c = t.branch(2);
        let fake = SmtBranch::from_parts(3, c.key().to_vec(), c.value(), {
            // Sibling path for index 3: sibling is c itself at level 0,
            // then the (a,b) node.
            let mut sibs = vec![leaf_hash(b"c", 3)];
            sibs.push(node_hash(&leaf_hash(b"a", 1), &leaf_hash(b"b", 2)));
            sibs
        });
        // The hash path itself is consistent...
        assert_eq!(fake.compute_root(), t.root());
        // ...but the committed count kills it.
        assert_eq!(
            fake.verify(&t.commitment(), t.leaf_count()).unwrap_err(),
            SmtError::IndexOutOfRange
        );
    }

    #[test]
    fn codec_roundtrip_all_variants() {
        let t = tree(&[("a", 1), ("c", 2), ("e", 3)]);
        for key in [&b"a"[..], b"b", b"0", b"f"] {
            let proof = t.prove(key);
            let bytes = proof.encode();
            assert_eq!(bytes.len(), proof.encoded_len());
            assert_eq!(decode_exact::<SmtProof>(&bytes).unwrap(), proof);
        }
        let empty = SortedMerkleTree::empty().prove(b"x");
        assert_eq!(decode_exact::<SmtProof>(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut bytes = tree(&[("a", 1)]).prove(b"a").encode();
        bytes[1] = 9; // corrupt the kind tag (byte 0 is the leaf count)
        assert!(decode_exact::<SmtProof>(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn every_key_decidable(
            entries in proptest::collection::btree_map(
                proptest::collection::vec(any::<u8>(), 1..8), 1u64..100, 0..20),
            probe in proptest::collection::vec(any::<u8>(), 1..8),
        ) {
            let expected = entries.get(&probe).copied();
            let t = SortedMerkleTree::new(entries.into_iter().collect()).unwrap();
            let proof = t.prove(&probe);
            prop_assert_eq!(proof.verify(&probe, &t.commitment()).unwrap(), expected);
        }

        #[test]
        fn proof_does_not_verify_against_other_tree(
            entries in proptest::collection::btree_map(
                proptest::collection::vec(any::<u8>(), 1..6), 1u64..10, 1..10),
            probe in proptest::collection::vec(any::<u8>(), 1..6),
        ) {
            let t = SortedMerkleTree::new(entries.clone().into_iter().collect()).unwrap();
            let mut other_entries = entries;
            other_entries.insert(vec![0xFE, 0xFE, 0xFE, 0xFE, 0xFE, 0xFE, 0xFE], 1);
            let other = SortedMerkleTree::new(other_entries.into_iter().collect()).unwrap();
            prop_assume!(t.commitment() != other.commitment());
            let proof = t.prove(&probe);
            prop_assert!(proof.verify(&probe, &other.commitment()).is_err());
        }
    }
}
