//! The three authenticated tree structures of the LVQ paper.
//!
//! * [`mt`] — the plain **Merkle Tree** over a block's transactions
//!   (paper §II-A). Its branches prove *existence* of a transaction but
//!   cannot prove inexistence.
//! * [`smt`] — the **Sorted Merkle Tree** (paper §III-A, §IV-B2) over
//!   `(key, value)` leaves in lexicographic key order. Adjacent-leaf
//!   branch pairs prove *inexistence*, and a single branch proves a key's
//!   committed value (LVQ uses the value as the address's appearance
//!   count, solving Challenge 3).
//! * [`bmt`] — the **Bloom-filter-integrated Merkle Tree** (paper §III-B,
//!   §IV-B1): a perfect binary tree whose nodes carry Bloom filters, a
//!   parent's filter being the OR of its children (Eq. 3) and its hash
//!   binding child hashes and its own filter (Eq. 2). Merged pruned-tree
//!   branches prove inexistence across whole dyadic runs of blocks at the
//!   cost of one filter per *endpoint node*.
//!
//! # Examples
//!
//! Proving that a transaction is in a block:
//!
//! ```
//! use lvq_crypto::Hash256;
//! use lvq_merkle::mt::MerkleTree;
//!
//! let leaves: Vec<Hash256> = (0..5u8).map(|i| Hash256::hash(&[i])).collect();
//! let tree = MerkleTree::from_leaves(leaves.clone());
//! let branch = tree.branch(3).expect("index in range");
//! assert!(branch.verify(&leaves[3], &tree.root()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avl;
pub mod bmt;
pub mod mt;
pub mod smt;

pub use avl::{
    AvlError, AvlLink, AvlNode, AvlNodeStore, AvlProof, AvlProofStep, AvlTree, MemoryNodes,
};
pub use bmt::{
    Bmt, BmtBatchProof, BmtBatchProofStats, BmtBuilder, BmtCoverage, BmtError, BmtProof,
    BmtProofStats, BmtSource,
};
pub use mt::{MerkleBranch, MerkleTree};
pub use smt::{SmtBranch, SmtError, SmtProof, SmtProofKind, SortedMerkleTree};
