//! The plain Merkle tree over a block's transactions (paper §II-A).

use lvq_codec::{Decodable, DecodeError, Encodable, Reader};
use lvq_crypto::Hash256;

/// A Bitcoin-style binary Merkle tree.
///
/// Levels with an odd number of nodes duplicate their last node, exactly
/// as Bitcoin does. (Bitcoin's duplication rule permits known benign
/// mutations of the *tree*, CVE-2012-2459; branch verification here pins
/// the leaf **index** and the workspace's verifiers additionally bound
/// indices by committed counts, so the mutation does not affect proof
/// soundness.)
///
/// An empty tree has the all-zero root; blocks always contain a coinbase
/// transaction, so this case never occurs on a well-formed chain.
///
/// # Examples
///
/// ```
/// use lvq_crypto::Hash256;
/// use lvq_merkle::MerkleTree;
///
/// let leaves: Vec<Hash256> = (0..3u8).map(|i| Hash256::hash(&[i])).collect();
/// let tree = MerkleTree::from_leaves(leaves.clone());
/// let branch = tree.branch(1).expect("in range");
/// assert!(branch.verify(&leaves[1], &tree.root()));
/// assert!(!branch.verify(&leaves[0], &tree.root()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` is the leaf layer; the last level holds the root.
    levels: Vec<Vec<Hash256>>,
}

impl MerkleTree {
    /// Builds a tree over the given leaf hashes.
    pub fn from_leaves(leaves: Vec<Hash256>) -> Self {
        if leaves.is_empty() {
            return MerkleTree { levels: Vec::new() };
        }
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                // Odd level: duplicate the last node, Bitcoin-style.
                let right = pair.get(1).unwrap_or(left);
                next.push(Hash256::combine(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The Merkle root (all-zero for an empty tree).
    pub fn root(&self) -> Hash256 {
        self.levels
            .last()
            .and_then(|l| l.first().copied())
            .unwrap_or(Hash256::ZERO)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// True if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The leaf hashes.
    pub fn leaves(&self) -> &[Hash256] {
        self.levels.first().map_or(&[], Vec::as_slice)
    }

    /// Produces the branch (the paper's *MBr*) for the leaf at `index`,
    /// or `None` if the index is out of range.
    pub fn branch(&self, index: usize) -> Option<MerkleBranch> {
        if index >= self.len() {
            return None;
        }
        let mut siblings = Vec::with_capacity(self.levels.len().saturating_sub(1));
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            // When the level is odd-sized and we're the trailing node, the
            // sibling is our own duplicate.
            let sibling = level.get(sibling_idx).unwrap_or(&level[idx]);
            siblings.push(*sibling);
            idx /= 2;
        }
        Some(MerkleBranch {
            leaf_index: index as u64,
            siblings,
        })
    }
}

/// A Merkle branch: the authentication path from one leaf to the root.
///
/// Paper §II-A: a branch proves *existence* of a transaction in a block;
/// it cannot prove inexistence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MerkleBranch {
    leaf_index: u64,
    siblings: Vec<Hash256>,
}

impl MerkleBranch {
    /// Creates a branch from its parts (mainly useful in tests and
    /// adversarial simulations).
    pub fn from_parts(leaf_index: u64, siblings: Vec<Hash256>) -> Self {
        MerkleBranch {
            leaf_index,
            siblings,
        }
    }

    /// The index of the proven leaf.
    pub fn leaf_index(&self) -> u64 {
        self.leaf_index
    }

    /// The sibling hashes, leaf level first.
    pub fn siblings(&self) -> &[Hash256] {
        &self.siblings
    }

    /// Recomputes the root implied by `leaf` along this branch.
    pub fn compute_root(&self, leaf: &Hash256) -> Hash256 {
        let mut hash = *leaf;
        let mut idx = self.leaf_index;
        for sibling in &self.siblings {
            hash = if idx.is_multiple_of(2) {
                Hash256::combine(&hash, sibling)
            } else {
                Hash256::combine(sibling, &hash)
            };
            idx /= 2;
        }
        hash
    }

    /// True if `leaf` at this branch's index hashes up to `root`.
    pub fn verify(&self, leaf: &Hash256, root: &Hash256) -> bool {
        self.compute_root(leaf) == *root
    }
}

impl Encodable for MerkleBranch {
    fn encode_into(&self, out: &mut Vec<u8>) {
        lvq_codec::write_compact_size(out, self.leaf_index);
        self.siblings.encode_into(out);
    }

    fn encoded_len(&self) -> usize {
        lvq_codec::compact_size_len(self.leaf_index) + self.siblings.encoded_len()
    }
}

impl Decodable for MerkleBranch {
    fn decode_from(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let leaf_index = lvq_codec::read_compact_size(reader)?;
        let siblings = Vec::<Hash256>::decode_from(reader)?;
        if siblings.len() > 64 {
            return Err(DecodeError::InvalidValue {
                what: "merkle branch depth",
                found: siblings.len() as u64,
            });
        }
        Ok(MerkleBranch {
            leaf_index,
            siblings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvq_codec::decode_exact;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<Hash256> {
        (0..n)
            .map(|i| Hash256::hash(&(i as u64).to_le_bytes()))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = MerkleTree::from_leaves(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.root(), Hash256::ZERO);
        assert!(t.branch(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        let t = MerkleTree::from_leaves(l.clone());
        assert_eq!(t.root(), l[0]);
        let b = t.branch(0).unwrap();
        assert!(b.siblings().is_empty());
        assert!(b.verify(&l[0], &t.root()));
    }

    #[test]
    fn two_leaves_root_is_combine() {
        let l = leaves(2);
        let t = MerkleTree::from_leaves(l.clone());
        assert_eq!(t.root(), Hash256::combine(&l[0], &l[1]));
    }

    #[test]
    fn odd_count_duplicates_last() {
        let l = leaves(3);
        let t = MerkleTree::from_leaves(l.clone());
        let right = Hash256::combine(&l[2], &l[2]);
        let left = Hash256::combine(&l[0], &l[1]);
        assert_eq!(t.root(), Hash256::combine(&left, &right));
    }

    #[test]
    fn all_branches_verify_for_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 33] {
            let l = leaves(n);
            let t = MerkleTree::from_leaves(l.clone());
            for (i, leaf) in l.iter().enumerate() {
                let b = t.branch(i).unwrap();
                assert!(b.verify(leaf, &t.root()), "n={n} i={i}");
                assert_eq!(b.leaf_index(), i as u64);
            }
            assert!(t.branch(n).is_none());
        }
    }

    #[test]
    fn wrong_leaf_or_index_fails() {
        let l = leaves(8);
        let t = MerkleTree::from_leaves(l.clone());
        let b = t.branch(2).unwrap();
        assert!(!b.verify(&l[3], &t.root()));
        let moved = MerkleBranch::from_parts(3, b.siblings().to_vec());
        assert!(!moved.verify(&l[2], &t.root()));
    }

    #[test]
    fn tampered_sibling_fails() {
        let l = leaves(8);
        let t = MerkleTree::from_leaves(l.clone());
        let b = t.branch(5).unwrap();
        let mut siblings = b.siblings().to_vec();
        siblings[1] = Hash256::hash(b"forged");
        let forged = MerkleBranch::from_parts(5, siblings);
        assert!(!forged.verify(&l[5], &t.root()));
    }

    #[test]
    fn codec_roundtrip() {
        let t = MerkleTree::from_leaves(leaves(11));
        let b = t.branch(9).unwrap();
        let bytes = b.encode();
        assert_eq!(bytes.len(), b.encoded_len());
        assert_eq!(decode_exact::<MerkleBranch>(&bytes).unwrap(), b);
    }

    #[test]
    fn decode_rejects_absurd_depth() {
        let deep = MerkleBranch::from_parts(0, vec![Hash256::ZERO; 65]);
        assert!(decode_exact::<MerkleBranch>(&deep.encode()).is_err());
    }

    proptest! {
        #[test]
        fn every_leaf_provable(n in 1usize..40, probe in 0usize..40) {
            let probe = probe % n;
            let l = leaves(n);
            let t = MerkleTree::from_leaves(l.clone());
            let b = t.branch(probe).unwrap();
            prop_assert!(b.verify(&l[probe], &t.root()));
        }

        #[test]
        fn root_is_sensitive_to_any_leaf(n in 2usize..24, victim in 0usize..24) {
            let victim = victim % n;
            let mut l = leaves(n);
            let before = MerkleTree::from_leaves(l.clone()).root();
            l[victim] = Hash256::hash(b"mutant");
            let after = MerkleTree::from_leaves(l).root();
            prop_assert_ne!(before, after);
        }
    }
}
