//! Transfer-time estimation from measured bytes.

use std::time::Duration;

/// A simple link model: fixed round-trip latency plus serialisation at a
/// constant throughput.
///
/// The paper reports query-result *sizes*; this model turns the same
/// measurements into indicative transfer times for different link
/// classes, which the benches report alongside the sizes.
///
/// # Examples
///
/// ```
/// use lvq_node::BandwidthModel;
///
/// let dsl = BandwidthModel::new(10_000_000 / 8, 40); // 10 Mbit/s, 40 ms RTT
/// let t = dsl.transfer_time(1_250_000);
/// assert_eq!(t.as_millis(), 1_040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandwidthModel {
    bytes_per_sec: u64,
    rtt_ms: u64,
}

impl BandwidthModel {
    /// Creates a model from a throughput in bytes per second and a
    /// round-trip time in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(bytes_per_sec: u64, rtt_ms: u64) -> Self {
        assert!(bytes_per_sec > 0, "throughput must be positive");
        BandwidthModel {
            bytes_per_sec,
            rtt_ms,
        }
    }

    /// A home broadband link: 50 Mbit/s, 30 ms RTT.
    pub fn broadband() -> Self {
        BandwidthModel::new(50_000_000 / 8, 30)
    }

    /// A mobile link (the shop owner's phone in the paper's §I
    /// scenario): 5 Mbit/s, 80 ms RTT.
    pub fn mobile() -> Self {
        BandwidthModel::new(5_000_000 / 8, 80)
    }

    /// A LAN between servers like the paper's testbed: 1 Gbit/s, 1 ms.
    pub fn lan() -> Self {
        BandwidthModel::new(1_000_000_000 / 8, 1)
    }

    /// Estimated time for one request/response exchange carrying
    /// `bytes` in total.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let serialisation_ms = bytes.saturating_mul(1_000) / self.bytes_per_sec;
        Duration::from_millis(self.rtt_ms + serialisation_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_transfers() {
        let m = BandwidthModel::broadband();
        assert_eq!(m.transfer_time(0), Duration::from_millis(30));
    }

    #[test]
    fn throughput_dominates_large_transfers() {
        let m = BandwidthModel::new(1_000_000, 10);
        // 100 MB at 1 MB/s ~ 100 s.
        let t = m.transfer_time(100_000_000);
        assert_eq!(t, Duration::from_millis(100_010));
    }

    #[test]
    fn faster_links_are_faster() {
        let bytes = 10_000_000;
        assert!(
            BandwidthModel::lan().transfer_time(bytes)
                < BandwidthModel::broadband().transfer_time(bytes)
        );
        assert!(
            BandwidthModel::broadband().transfer_time(bytes)
                < BandwidthModel::mobile().transfer_time(bytes)
        );
    }

    #[test]
    #[should_panic(expected = "throughput")]
    fn zero_throughput_rejected() {
        BandwidthModel::new(0, 1);
    }
}
