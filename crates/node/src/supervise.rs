//! Self-healing task supervision: panic isolation, seeded-backoff
//! restart, and a stall watchdog for the long-lived node threads.
//!
//! A [`Supervised`] task wraps a worker body in [`catch_unwind`] and a
//! monitor thread. When the body panics or returns an error, the
//! monitor restarts it after a seeded decorrelated-jitter backoff —
//! deterministic for a given [`SupervisorConfig::seed`], so restart
//! storms replay exactly in tests. When the body stops heartbeating
//! through its [`WorkCtx`] while marked busy, the watchdog *abandons*
//! the attempt (its [`WorkCtx::live`] flips false, so a wedged thread
//! that eventually wakes finds itself fenced off and exits instead of
//! racing its replacement) and spawns a fresh one.
//!
//! Every health transition lands in a [`HealthCell`]:
//! [`HealthState::Healthy`] until the first restart, then
//! [`HealthState::Degraded`] with a static reason, and — once the
//! restart budget is exhausted — the sticky [`HealthState::Failed`].
//! Cells are cheap cloneable handles, so the server aggregates the
//! worst state across its proof workers, its request handlers, and an
//! attached ingest pipeline into one [`crate::ServerStats::health`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a supervised subsystem is doing, worst observation wins.
///
/// The reasons are `&'static str` so the state stays `Copy` and can
/// ride inside [`crate::ServerStats`] snapshots without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Running normally; no restarts, no stalls, no request panics.
    #[default]
    Healthy,
    /// Something recoverable happened (a restart, a stall, a panicked
    /// request) and the supervisor papered over it. The process keeps
    /// serving, but an operator should look.
    Degraded {
        /// What degraded, e.g. `"proof worker restarted"`.
        reason: &'static str,
    },
    /// A subsystem exhausted its restart budget and stays down. Sticky:
    /// nothing clears `Failed` short of a process restart.
    Failed {
        /// What gave up, e.g. `"ingest pipeline died repeatedly"`.
        reason: &'static str,
    },
}

impl HealthState {
    /// Severity for worst-wins aggregation.
    fn severity(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded { .. } => 1,
            HealthState::Failed { .. } => 2,
        }
    }

    /// The worse of two observations (`self` wins ties, so the first
    /// reason reported at a severity sticks).
    pub fn merge(self, other: HealthState) -> HealthState {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }

    /// The reason string, when one is attached.
    pub fn reason(self) -> Option<&'static str> {
        match self {
            HealthState::Healthy => None,
            HealthState::Degraded { reason } | HealthState::Failed { reason } => Some(reason),
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthState::Healthy => f.write_str("healthy"),
            HealthState::Degraded { reason } => write!(f, "degraded ({reason})"),
            HealthState::Failed { reason } => write!(f, "FAILED ({reason})"),
        }
    }
}

/// A shared, cloneable cell holding one subsystem's [`HealthState`].
///
/// Transitions only ever go up in severity ([`HealthCell::degrade`],
/// [`HealthCell::fail`]); [`HealthCell::resolve`] steps `Degraded`
/// back down once the subsystem proves itself again, but `Failed` is
/// sticky forever.
#[derive(Debug, Clone, Default)]
pub struct HealthCell {
    state: Arc<Mutex<HealthState>>,
}

impl HealthCell {
    /// A fresh `Healthy` cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current state.
    pub fn get(&self) -> HealthState {
        *self.state.lock().expect("health cell never poisoned")
    }

    /// Reports a recoverable incident. `Healthy` becomes `Degraded`;
    /// an existing `Degraded` keeps its first reason; `Failed` is
    /// untouched.
    pub fn degrade(&self, reason: &'static str) {
        let mut state = self.state.lock().expect("health cell never poisoned");
        if *state == HealthState::Healthy {
            *state = HealthState::Degraded { reason };
        }
    }

    /// Reports an unrecoverable failure; wins over everything and
    /// never clears.
    pub fn fail(&self, reason: &'static str) {
        let mut state = self.state.lock().expect("health cell never poisoned");
        if !matches!(*state, HealthState::Failed { .. }) {
            *state = HealthState::Failed { reason };
        }
    }

    /// Clears `Degraded` back to `Healthy` (a restarted subsystem has
    /// been running cleanly again); `Failed` stays.
    pub fn resolve(&self) {
        let mut state = self.state.lock().expect("health cell never poisoned");
        if matches!(*state, HealthState::Degraded { .. }) {
            *state = HealthState::Healthy;
        }
    }
}

/// Static description of one supervised task: its name and the health
/// reasons its incidents report. All `&'static str` so health
/// snapshots stay `Copy`.
#[derive(Debug, Clone, Copy)]
pub struct TaskSpec {
    /// Thread name.
    pub name: &'static str,
    /// `Degraded` reason after a panic/error restart.
    pub restart_reason: &'static str,
    /// `Degraded` reason after the watchdog abandoned a stalled
    /// attempt.
    pub stall_reason: &'static str,
    /// `Failed` reason once the restart budget is exhausted.
    pub fail_reason: &'static str,
}

/// Tuning knobs for a [`Supervised`] task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SupervisorConfig {
    /// Restarts tolerated before the task is declared
    /// [`HealthState::Failed`] and left down.
    pub max_restarts: u32,
    /// First backoff delay; later delays jitter upward from here.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Watchdog limit: an attempt that is marked busy but produces no
    /// heartbeat for this long is abandoned and replaced. `None`
    /// disables the watchdog.
    pub stall_timeout: Option<Duration>,
    /// A restarted attempt that runs this long without incident clears
    /// `Degraded` back to `Healthy`.
    pub recovered_after: Duration,
    /// On [`Supervised::shutdown`], how long to wait for a still-busy
    /// attempt before abandoning it (bounds shutdown even when a body
    /// is wedged).
    pub stop_deadline: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    /// 5 restarts, 10 ms–2 s backoff, 30 s watchdog, 500 ms to
    /// re-earn `Healthy`, 5 s stop deadline.
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(2),
            stall_timeout: Some(Duration::from_secs(30)),
            recovered_after: Duration::from_millis(500),
            stop_deadline: Duration::from_secs(5),
            seed: 0,
        }
    }
}

impl SupervisorConfig {
    /// Alias for [`SupervisorConfig::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the restart budget.
    #[must_use]
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Sets the backoff range.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Sets (or disables) the stall watchdog.
    #[must_use]
    pub fn with_stall_timeout(mut self, stall_timeout: Option<Duration>) -> Self {
        self.stall_timeout = stall_timeout;
        self
    }

    /// Sets how long a restarted attempt must run cleanly to clear
    /// `Degraded`.
    #[must_use]
    pub fn with_recovered_after(mut self, recovered_after: Duration) -> Self {
        self.recovered_after = recovered_after;
        self
    }

    /// Sets the shutdown drain deadline.
    #[must_use]
    pub fn with_stop_deadline(mut self, stop_deadline: Duration) -> Self {
        self.stop_deadline = stop_deadline;
        self
    }

    /// Sets the backoff jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Heartbeat shared between one attempt and its watchdog.
///
/// The attempt bumps `ticks` whenever it makes progress and flags
/// whether it is inside real work (`busy`) or parked waiting for input
/// (`idle`). The watchdog only counts staleness against *busy*
/// attempts — a worker parked on an empty queue is healthy, a worker
/// twelve minutes into one proof is not.
#[derive(Debug, Default)]
pub(crate) struct Beat {
    ticks: AtomicU64,
    busy: AtomicBool,
}

impl Beat {
    fn tick(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }
}

/// The handle a supervised body uses to cooperate with its monitor:
/// liveness checks, heartbeats, and the per-attempt stop flag.
///
/// Each attempt gets a *fresh* context. When the watchdog abandons a
/// stalled attempt, only that attempt's flag flips — the wedged thread
/// observes [`WorkCtx::live`] `== false` when it finally wakes and
/// bows out instead of writing over its replacement's work.
#[derive(Debug, Clone)]
pub struct WorkCtx {
    stop: Arc<AtomicBool>,
    beat: Arc<Beat>,
}

impl WorkCtx {
    /// A free-standing context that is always live and watched by
    /// nobody — for running a supervised-style body unsupervised.
    pub fn unsupervised() -> Self {
        WorkCtx {
            stop: Arc::new(AtomicBool::new(false)),
            beat: Arc::new(Beat::default()),
        }
    }

    /// Whether this attempt should keep going. `false` once the task
    /// is shutting down *or* the watchdog abandoned this attempt.
    pub fn live(&self) -> bool {
        !self.stop.load(Ordering::SeqCst)
    }

    /// The raw stop flag, for loops that take an
    /// [`AtomicBool`] directly.
    pub fn stop_flag(&self) -> &Arc<AtomicBool> {
        &self.stop
    }

    /// Heartbeat: the attempt is entering (or progressing through)
    /// real work. Call at least once per unit of work so the watchdog
    /// can tell a long queue from a wedged thread.
    pub fn busy(&self) {
        self.beat.busy.store(true, Ordering::Relaxed);
        self.beat.tick();
    }

    /// Heartbeat: the attempt is parked waiting for input; staleness
    /// no longer counts against it.
    pub fn idle(&self) {
        self.beat.busy.store(false, Ordering::Relaxed);
        self.beat.tick();
    }
}

/// Why one attempt ended, as seen by the monitor.
enum AttemptEnd {
    /// The body returned `Ok` — a clean, voluntary exit (normally only
    /// after its stop flag was raised). The task is done; no restart.
    Clean,
    /// The body returned an error or panicked.
    Crashed,
    /// The watchdog abandoned the attempt: busy with no heartbeat for
    /// longer than [`SupervisorConfig::stall_timeout`].
    Stalled,
}

/// `splitmix64`: the same tiny deterministic mixer the store's crash
/// injection uses, for seeded backoff jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Decorrelated-jitter backoff: uniformly in `[base, prev * 3]`,
/// clamped to `[base, cap]`. Deterministic in `(seed, restart index)`.
fn backoff_delay(config: &SupervisorConfig, seed: u64, restart: u32, prev: Duration) -> Duration {
    let base = config.backoff_base.max(Duration::from_millis(1));
    let cap = config.backoff_cap.max(base);
    let span_ms = (prev.as_millis() as u64)
        .saturating_mul(3)
        .clamp(base.as_millis() as u64, cap.as_millis() as u64);
    let low = base.as_millis() as u64;
    let width = span_ms.saturating_sub(low).saturating_add(1);
    let pick = low + splitmix64(seed ^ u64::from(restart)) % width;
    Duration::from_millis(pick).min(cap)
}

/// Sleeps `total`, waking early when `stop` is raised.
fn interruptible_sleep(total: Duration, stop: &AtomicBool) {
    let mut remaining = total;
    let chunk = Duration::from_millis(5);
    while !remaining.is_zero() && !stop.load(Ordering::SeqCst) {
        let step = remaining.min(chunk);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// How often the monitor thread polls its attempt.
const MONITOR_POLL: Duration = Duration::from_millis(5);

/// A long-lived task kept alive by a monitor thread: panic isolation,
/// seeded-backoff restarts, stall watchdog, bounded shutdown. See the
/// module docs.
#[derive(Debug)]
pub struct Supervised {
    stop: Arc<AtomicBool>,
    restarts: Arc<AtomicU64>,
    health: HealthCell,
    monitor: Option<JoinHandle<()>>,
}

impl Supervised {
    /// Spawns `body` under supervision.
    ///
    /// `body` is called once per attempt with a fresh [`WorkCtx`]; it
    /// must check [`WorkCtx::live`] regularly and return `Ok(())` when
    /// told to stop. `Err(reason)` and panics both trigger a restart
    /// (until the budget runs out); `restarts` is incremented on every
    /// restart so callers can aggregate a counter across a pool.
    pub fn spawn<F>(
        spec: TaskSpec,
        config: SupervisorConfig,
        health: HealthCell,
        restarts: Arc<AtomicU64>,
        body: F,
    ) -> Supervised
    where
        F: Fn(WorkCtx) -> Result<(), String> + Send + Sync + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let body = Arc::new(body);
        let monitor = {
            let stop = Arc::clone(&stop);
            let restarts = Arc::clone(&restarts);
            let health = health.clone();
            std::thread::Builder::new()
                .name(format!("{}-monitor", spec.name))
                .spawn(move || monitor_loop(spec, config, &health, &restarts, &stop, &body))
                .expect("spawning a monitor thread")
        };
        Supervised {
            stop,
            restarts,
            health,
            monitor: Some(monitor),
        }
    }

    /// This task's health cell (cloneable; aggregate with
    /// [`HealthState::merge`]).
    pub fn health(&self) -> &HealthCell {
        &self.health
    }

    /// Restarts performed so far (shared counter handed to
    /// [`Supervised::spawn`]).
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Whether the monitor (and therefore the task) is still running.
    pub fn is_running(&self) -> bool {
        self.monitor.as_ref().is_some_and(|m| !m.is_finished())
    }

    /// Signals stop and joins the monitor. The current attempt gets
    /// [`SupervisorConfig::stop_deadline`] to drain; a wedged attempt
    /// is abandoned so shutdown always terminates.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
    }
}

impl Drop for Supervised {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn monitor_loop<F>(
    spec: TaskSpec,
    config: SupervisorConfig,
    health: &HealthCell,
    restarts: &AtomicU64,
    stop: &AtomicBool,
    body: &Arc<F>,
) where
    F: Fn(WorkCtx) -> Result<(), String> + Send + Sync + 'static,
{
    let mut restart = 0u32;
    let mut prev_delay = config.backoff_base;
    loop {
        let ctx = WorkCtx {
            stop: Arc::new(AtomicBool::new(stop.load(Ordering::SeqCst))),
            beat: Arc::new(Beat::default()),
        };
        if !ctx.live() {
            return;
        }
        // Run the attempt on its own thread so the monitor can watch
        // it from outside; catch_unwind turns a panic into a result.
        // AssertUnwindSafe is sound here: the body only communicates
        // through atomics, channels, and mutexes designed to survive a
        // dead peer, and a panicked attempt's partial state dies with
        // the attempt.
        let attempt = {
            let body = Arc::clone(body);
            let ctx = ctx.clone();
            std::thread::Builder::new()
                .name(spec.name.to_string())
                .spawn(move || catch_unwind(AssertUnwindSafe(|| body(ctx))))
                .expect("spawning an attempt thread")
        };
        let started = Instant::now();
        let mut last_ticks = 0u64;
        let mut last_change = Instant::now();
        let mut recovered = false;
        let end = loop {
            if attempt.is_finished() {
                break match attempt.join() {
                    Ok(Ok(Ok(()))) => AttemptEnd::Clean,
                    Ok(Ok(Err(_reason))) => AttemptEnd::Crashed,
                    Ok(Err(_)) | Err(_) => AttemptEnd::Crashed,
                };
            }
            if stop.load(Ordering::SeqCst) {
                // Shutdown: give the attempt its drain window, then
                // abandon it (live() is already false).
                ctx.stop.store(true, Ordering::SeqCst);
                let deadline = Instant::now() + config.stop_deadline;
                while !attempt.is_finished() && Instant::now() < deadline {
                    std::thread::sleep(MONITOR_POLL);
                }
                if attempt.is_finished() {
                    let _ = attempt.join();
                }
                return;
            }
            // Stall watchdog: busy with a frozen heartbeat too long.
            let ticks = ctx.beat.ticks.load(Ordering::Relaxed);
            if ticks != last_ticks {
                last_ticks = ticks;
                last_change = Instant::now();
            } else if let Some(limit) = config.stall_timeout {
                if ctx.beat.busy.load(Ordering::Relaxed) && last_change.elapsed() > limit {
                    break AttemptEnd::Stalled;
                }
            }
            // A restarted attempt that has run cleanly long enough
            // (and shown a heartbeat) re-earns Healthy.
            if restart > 0 && !recovered && ticks > 0 && started.elapsed() >= config.recovered_after
            {
                recovered = true;
                health.resolve();
            }
            std::thread::sleep(MONITOR_POLL);
        };
        match end {
            AttemptEnd::Clean => return,
            AttemptEnd::Crashed | AttemptEnd::Stalled => {
                if let AttemptEnd::Stalled = end {
                    // Fence the wedged thread off before replacing it:
                    // when it wakes it sees live() == false and exits
                    // instead of racing the new attempt. The thread
                    // itself is leaked — a hung join would hang the
                    // supervisor too.
                    ctx.stop.store(true, Ordering::SeqCst);
                }
                restart += 1;
                restarts.fetch_add(1, Ordering::Relaxed);
                if restart > config.max_restarts {
                    health.fail(spec.fail_reason);
                    return;
                }
                health.degrade(match end {
                    AttemptEnd::Stalled => spec.stall_reason,
                    _ => spec.restart_reason,
                });
                let delay = backoff_delay(&config, config.seed, restart, prev_delay);
                prev_delay = delay;
                interruptible_sleep(delay, stop);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TaskSpec {
        TaskSpec {
            name: "test-task",
            restart_reason: "test task restarted",
            stall_reason: "test task stalled",
            fail_reason: "test task died repeatedly",
        }
    }

    fn fast_config() -> SupervisorConfig {
        SupervisorConfig::new()
            .with_backoff(Duration::from_millis(1), Duration::from_millis(5))
            .with_recovered_after(Duration::from_millis(30))
            .with_stop_deadline(Duration::from_millis(500))
    }

    /// Polls until `pred` holds or the deadline passes.
    fn wait_for(pred: impl Fn() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !pred() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn health_cell_transitions_and_stickiness() {
        let cell = HealthCell::new();
        assert_eq!(cell.get(), HealthState::Healthy);
        cell.degrade("a");
        cell.degrade("b");
        assert_eq!(cell.get(), HealthState::Degraded { reason: "a" });
        cell.resolve();
        assert_eq!(cell.get(), HealthState::Healthy);
        cell.fail("dead");
        cell.degrade("c");
        cell.resolve();
        assert_eq!(cell.get(), HealthState::Failed { reason: "dead" });
    }

    #[test]
    fn merge_takes_the_worst_and_first_reason_wins_ties() {
        let h = HealthState::Healthy;
        let d1 = HealthState::Degraded { reason: "one" };
        let d2 = HealthState::Degraded { reason: "two" };
        let f = HealthState::Failed { reason: "gone" };
        assert_eq!(h.merge(d1), d1);
        assert_eq!(d1.merge(d2), d1);
        assert_eq!(d1.merge(f), f);
        assert_eq!(f.merge(d1), f);
        assert_eq!(format!("{d1}"), "degraded (one)");
    }

    #[test]
    fn panicking_body_is_restarted_and_health_recovers() {
        let cell = HealthCell::new();
        let restarts = Arc::new(AtomicU64::new(0));
        let calls = Arc::new(AtomicU64::new(0));
        let body_calls = Arc::clone(&calls);
        let mut task = Supervised::spawn(
            spec(),
            fast_config(),
            cell.clone(),
            Arc::clone(&restarts),
            move |ctx| {
                if body_calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected panic");
                }
                while ctx.live() {
                    ctx.idle();
                    std::thread::sleep(Duration::from_millis(2));
                }
                Ok(())
            },
        );
        wait_for(|| restarts.load(Ordering::SeqCst) == 1, "the restart");
        // The second attempt heartbeats cleanly, so Degraded clears.
        wait_for(|| cell.get() == HealthState::Healthy, "recovery");
        assert!(task.is_running());
        task.shutdown();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(task.restarts(), 1);
    }

    #[test]
    fn exhausted_restart_budget_fails_sticky() {
        let cell = HealthCell::new();
        let restarts = Arc::new(AtomicU64::new(0));
        let mut task = Supervised::spawn(
            spec(),
            fast_config().with_max_restarts(2),
            cell.clone(),
            Arc::clone(&restarts),
            |_ctx| Err("always broken".to_string()),
        );
        wait_for(|| !task.is_running(), "the monitor to give up");
        assert_eq!(
            cell.get(),
            HealthState::Failed {
                reason: "test task died repeatedly"
            }
        );
        assert_eq!(task.restarts(), 3); // budget of 2 + the one that tripped it
        task.shutdown();
    }

    #[test]
    fn stalled_busy_attempt_is_abandoned_and_replaced() {
        let cell = HealthCell::new();
        let restarts = Arc::new(AtomicU64::new(0));
        let attempts = Arc::new(AtomicU64::new(0));
        let body_attempts = Arc::clone(&attempts);
        let abandoned_live = Arc::new(AtomicBool::new(true));
        let body_abandoned = Arc::clone(&abandoned_live);
        let mut task = Supervised::spawn(
            spec(),
            fast_config().with_stall_timeout(Some(Duration::from_millis(40))),
            cell.clone(),
            Arc::clone(&restarts),
            move |ctx| {
                if body_attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    // Wedge: mark busy, then stop heartbeating.
                    ctx.busy();
                    std::thread::sleep(Duration::from_millis(300));
                    // The watchdog must have fenced this attempt off.
                    body_abandoned.store(ctx.live(), Ordering::SeqCst);
                    return Ok(());
                }
                while ctx.live() {
                    ctx.idle();
                    std::thread::sleep(Duration::from_millis(2));
                }
                Ok(())
            },
        );
        wait_for(|| restarts.load(Ordering::SeqCst) == 1, "the stall restart");
        wait_for(
            || attempts.load(Ordering::SeqCst) == 2,
            "the replacement attempt",
        );
        // Wait out the wedged first attempt, then check it saw the fence.
        std::thread::sleep(Duration::from_millis(350));
        assert!(
            !abandoned_live.load(Ordering::SeqCst),
            "the abandoned attempt still believed it was live"
        );
        task.shutdown();
    }

    #[test]
    fn shutdown_is_bounded_even_with_a_wedged_body() {
        let cell = HealthCell::new();
        let restarts = Arc::new(AtomicU64::new(0));
        let mut task = Supervised::spawn(
            spec(),
            fast_config().with_stop_deadline(Duration::from_millis(50)),
            cell,
            restarts,
            |ctx| {
                ctx.busy();
                // Ignores live() entirely: the worst-behaved body.
                std::thread::sleep(Duration::from_secs(30));
                let _ = ctx;
                Ok(())
            },
        );
        std::thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        task.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown hung on a wedged attempt"
        );
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let config = SupervisorConfig::new()
            .with_backoff(Duration::from_millis(10), Duration::from_millis(200));
        let mut prev = config.backoff_base;
        for restart in 1..=10u32 {
            let a = backoff_delay(&config, 7, restart, prev);
            let b = backoff_delay(&config, 7, restart, prev);
            assert_eq!(a, b, "same seed and index must give the same delay");
            assert!(a >= Duration::from_millis(10) && a <= Duration::from_millis(200));
            prev = a;
        }
        // A different seed diverges somewhere in the first few picks.
        let diverges = (1..=5u32).any(|r| {
            backoff_delay(&config, 1, r, config.backoff_base)
                != backoff_delay(&config, 2, r, config.backoff_base)
        });
        assert!(diverges, "jitter ignored the seed");
    }
}
