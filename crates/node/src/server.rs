//! A bounded worker-pool TCP server around one shared [`FullNode`].
//!
//! An acceptor thread pushes accepted connections into a bounded
//! channel consumed by N worker threads; each worker owns a connection
//! for the lifetime of its session and loops `read frame →
//! handle_classified → write frame`. When the queue is full the
//! acceptor sheds load by answering [`Message::Busy`] and closing,
//! instead of letting the client hang. Every worker shares one
//! `Arc<FullNode>`, so concurrent clients warm (and profit from) the
//! same span-filter and SMT memo caches — the effect the
//! `repro concurrent` experiment measures; `repro pool` sweeps the
//! worker count.
//!
//! Faults are split by layer: payload-level faults (bad version,
//! unknown tag, malformed body, prover refusal) are answered with a
//! structured [`Message::Error`] and the connection stays open;
//! frame-level faults (oversized announcement, truncated frame) still
//! drop the connection, because a length-prefixed stream cannot be
//! resynchronised after a bad prefix.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use lvq_codec::Encodable;

use crate::frame::{read_frame_or_event, write_frame, FrameEvent, MAX_FRAME_LEN};
use crate::full::{FullNode, Handled, RequestKind};
use crate::ingest::{IngestMonitor, IngestStats};
use crate::message::{Message, NodeError, WireError, WireErrorCode};

/// How often parked workers and the acceptor re-check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(25);

/// Something a [`NodeServer`] can put behind its worker pool.
///
/// [`FullNode`] is the production implementation; experiment harnesses
/// substitute adversarial nodes (e.g. a withholding peer for the
/// `repro quorum` experiment).
pub trait ServeNode: Send + Sync + 'static {
    /// Classifies and handles one request; never fails (faults become
    /// encoded [`Message::Error`] responses). See
    /// [`FullNode::handle_classified`].
    fn handle_classified(&self, request: &[u8]) -> Handled;
}

impl<S: lvq_chain::BlockSource + 'static, T: lvq_chain::TableSource + 'static> ServeNode
    for FullNode<S, T>
{
    fn handle_classified(&self, request: &[u8]) -> Handled {
        FullNode::handle_classified(self, request)
    }
}

/// Tuning knobs for a [`NodeServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Socket read timeout per connection. Doubles as the stop-flag
    /// polling interval for idle connections, and as the stall limit
    /// for a peer that goes silent mid-frame.
    pub read_timeout: Duration,
    /// Socket write timeout per connection.
    pub write_timeout: Duration,
    /// Largest request frame accepted; oversized announcements close
    /// the connection without allocating.
    pub max_frame_len: u32,
    /// Worker threads in the pool; `0` means one per available CPU.
    /// A worker owns a connection for its whole session, so this is
    /// also the number of *simultaneously served* connections.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before the
    /// acceptor sheds new ones with [`Message::Busy`] (minimum 1).
    pub accept_queue: usize,
    /// Per-request deadline, distinct from the per-connection idle
    /// `read_timeout`: when the response to a request is ready only
    /// after this long, the server sends a small
    /// [`WireErrorCode::DeadlineExceeded`] error instead of the
    /// payload. `None` disables the deadline.
    pub request_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    /// 200 ms timeouts (snappy shutdown on loopback), 64 MiB frames,
    /// auto-sized pool, 64-deep accept queue, no request deadline.
    ///
    /// The `LVQ_SERVER_WORKERS` environment variable, when set to a
    /// positive integer, overrides the auto-sized pool — the hook CI
    /// uses to run the whole test suite against a fixed pool width.
    fn default() -> Self {
        let workers = std::env::var("LVQ_SERVER_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        ServerConfig {
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(200),
            max_frame_len: MAX_FRAME_LEN,
            workers,
            accept_queue: 64,
            request_deadline: None,
        }
    }
}

impl ServerConfig {
    /// The pool width this configuration resolves to: `workers`, or
    /// one per available CPU when `workers` is zero.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.workers
        }
    }
}

/// Requests answered, broken down by request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestCounters {
    /// [`Message::GetHeaders`] requests.
    pub get_headers: u64,
    /// [`Message::GetHeadersFrom`] requests.
    pub get_headers_from: u64,
    /// Single-address [`Message::QueryRequest`]s.
    pub queries: u64,
    /// [`Message::BatchQueryRequest`]s.
    pub batch_queries: u64,
    /// Payloads that never classified as a request (bad version,
    /// unknown tag, malformed body, response-kind message).
    pub invalid: u64,
}

impl RequestCounters {
    /// All requests read off the wire, valid or not.
    pub fn total(&self) -> u64 {
        self.get_headers + self.get_headers_from + self.queries + self.batch_queries + self.invalid
    }
}

/// A digest of the request-latency histogram, in microseconds from
/// frame-read completion to response-ready. Only successfully answered
/// requests are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Requests recorded.
    pub count: u64,
    /// Mean latency.
    pub mean_us: u64,
    /// Median latency (log₂-bucket interpolation).
    pub p50_us: u64,
    /// 95th-percentile latency.
    pub p95_us: u64,
    /// 99th-percentile latency.
    pub p99_us: u64,
    /// Exact maximum latency.
    pub max_us: u64,
}

/// Point-in-time counters of a running (or stopped) server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime (including
    /// those shed with [`Message::Busy`]).
    pub connections: u64,
    /// Requests answered successfully.
    pub requests: u64,
    /// Faulty exchanges: structured [`Message::Error`] responses plus
    /// connections dropped on frame-level faults (malformed prefix,
    /// oversized announcement, mid-frame disconnect, write failure).
    pub errors: u64,
    /// Request payload bytes received (framing excluded).
    pub request_bytes: u64,
    /// Response payload bytes sent (framing excluded).
    pub response_bytes: u64,
    /// Connections shed with [`Message::Busy`] because the accept
    /// queue was full.
    pub busy: u64,
    /// Requests whose response was ready only after the per-request
    /// deadline and was therefore replaced with a
    /// [`WireErrorCode::DeadlineExceeded`] error.
    pub deadline_misses: u64,
    /// High-water mark of connections waiting in the accept queue.
    pub queue_highwater: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Requests broken down by kind.
    pub by_kind: RequestCounters,
    /// Latency digest of successfully answered requests.
    pub latency: LatencySummary,
    /// Counters of the ingest pipeline growing the served chain, when
    /// one is attached ([`NodeServer::attach_ingest`]); all zeros for a
    /// frozen-chain server.
    pub ingest: IngestStats,
}

/// Lock-free log₂-bucketed histogram of microsecond latencies.
///
/// Bucket 0 holds exactly 0 µs; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`.
/// Percentiles interpolate linearly inside the hit bucket, and the
/// exact maximum is tracked separately, so tail estimates never exceed
/// an observed value.
#[derive(Debug)]
struct LatencyHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_of(us: u64) -> usize {
        (u64::BITS - us.leading_zeros()) as usize
    }

    fn record(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    fn summary(&self) -> LatencySummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max_us = self.max_us.load(Ordering::Relaxed);
        if count == 0 {
            return LatencySummary::default();
        }
        let percentile = |p: f64| -> u64 {
            let target = ((p * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if seen + c >= target {
                    let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                    let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                    let within = (target - seen) as f64 / c as f64;
                    let estimate = lower + ((upper - lower) as f64 * within) as u64;
                    return estimate.min(max_us);
                }
                seen += c;
            }
            max_us
        };
        LatencySummary {
            count,
            mean_us: self.sum_us.load(Ordering::Relaxed) / count,
            p50_us: percentile(0.50),
            p95_us: percentile(0.95),
            p99_us: percentile(0.99),
            max_us,
        }
    }
}

#[derive(Debug)]
struct Shared<P> {
    node: Arc<P>,
    config: ServerConfig,
    pool_size: usize,
    stop: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    request_bytes: AtomicU64,
    response_bytes: AtomicU64,
    busy: AtomicU64,
    deadline_misses: AtomicU64,
    queue_highwater: AtomicU64,
    /// One counter per [`RequestKind`], indexed by `kind_index`.
    by_kind: [AtomicU64; 5],
    latency: LatencyHistogram,
    /// Counters of an attached ingest pipeline, if any.
    ingest: parking_lot::Mutex<Option<IngestMonitor>>,
}

fn kind_index(kind: RequestKind) -> usize {
    match kind {
        RequestKind::GetHeaders => 0,
        RequestKind::GetHeadersFrom => 1,
        RequestKind::Query => 2,
        RequestKind::BatchQuery => 3,
        RequestKind::Invalid => 4,
    }
}

impl<P> Shared<P> {
    fn stats(&self) -> ServerStats {
        let kind = |k: RequestKind| self.by_kind[kind_index(k)].load(Ordering::Relaxed);
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            request_bytes: self.request_bytes.load(Ordering::Relaxed),
            response_bytes: self.response_bytes.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            queue_highwater: self.queue_highwater.load(Ordering::Relaxed),
            workers: self.pool_size as u64,
            by_kind: RequestCounters {
                get_headers: kind(RequestKind::GetHeaders),
                get_headers_from: kind(RequestKind::GetHeadersFrom),
                queries: kind(RequestKind::Query),
                batch_queries: kind(RequestKind::BatchQuery),
                invalid: kind(RequestKind::Invalid),
            },
            latency: self.latency.summary(),
            ingest: self
                .ingest
                .lock()
                .as_ref()
                .map(IngestMonitor::snapshot)
                .unwrap_or_default(),
        }
    }
}

/// A running TCP query server with a bounded worker pool.
///
/// Created with [`NodeServer::bind`]; serves until [`shutdown`]
/// (graceful: in-flight requests complete, every thread joins) or drop
/// (same, implicitly). Generic over the served node so experiment
/// harnesses can stand up adversarial peers; defaults to [`FullNode`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use lvq_bloom::BloomParams;
/// use lvq_chain::{Address, ChainBuilder, Transaction};
/// use lvq_core::{Scheme, SchemeConfig};
/// use lvq_node::{FullNode, LightNode, NodeServer, QuerySpec, ServerConfig, TcpTransport};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2)?, 4)?;
/// let mut builder = ChainBuilder::new(config.chain_params())?;
/// builder.push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, 1)])?;
/// let full = Arc::new(FullNode::new(builder.finish())?);
///
/// let server = NodeServer::bind(full, "127.0.0.1:0", ServerConfig::default())?;
/// let mut peer = TcpTransport::connect(server.local_addr())?;
/// let mut light = LightNode::sync_from(&mut peer, config)?;
/// let run = light.run(&QuerySpec::address(Address::new("1Miner")), &mut peer)?;
/// assert_eq!(run.histories[0].transactions.len(), 1);
/// drop(peer);
/// let stats = server.shutdown();
/// assert_eq!(stats.requests, 2); // headers + query
/// assert_eq!(stats.by_kind.get_headers, 1);
/// assert_eq!(stats.by_kind.queries, 1);
/// assert_eq!(stats.latency.count, 2);
/// # Ok(())
/// # }
/// ```
///
/// [`shutdown`]: NodeServer::shutdown
#[derive(Debug)]
pub struct NodeServer<P: ServeNode = FullNode> {
    shared: Arc<Shared<P>>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl<P: ServeNode> NodeServer<P> {
    /// Binds `addr` (use port 0 for an OS-assigned port, then
    /// [`NodeServer::local_addr`]), spawns the worker pool, and starts
    /// accepting.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the listener cannot be bound.
    pub fn bind(
        node: Arc<P>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Self, NodeError> {
        let bind_err = |context: &'static str| {
            move |e: std::io::Error| NodeError::Io {
                context,
                kind: e.kind(),
            }
        };
        let listener = TcpListener::bind(addr).map_err(bind_err("bind"))?;
        // Nonblocking accept so the loop can poll the stop flag.
        listener.set_nonblocking(true).map_err(bind_err("bind"))?;
        let local_addr = listener.local_addr().map_err(bind_err("bind"))?;

        let pool_size = config.effective_workers();
        let shared = Arc::new(Shared {
            node,
            config,
            pool_size,
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            request_bytes: AtomicU64::new(0),
            response_bytes: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            queue_highwater: AtomicU64::new(0),
            by_kind: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: LatencyHistogram::new(),
            ingest: parking_lot::Mutex::new(None),
        });
        let (tx, rx) = channel::bounded::<TcpStream>(config.accept_queue.max(1));

        let workers = (0..pool_size)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, &accept_shared, &tx);
        });

        Ok(NodeServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counters (callable while serving).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Attaches the counters of an ingest pipeline growing this
    /// server's chain ([`crate::IngestHandle::monitor`]), so
    /// [`ServerStats::ingest`] reports ingest progress alongside the
    /// serving counters.
    pub fn attach_ingest(&self, monitor: IngestMonitor) {
        *self.shared.ingest.lock() = Some(monitor);
    }

    /// The served node, e.g. to read [`FullNode::engine_stats`]
    /// alongside [`NodeServer::stats`].
    pub fn full(&self) -> &Arc<P> {
        &self.shared.node
    }

    /// Stops accepting, drains in-flight requests, joins every thread,
    /// and returns the final counters. A request already read off a
    /// socket is answered before its worker exits; connections still
    /// waiting in the accept queue are closed unserved; idle
    /// connections close within roughly one read timeout.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_and_join();
        self.shared.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<P: ServeNode> Drop for NodeServer<P> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<P: ServeNode>(
    listener: &TcpListener,
    shared: &Arc<Shared<P>>,
    tx: &Sender<TcpStream>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are written as header + payload; without
                // nodelay, Nagle delays the payload a full ACK round
                // trip. Best-effort, as on the client side.
                let _ = stream.set_nodelay(true);
                shared.connections.fetch_add(1, Ordering::Relaxed);
                match tx.try_send(stream) {
                    Ok(()) => {
                        shared
                            .queue_highwater
                            .fetch_max(tx.len() as u64, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(stream)) => shed(shared, stream),
                    // All workers gone: nothing can serve, stop
                    // accepting.
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    // Dropping `tx` (with its per-worker clones already consumed by the
    // pool) leaves queued, never-served connections to be closed when
    // the last worker drops the channel.
}

/// Backpressure: answer an over-quota connection with one `Busy` frame
/// and close it, so the client learns to retry instead of hanging.
fn shed<P: ServeNode>(shared: &Arc<Shared<P>>, mut stream: TcpStream) {
    shared.busy.fetch_add(1, Ordering::Relaxed);
    let payload = Message::Busy.encode();
    let configured = stream
        .set_nonblocking(false)
        .and_then(|()| stream.set_write_timeout(Some(shared.config.write_timeout)));
    if configured.is_ok() && write_frame(&mut stream, &payload).is_ok() {
        shared
            .response_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
    }
}

fn worker_loop<P: ServeNode>(shared: &Arc<Shared<P>>, rx: &Receiver<TcpStream>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match rx.recv_timeout(STOP_POLL) {
            Ok(stream) => serve_connection(shared, stream),
            Err(channel::RecvTimeoutError::Timeout) => {}
            Err(channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn serve_connection<P: ServeNode>(shared: &Arc<Shared<P>>, mut stream: TcpStream) {
    // The accept listener is nonblocking; accepted sockets inherit
    // nothing on some platforms and everything on others, so set the
    // mode explicitly and rely on timeouts for stop-flag polling.
    let configured = stream
        .set_nonblocking(false)
        .and_then(|()| stream.set_read_timeout(Some(shared.config.read_timeout)))
        .and_then(|()| stream.set_write_timeout(Some(shared.config.write_timeout)));
    if configured.is_err() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_frame_or_event(&mut stream, shared.config.max_frame_len) {
            Ok(FrameEvent::Frame(payload)) => payload,
            Ok(FrameEvent::Idle) => continue,
            Ok(FrameEvent::Eof) => return,
            Err(_) => {
                // Malformed, oversized, or truncated frame: drop the
                // connection — there is no way to resynchronise a
                // length-prefixed stream after a bad prefix.
                shared.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        shared
            .request_bytes
            .fetch_add(request.len() as u64, Ordering::Relaxed);

        let started = Instant::now();
        let handled = shared.node.handle_classified(&request);
        let elapsed = started.elapsed();
        shared.by_kind[kind_index(handled.kind)].fetch_add(1, Ordering::Relaxed);

        // The deadline is enforced when the response is ready — one
        // prover call cannot be preempted — so a missed deadline turns
        // a large late payload into a small, immediate error frame.
        let missed_deadline = shared
            .config
            .request_deadline
            .is_some_and(|deadline| handled.error.is_none() && elapsed > deadline);
        let response = if missed_deadline {
            shared.deadline_misses.fetch_add(1, Ordering::Relaxed);
            Handled {
                kind: handled.kind,
                bytes: Message::Error(WireError::new(WireErrorCode::DeadlineExceeded)).encode(),
                error: Some(WireErrorCode::DeadlineExceeded),
            }
        } else {
            handled
        };

        shared
            .response_bytes
            .fetch_add(response.bytes.len() as u64, Ordering::Relaxed);
        if write_frame(&mut stream, &response.bytes).is_err() {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if response.error.is_some() {
            // A structured refusal was delivered; the connection
            // survives, but the exchange counts as an error, not a
            // served request.
            shared.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            shared
                .latency
                .record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);

        // 100 samples at ~100 µs, one straggler at 10 ms.
        for _ in 0..100 {
            h.record(100);
        }
        h.record(10_000);
        let s = h.summary();
        assert_eq!(s.count, 101);
        assert_eq!(s.max_us, 10_000);
        // The p50/p95 live in the [64, 127] bucket of the fast cluster.
        assert!((64..=127).contains(&s.p50_us), "p50 = {}", s.p50_us);
        assert!((64..=127).contains(&s.p95_us), "p95 = {}", s.p95_us);
        // The p99 must not exceed the observed maximum.
        assert!(s.p99_us <= s.max_us);
        assert!(s.mean_us >= 100);
    }

    #[test]
    fn empty_histogram_summarises_to_zero() {
        assert_eq!(LatencyHistogram::new().summary(), LatencySummary::default());
    }

    #[test]
    fn config_resolves_worker_count() {
        let mut config = ServerConfig {
            workers: 3,
            ..ServerConfig::default()
        };
        assert_eq!(config.effective_workers(), 3);
        config.workers = 0;
        assert!(config.effective_workers() >= 1);
    }
}
