//! A concurrent TCP server around one shared [`FullNode`].
//!
//! Thread-per-connection: an accept thread hands each connection to a
//! worker that loops `read frame → FullNode::handle → write frame`.
//! Every worker shares one `Arc<FullNode>`, so concurrent clients warm
//! (and profit from) the same span-filter and SMT memo caches — the
//! effect the `repro concurrent` experiment measures.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::frame::{read_frame_or_event, write_frame, FrameEvent, MAX_FRAME_LEN};
use crate::full::FullNode;
use crate::message::NodeError;

/// Tuning knobs for a [`NodeServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Socket read timeout per connection. Doubles as the stop-flag
    /// polling interval for idle connections, and as the stall limit
    /// for a peer that goes silent mid-frame.
    pub read_timeout: Duration,
    /// Socket write timeout per connection.
    pub write_timeout: Duration,
    /// Largest request frame accepted; oversized announcements close
    /// the connection without allocating.
    pub max_frame_len: u32,
}

impl Default for ServerConfig {
    /// 200 ms timeouts (snappy shutdown on loopback), 64 MiB frames.
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(200),
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

/// Point-in-time counters of a running (or stopped) server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests answered successfully.
    pub requests: u64,
    /// Connections terminated on an error: malformed or oversized
    /// frames, mid-frame disconnects, handler failures, write failures.
    pub errors: u64,
    /// Request payload bytes received (framing excluded).
    pub request_bytes: u64,
    /// Response payload bytes sent (framing excluded).
    pub response_bytes: u64,
}

#[derive(Debug)]
struct Shared {
    full: Arc<FullNode>,
    config: ServerConfig,
    stop: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    request_bytes: AtomicU64,
    response_bytes: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            request_bytes: self.request_bytes.load(Ordering::Relaxed),
            response_bytes: self.response_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A running TCP query server.
///
/// Created with [`NodeServer::bind`]; serves until [`shutdown`]
/// (graceful: joins every thread) or drop (same, implicitly).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use lvq_bloom::BloomParams;
/// use lvq_chain::{Address, ChainBuilder, Transaction};
/// use lvq_core::{Scheme, SchemeConfig};
/// use lvq_node::{FullNode, LightNode, NodeServer, ServerConfig, TcpTransport};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SchemeConfig::new(Scheme::Lvq, BloomParams::new(128, 2)?, 4)?;
/// let mut builder = ChainBuilder::new(config.chain_params())?;
/// builder.push_block(vec![Transaction::coinbase(Address::new("1Miner"), 50, 1)])?;
/// let full = Arc::new(FullNode::new(builder.finish())?);
///
/// let server = NodeServer::bind(full, "127.0.0.1:0", ServerConfig::default())?;
/// let mut peer = TcpTransport::connect(server.local_addr())?;
/// let mut light = LightNode::sync_from(&mut peer, config)?;
/// let outcome = light.query(&mut peer, &Address::new("1Miner"))?;
/// assert_eq!(outcome.history.transactions.len(), 1);
/// drop(peer);
/// let stats = server.shutdown();
/// assert_eq!(stats.requests, 2); // headers + query
/// # Ok(())
/// # }
/// ```
///
/// [`shutdown`]: NodeServer::shutdown
#[derive(Debug)]
pub struct NodeServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NodeServer {
    /// Binds `addr` (use port 0 for an OS-assigned port, then
    /// [`NodeServer::local_addr`]) and starts accepting.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError::Io`] if the listener cannot be bound.
    pub fn bind(
        full: Arc<FullNode>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<Self, NodeError> {
        let bind_err = |context: &'static str| {
            move |e: std::io::Error| NodeError::Io {
                context,
                kind: e.kind(),
            }
        };
        let listener = TcpListener::bind(addr).map_err(bind_err("bind"))?;
        // Nonblocking accept so the loop can poll the stop flag.
        listener.set_nonblocking(true).map_err(bind_err("bind"))?;
        let local_addr = listener.local_addr().map_err(bind_err("bind"))?;

        let shared = Arc::new(Shared {
            full,
            config,
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            request_bytes: AtomicU64::new(0),
            response_bytes: AtomicU64::new(0),
        });
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_workers = Arc::clone(&workers);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, &accept_shared, &accept_workers);
        });

        Ok(NodeServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counters (callable while serving).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// The served full node, e.g. to read
    /// [`FullNode::engine_stats`] alongside [`NodeServer::stats`].
    pub fn full(&self) -> &Arc<FullNode> {
        &self.shared.full
    }

    /// Stops accepting, joins every connection thread, and returns the
    /// final counters. In-flight requests complete; idle connections
    /// close within roughly one read timeout.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_and_join();
        self.shared.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    workers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || serve_connection(&conn_shared, stream));
                workers.lock().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    // The accept listener is nonblocking; accepted sockets inherit
    // nothing on some platforms and everything on others, so set the
    // mode explicitly and rely on timeouts for stop-flag polling.
    let configured = stream
        .set_nonblocking(false)
        .and_then(|()| stream.set_read_timeout(Some(shared.config.read_timeout)))
        .and_then(|()| stream.set_write_timeout(Some(shared.config.write_timeout)));
    if configured.is_err() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_frame_or_event(&mut stream, shared.config.max_frame_len) {
            Ok(FrameEvent::Frame(payload)) => payload,
            Ok(FrameEvent::Idle) => continue,
            Ok(FrameEvent::Eof) => return,
            Err(_) => {
                // Malformed, oversized, or truncated frame: drop the
                // connection — there is no way to resynchronise a
                // length-prefixed stream after a bad prefix.
                shared.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        shared
            .request_bytes
            .fetch_add(request.len() as u64, Ordering::Relaxed);
        let response = match shared.full.handle(&request) {
            Ok(response) => response,
            Err(_) => {
                // An undecodable or unanswerable request poisons the
                // stream just like a bad frame.
                shared.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        shared
            .response_bytes
            .fetch_add(response.len() as u64, Ordering::Relaxed);
        if write_frame(&mut stream, &response).is_err() {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
    }
}
